//! Deterministic discrete-event simulation core.
//!
//! The paper evaluates the MOAS-list mechanism on a modified SSFnet BGP
//! simulator. This crate provides the substrate that plays SSFnet's role in
//! the reproduction: a deterministic discrete-event queue ([`EventQueue`]),
//! simulated time ([`SimTime`]), and seeded random-number helpers
//! ([`rng`]) so every experiment is exactly reproducible from a `u64` seed.
//!
//! # Example
//!
//! ```
//! use sim_engine::{EventQueue, SimTime};
//!
//! let mut queue: EventQueue<&str> = EventQueue::new();
//! queue.schedule(SimTime::from_ticks(10), "second");
//! queue.schedule(SimTime::ZERO, "first");
//!
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!((t, e), (SimTime::ZERO, "first"));
//! assert_eq!(queue.now(), SimTime::ZERO);
//!
//! let (t, e) = queue.pop().unwrap();
//! assert_eq!((t, e), (SimTime::from_ticks(10), "second"));
//! assert!(queue.pop().is_none());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod fault;
mod queue;
pub mod rng;
mod time;

pub use fault::{FaultAction, FaultPlan, FaultStats, LinkFaultModel, TimelineEntry};
pub use queue::{EventQueue, QueueStats};
pub use time::SimTime;
