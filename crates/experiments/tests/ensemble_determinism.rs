//! The ensemble driver's determinism contract: report JSON and metrics
//! snapshot are byte-identical for every `--jobs N`, the metrics variant
//! agrees with the plain variant, and the report round-trips through the
//! hand-rolled JSON codec.

use experiments::json::{from_str, to_string_pretty};
use experiments::{
    run_ensemble, run_ensemble_jobs, run_ensemble_metrics_jobs, EnsembleConfig, EnsembleReport,
};

fn config() -> EnsembleConfig {
    let mut config = EnsembleConfig::quick();
    config.trials = 2;
    config.seed = 0xE57E;
    config
}

#[test]
fn ensemble_report_is_byte_identical_across_jobs() {
    let config = config();
    let serial = run_ensemble(&config);
    let serial_json = serial.to_json();
    for jobs in [2, 4] {
        let report = run_ensemble_jobs(&config, jobs);
        assert_eq!(report.to_json(), serial_json, "jobs={jobs} bytes diverged");
    }
}

#[test]
fn ensemble_metrics_snapshot_is_byte_identical_across_jobs() {
    let config = config();
    let (serial_report, serial_metrics) = run_ensemble_metrics_jobs(&config, 1);
    let serial_json = to_string_pretty(&serial_metrics);
    for jobs in [2, 4] {
        let (report, metrics) = run_ensemble_metrics_jobs(&config, jobs);
        assert_eq!(report, serial_report, "jobs={jobs} report diverged");
        assert_eq!(
            to_string_pretty(&metrics),
            serial_json,
            "jobs={jobs} snapshot bytes diverged"
        );
    }
}

#[test]
fn ensemble_metrics_variant_matches_plain_variant() {
    let config = config();
    let (report, metrics) = run_ensemble_metrics_jobs(&config, 2);
    assert_eq!(report, run_ensemble(&config));

    // Per-run network metrics and the per-detector verdict counters are both
    // present in one snapshot.
    for key in ["churn.sim.events.fired", "attack.sim.events.fired"] {
        assert!(metrics.counters.contains_key(key), "missing {key}");
    }
    for workload in [
        "failover",
        "origin-flap",
        "session-reset",
        "long-lived-moas",
    ] {
        for detector in ["moas-list", "flap-damping", "communities-anomaly"] {
            for metric in ["detections", "missed", "churn_alarms"] {
                let key = format!("ensemble.{workload}.{detector}.{metric}");
                assert!(metrics.counters.contains_key(&key), "missing {key}");
            }
        }
    }
    assert_eq!(
        metrics.counters["ensemble.trials"],
        4 * 2, // workloads × trials
        "one trial counter per recorded cell"
    );
}

#[test]
fn ensemble_report_round_trips_through_json() {
    let config = config();
    let report = run_ensemble(&config);
    let back: EnsembleReport = from_str(&report.to_json()).expect("self-produced JSON parses");
    assert_eq!(back, report);
}
