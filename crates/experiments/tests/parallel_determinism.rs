//! The parallel harness contract: for every `jobs` value, every driver's
//! output — down to each byte of rendered JSON — equals the serial path's.
//!
//! Trials are planned sequentially, run into index-addressed slots, and
//! aggregated in planning order, so nothing about worker scheduling can leak
//! into a figure. These tests pin that property on the 46-AS paper topology.

use as_topology::paper::PaperTopology;
use experiments::{
    forgery_ablation, forgery_ablation_jobs, json, run_chaos, run_chaos_jobs, run_sweep,
    run_sweep_jobs, stripping_ablation, stripping_ablation_jobs, ChaosConfig, ChaosScenario,
    SweepConfig,
};

#[test]
fn sweep_jobs_is_bit_identical_to_serial_on_as46() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let serial = run_sweep(graph, &config);
    for jobs in [1, 4] {
        let parallel = run_sweep_jobs(graph, &config, jobs);
        assert_eq!(parallel, serial, "jobs={jobs} diverged from serial");
    }
}

#[test]
fn sweep_json_output_is_identical_for_every_jobs_value() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let render = |points: &[experiments::SweepPoint]| -> Vec<String> {
        points.iter().map(json::to_string_pretty).collect()
    };
    let serial = render(&run_sweep(graph, &config));
    for jobs in [1, 4] {
        assert_eq!(
            render(&run_sweep_jobs(graph, &config, jobs)),
            serial,
            "jobs={jobs} rendered different JSON"
        );
    }
}

#[test]
fn forgery_ablation_jobs_is_bit_identical_to_serial_on_as46() {
    let graph = PaperTopology::As46.graph();
    let serial = forgery_ablation(graph, 3, 0xAB3);
    for jobs in [1, 4] {
        assert_eq!(
            forgery_ablation_jobs(graph, 3, 0xAB3, jobs),
            serial,
            "jobs={jobs} diverged from serial"
        );
    }
}

#[test]
fn chaos_jobs_is_bit_identical_to_serial_including_fault_rng() {
    // The chaos driver carries more per-trial randomness than the figure
    // drivers: each trial owns a fault RNG stream (drop/corrupt/duplicate
    // coin flips) derived from the trial seed. A scheduling leak anywhere —
    // planning, the fault stream, or aggregation — shows up as a diverging
    // report. Lossy-core exercises the fault RNG hardest.
    for scenario in [ChaosScenario::LossyCore, ChaosScenario::Failover] {
        let mut config = ChaosConfig::quick(scenario);
        config.trials = 5;
        config.seed = 0xC0FFEE;
        let serial = run_chaos(&config);
        for jobs in [1, 2, 4] {
            let parallel = run_chaos_jobs(&config, jobs);
            assert_eq!(parallel, serial, "{scenario} jobs={jobs} diverged");
            assert_eq!(
                parallel.to_json(),
                serial.to_json(),
                "{scenario} jobs={jobs} rendered different JSON"
            );
        }
    }
}

#[test]
fn stripping_ablation_jobs_is_bit_identical_to_serial_on_as46() {
    let graph = PaperTopology::As46.graph();
    let fractions = [0.0, 0.25];
    let serial = stripping_ablation(graph, &fractions, 3, 0xAB2);
    assert_eq!(
        stripping_ablation_jobs(graph, &fractions, 3, 0xAB2, 4),
        serial
    );
}
