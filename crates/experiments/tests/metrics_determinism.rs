//! The observability contract: a `--metrics` snapshot is part of a driver's
//! output, so it obeys the same rule as the report — byte-identical rendered
//! JSON for every `jobs` value — and it round-trips through the hand-rolled
//! codec without loss.

use experiments::json::{from_str, to_string_pretty};
use experiments::{
    run_chaos_metrics_jobs, run_sweep_jobs, run_sweep_metrics_jobs, ChaosConfig, ChaosScenario,
    SweepConfig,
};
use minimetrics::MetricsSnapshot;

use as_topology::paper::PaperTopology;

#[test]
fn chaos_metrics_snapshot_is_byte_identical_across_jobs() {
    let mut config = ChaosConfig::quick(ChaosScenario::LossyCore);
    config.trials = 4;
    config.seed = 0xC0FFEE;
    let (serial_report, serial_metrics) = run_chaos_metrics_jobs(&config, 1);
    let serial_json = to_string_pretty(&serial_metrics);
    for jobs in [2, 4] {
        let (report, metrics) = run_chaos_metrics_jobs(&config, jobs);
        assert_eq!(report, serial_report, "jobs={jobs} report diverged");
        assert_eq!(
            to_string_pretty(&metrics),
            serial_json,
            "jobs={jobs} snapshot bytes diverged"
        );
    }
}

#[test]
fn chaos_metrics_snapshot_contains_the_advertised_key_families() {
    let config = ChaosConfig::quick(ChaosScenario::LossyCore);
    let (_, metrics) = run_chaos_metrics_jobs(&config, 2);

    // Sim-engine event counts, for both runs of each trial.
    for prefix in ["churn", "attack"] {
        for key in ["sim.events.scheduled", "sim.events.fired"] {
            let key = format!("{prefix}.{key}");
            assert!(metrics.counters.contains_key(&key), "missing {key}");
            assert!(metrics.counters[&key] > 0, "{key} is zero");
        }
    }
    // Per-session update counters and per-link fault stats are dynamic keys.
    let has = |substr: &str| metrics.counters.keys().any(|k| k.contains(substr));
    assert!(has(".session.AS"), "no per-session counters");
    assert!(has(".sent_announcements"), "no sent counters");
    assert!(has(".link.AS"), "no per-link fault stats");
    assert!(has(".delivered"), "no delivered counters");
    // Convergence-time and detection-latency histograms.
    for key in [
        "chaos.convergence_ticks.churn",
        "chaos.convergence_ticks.attack",
        "chaos.detection_latency_ticks",
    ] {
        assert!(metrics.histograms.contains_key(key), "missing {key}");
        assert!(metrics.histograms[key].count() > 0, "{key} is empty");
    }
    assert_eq!(metrics.counters["chaos.trials"], config.trials as u64);
}

#[test]
fn chaos_metrics_snapshot_round_trips_through_json() {
    let config = ChaosConfig::quick(ChaosScenario::Failover);
    let (_, metrics) = run_chaos_metrics_jobs(&config, 2);
    assert!(!metrics.is_empty());
    let text = to_string_pretty(&metrics);
    let back: MetricsSnapshot = from_str(&text).unwrap();
    assert_eq!(back, metrics);
    // Re-rendering the decoded snapshot reproduces the bytes exactly.
    assert_eq!(to_string_pretty(&back), text);
}

#[test]
fn sweep_metrics_variant_reports_the_same_points_as_the_plain_path() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let plain = run_sweep_jobs(graph, &config, 2);
    let (points, metrics) = run_sweep_metrics_jobs(graph, &config, 2);
    assert_eq!(points, plain, "recording must not perturb the figure");
    // Every planned trial contributed a snapshot.
    let trials: usize = config.attacker_fractions.len() * config.runs_per_point();
    assert_eq!(metrics.counters["trial.count"], trials as u64);
    assert_eq!(
        metrics.histograms["trial.convergence_ticks.origin"].count(),
        trials as u64
    );
}
