//! The sharded-engine contract: for every `--shards` value, every figure,
//! fingerprint, and metrics snapshot — down to each byte of rendered JSON —
//! equals the shards=1 run's.
//!
//! The engine partitions the AS graph with [`Partition`], exchanges
//! cross-shard messages in batches at virtual-time delay boundaries, and
//! orders same-timestamp events intrinsically (kind, edge, per-edge
//! sequence), so nothing about the shard count can leak into an outcome.
//! These tests pin that property on the 46-AS paper topology, plus the
//! partitioner invariants the engine's correctness rests on.

use as_topology::paper::PaperTopology;
use as_topology::{InternetModel, Partition};
use bgp_engine::{NoopMonitor, ShardedNetwork};
use bgp_types::Ipv4Prefix;
use experiments::{
    json, run_sweep_sharded, run_sweep_sharded_metrics, run_trial_sharded, SweepConfig, TrialConfig,
};
use moas_core::Deployment;
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

#[test]
fn sweep_sharded_is_bit_identical_across_shard_counts() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let reference = run_sweep_sharded(graph, &config, 1, 1);
    for shards in SHARD_COUNTS {
        for jobs in [1, 2] {
            let points = run_sweep_sharded(graph, &config, shards, jobs);
            assert_eq!(
                points, reference,
                "shards={shards} jobs={jobs} diverged from shards=1"
            );
        }
    }
}

#[test]
fn sweep_point_json_is_identical_for_every_shard_count() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let render = |points: &[experiments::SweepPoint]| -> Vec<String> {
        points.iter().map(json::to_string_pretty).collect()
    };
    let reference = render(&run_sweep_sharded(graph, &config, 1, 1));
    for shards in SHARD_COUNTS {
        assert_eq!(
            render(&run_sweep_sharded(graph, &config, shards, 2)),
            reference,
            "shards={shards} rendered different SweepPoint JSON"
        );
    }
}

#[test]
fn metrics_snapshots_are_identical_for_every_shard_count() {
    let graph = PaperTopology::As46.graph();
    let config = SweepConfig::quick();
    let (reference_points, reference_snapshot) = run_sweep_sharded_metrics(graph, &config, 1, 1);
    let reference_json = json::to_string_pretty(&reference_snapshot);
    for shards in SHARD_COUNTS {
        let (points, snapshot) = run_sweep_sharded_metrics(graph, &config, shards, 2);
        assert_eq!(points, reference_points, "shards={shards} perturbed points");
        assert_eq!(
            snapshot, reference_snapshot,
            "shards={shards} diverged on the metrics snapshot"
        );
        assert_eq!(
            json::to_string_pretty(&snapshot),
            reference_json,
            "shards={shards} rendered different snapshot JSON"
        );
    }
}

#[test]
fn rib_fingerprints_are_identical_for_every_shard_count() {
    // Drive one convergence per shard count directly through the engine so
    // the full RIB state — not just the figure aggregates — is compared.
    let graph = PaperTopology::As46.graph();
    let prefix: Ipv4Prefix = "208.8.0.0/16".parse().expect("prefix literal");
    let origin = graph.stub_asns()[0];
    let run = |shards: usize| {
        let mut net =
            ShardedNetwork::with_monitor_and_jitter(graph, shards, 2, 0xD5, 4, || NoopMonitor);
        net.originate(origin, prefix, None);
        let converged = net.run().expect("46-AS origination converges");
        (
            net.routing_fingerprint(),
            converged.ticks(),
            net.events_fired(),
            net.stats().total_messages(),
        )
    };
    let reference = run(1);
    for shards in SHARD_COUNTS {
        assert_eq!(
            run(shards),
            reference,
            "shards={shards} diverged on (fingerprint, ticks, events, messages)"
        );
    }
}

#[test]
fn single_trial_is_identical_across_shard_counts() {
    // The sweep tests cover planned trials; this pins one hand-built trial
    // (explicit attacker, full deployment) for sharper failure locality.
    let graph = PaperTopology::As46.graph();
    let stubs = graph.stub_asns();
    let config = TrialConfig::new(
        vec![stubs[0]],
        vec![stubs[stubs.len() - 1]],
        Deployment::Full,
    );
    let reference = run_trial_sharded(graph, &config, 1, 1).expect("trial converges");
    for shards in SHARD_COUNTS {
        let outcome = run_trial_sharded(graph, &config, shards, 2).expect("trial converges");
        assert_eq!(outcome, reference, "shards={shards} diverged on the trial");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Partitioner invariant: every AS lands in exactly one shard — the
    /// per-shard member lists are disjoint, cover the graph, and agree with
    /// `shard_of` and `assignment` — and the balance cap holds.
    #[test]
    fn every_as_lands_in_exactly_one_shard(
        seed in 0u64..4096,
        transit in 4usize..24,
        stubs in 10usize..160,
        shards in 1usize..9,
    ) {
        let graph = InternetModel::new()
            .transit_count(transit)
            .stub_count(stubs)
            .build(seed);
        let p = Partition::new(&graph, shards);

        prop_assert_eq!(p.assignment().len(), graph.len());
        let mut membership_total = 0;
        for shard in 0..p.shard_count() {
            for asn in p.members(shard) {
                prop_assert_eq!(
                    p.shard_of(asn),
                    Some(shard),
                    "{:?} listed in shard {} but shard_of disagrees",
                    asn,
                    shard
                );
            }
            membership_total += p.members(shard).len();
        }
        prop_assert_eq!(
            membership_total,
            graph.len(),
            "member lists must partition the graph"
        );
        for asn in graph.asns() {
            prop_assert!(p.shard_of(asn).is_some(), "{:?} has no shard", asn);
        }

        let cap = graph.len().div_ceil(shards);
        prop_assert!(
            p.shard_sizes().iter().all(|&s| s <= cap),
            "sizes {:?} exceed cap {}",
            p.shard_sizes(),
            cap
        );
    }

    /// Partitioner invariant: the cut-edge count is consistent no matter
    /// which side counts it — the undirected link census and the directed
    /// census summed over every node's neighbors (which sees each cut edge
    /// once from each endpoint) both agree with `cut_links()`.
    #[test]
    fn cut_edges_are_counted_consistently_from_both_sides(
        seed in 0u64..4096,
        transit in 4usize..24,
        stubs in 10usize..160,
        shards in 1usize..9,
    ) {
        let graph = InternetModel::new()
            .transit_count(transit)
            .stub_count(stubs)
            .build(seed);
        let p = Partition::new(&graph, shards);

        let undirected = graph
            .links()
            .iter()
            .filter(|&&(a, b)| p.shard_of(a) != p.shard_of(b))
            .count();
        prop_assert_eq!(p.cut_links(), undirected, "undirected census disagrees");

        let directed: usize = graph
            .asns()
            .map(|a| {
                graph
                    .neighbors(a)
                    .filter(|&b| p.shard_of(a) != p.shard_of(b))
                    .count()
            })
            .sum();
        prop_assert_eq!(
            directed,
            2 * p.cut_links(),
            "each endpoint must see the same cut edges"
        );
    }
}
