//! Failover/churn scenarios: MOAS-detector accuracy under faults.
//!
//! The paper evaluates detection on *static* converged networks. This driver
//! asks the robustness question the paper leaves open: how does the detector
//! behave while the network is legitimately churning — provider failovers,
//! origin flaps, lossy core links, session resets? Each scenario runs every
//! trial twice on the same fault plan:
//!
//! 1. **Churn only.** No attacker. Every alarm here is noise triggered by
//!    legitimate dynamics (e.g. a backup origin coming online with an
//!    implicit list), giving the false-alarm metrics.
//! 2. **Churn + attack.** The same plan plus a forged-origin announcement
//!    injected mid-churn. The first verifier-confirmed alarm at or after the
//!    injection tick gives the detection latency; no such alarm is a missed
//!    detection.
//!
//! The flap-storm scenario is the exception: it drives an unbounded origin
//! flap with MRAI disabled, which never converges — the run must end with
//! the engine's convergence watchdog reporting
//! [`ConvergenceError::Oscillating`], and the report counts oscillating
//! trials instead of detection latency.

use std::collections::BTreeSet;
use std::fmt;
use std::str::FromStr;

use as_topology::{AsGraph, InternetModel};
use bgp_engine::{ConvergenceError, FaultEvent, NetFaultPlan, Network, ShardedNetwork};
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use minimetrics::{MetricsSink, MetricsSnapshot, NoopSink, RecordingSink, Scoped};
use moas_core::{
    Deployment, FalseOriginAttack, ListForgery, MoasConfig, MoasMonitor, RegistryVerifier,
    Resolution, UnresolvedPolicy,
};
use sim_engine::fault::LinkFaultModel;

use crate::json::{self, FromJson, Json, JsonError, ToJson};
use crate::stats::mean;

/// Tick at which scripted churn begins.
pub(crate) const T_CHURN: u64 = 40;
/// Tick at which the attack run injects the forged announcement — inside the
/// churn window of every scenario.
pub(crate) const T_ATTACK: u64 = 120;
/// Tick at which failover scenarios restore the failed link.
const T_RESTORE: u64 = 200;
/// Watchdog sampling interval for the flap-storm scenario.
const WATCHDOG_EVERY: u64 = 64;

/// One fault/churn scenario class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosScenario {
    /// A multihomed stub loses its primary provider link mid-run; its
    /// multihoming partner starts backup origination (implicit list — the
    /// §4.3 hazard), and the link is restored later.
    Failover,
    /// A backup origin toggles its origination on and off several times,
    /// with MRAI enabled (bounded, legitimate route flap).
    OriginFlap,
    /// A core transit link drops, corrupts, duplicates and reorders
    /// messages while both origins announce proper MOAS lists.
    LossyCore,
    /// The victim's provider session resets periodically, and that provider
    /// strips MOAS communities on export (§4.3), so every re-announcement
    /// wave re-triggers implicit-list conflicts.
    SessionReset,
    /// An unbounded origin flap with MRAI disabled: a storm that never
    /// converges. The convergence watchdog must terminate it with
    /// [`ConvergenceError::Oscillating`].
    FlapStorm,
    /// A backup origin flaps *faster than the MRAI window*: every flap edge
    /// lands while the per-peer timers are still closed, so updates are
    /// deferred and coalesced instead of propagating immediately. Exercises
    /// detection latency when the attack itself sits behind closed MRAI
    /// timers.
    MraiDeferral,
}

impl ChaosScenario {
    /// All scenarios, in catalog order.
    #[must_use]
    pub fn all() -> [ChaosScenario; 6] {
        [
            ChaosScenario::Failover,
            ChaosScenario::OriginFlap,
            ChaosScenario::LossyCore,
            ChaosScenario::SessionReset,
            ChaosScenario::FlapStorm,
            ChaosScenario::MraiDeferral,
        ]
    }

    /// The CLI/JSON name of the scenario.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosScenario::Failover => "failover",
            ChaosScenario::OriginFlap => "origin-flap",
            ChaosScenario::LossyCore => "lossy-core",
            ChaosScenario::SessionReset => "session-reset",
            ChaosScenario::FlapStorm => "flap-storm",
            ChaosScenario::MraiDeferral => "mrai-deferral",
        }
    }
}

impl fmt::Display for ChaosScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parse error for [`ChaosScenario`], naming the valid scenarios.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownScenario(String);

impl fmt::Display for UnknownScenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown scenario '{}' (expected one of: failover, origin-flap, lossy-core, session-reset, flap-storm, mrai-deferral)",
            self.0
        )
    }
}

impl std::error::Error for UnknownScenario {}

impl FromStr for ChaosScenario {
    type Err = UnknownScenario;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ChaosScenario::all()
            .into_iter()
            .find(|scenario| scenario.name() == s)
            .ok_or_else(|| UnknownScenario(s.to_string()))
    }
}

impl ToJson for ChaosScenario {
    fn to_json_value(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for ChaosScenario {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => s.parse().map_err(|e: UnknownScenario| JsonError {
                message: e.to_string(),
                offset: 0,
            }),
            _ => Err(JsonError {
                message: "expected a scenario name string".to_string(),
                offset: 0,
            }),
        }
    }
}

/// Configuration of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// The scenario class to replay.
    pub scenario: ChaosScenario,
    /// Number of Monte-Carlo trials (actor sets) to run.
    pub trials: usize,
    /// Master seed: the topology, every actor draw, and every fault RNG
    /// stream derive from it.
    pub seed: u64,
    /// Transit AS count of the generated topology.
    pub transit_count: usize,
    /// Stub AS count of the generated topology.
    pub stub_count: usize,
    /// Maximum per-link delay jitter.
    pub max_link_delay: u64,
}

json::impl_json_struct!(ChaosConfig {
    scenario,
    trials,
    seed,
    transit_count,
    stub_count,
    max_link_delay,
});

impl ChaosConfig {
    /// Default protocol: 30 trials on a ~32-AS topology with heavy
    /// multihoming (failover needs stubs with two providers).
    #[must_use]
    pub fn new(scenario: ChaosScenario) -> Self {
        ChaosConfig {
            scenario,
            trials: 30,
            seed: 0xC4A05,
            transit_count: 8,
            stub_count: 24,
            max_link_delay: 4,
        }
    }

    /// A reduced protocol for tests and smoke runs.
    #[must_use]
    pub fn quick(scenario: ChaosScenario) -> Self {
        ChaosConfig {
            trials: 6,
            transit_count: 6,
            stub_count: 16,
            ..ChaosConfig::new(scenario)
        }
    }

    /// Serializes to pretty JSON (for report provenance).
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// The cast of one trial, drawn during the serial planning phase. Shared
/// with the [`crate::ensemble`] driver, which replays the same casts under
/// passive tap monitors.
#[derive(Debug, Clone)]
pub(crate) struct TrialPlan {
    /// The multihomed victim stub (primary origin).
    pub(crate) victim: Asn,
    /// The victim's multihoming partner (backup / second origin).
    pub(crate) partner: Asn,
    /// The victim's primary provider (the failed/reset link's far end).
    pub(crate) provider: Asn,
    /// The compromised AS injecting the forged origin in the attack run.
    pub(crate) attacker: Asn,
    /// Per-trial seed for link jitter and the fault RNG.
    pub(crate) seed: u64,
}

/// What one trial (both runs) produced.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TrialResult {
    /// Alarms in the churn-only run (all of them are noise by construction).
    churn_alarms: u64,
    /// Detection in the attack run: ticks from injection to the first
    /// confirmed alarm, or `None` for a missed detection.
    latency: Option<u64>,
    /// The churn-only run ended with the watchdog's oscillation verdict.
    oscillated: bool,
    /// The oscillation period in events (0 when `!oscillated`).
    cycle_len: u64,
    /// Messages delivered in the churn-only run.
    messages: u64,
    /// Fault-model drops in the churn-only run.
    dropped: u64,
    /// Corrupt-and-discarded messages in the churn-only run.
    corrupted: u64,
    /// Fault-model duplicates in the churn-only run.
    duplicated: u64,
    /// Fault-model extra-delay reorders in the churn-only run.
    reordered: u64,
    /// Updates held back by a closed MRAI window in the churn-only run.
    mrai_deferred: u64,
}

/// The aggregated report of one chaos run — the `BENCH_chaos.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Scenario name.
    pub scenario: ChaosScenario,
    /// Trials run.
    pub trials: usize,
    /// The master seed the run derived from.
    pub seed: u64,
    /// Fraction of churn-only trials that raised at least one alarm: the
    /// detector crying wolf under legitimate dynamics.
    pub false_alarm_rate: f64,
    /// Mean alarms per churn-only trial.
    pub mean_false_alarms: f64,
    /// Fraction of attack trials where no confirmed alarm followed the
    /// injection (flap-storm runs no attacks; the rate is 0 there).
    pub missed_detection_rate: f64,
    /// Mean ticks from injection to first confirmed alarm, over detected
    /// trials (0 when nothing was detected).
    pub mean_detection_latency_ticks: f64,
    /// Attack trials with a confirmed detection.
    pub detected_trials: usize,
    /// Trials the watchdog ended with an oscillation verdict.
    pub oscillating_trials: usize,
    /// Mean oscillation period in events, over oscillating trials.
    pub mean_cycle_len: f64,
    /// Mean messages delivered per churn-only trial.
    pub mean_messages: f64,
    /// Mean fault-model message drops per trial.
    pub mean_dropped: f64,
    /// Mean corrupt-discarded messages per trial.
    pub mean_corrupted: f64,
    /// Mean duplicated messages per trial.
    pub mean_duplicated: f64,
    /// Mean reordered (extra-delayed) messages per trial.
    pub mean_reordered: f64,
    /// Mean updates deferred by a closed MRAI window per churn-only trial
    /// (nonzero only in scenarios that enable MRAI).
    pub mean_mrai_deferred: f64,
}

json::impl_json_struct!(ChaosReport {
    scenario,
    trials,
    seed,
    false_alarm_rate,
    mean_false_alarms,
    missed_detection_rate,
    mean_detection_latency_ticks,
    detected_trials,
    oscillating_trials,
    mean_cycle_len,
    mean_messages,
    mean_dropped,
    mean_corrupted,
    mean_duplicated,
    mean_reordered,
    mean_mrai_deferred,
});

impl ChaosReport {
    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// One point of a partial-deployment sweep: the full accuracy report of a
/// chaos run where only a seeded `deployment_fraction` of ASes run the MOAS
/// detector.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSweepPoint {
    /// Fraction of ASes running the detector (0.0 = nobody, 1.0 = everyone).
    pub deployment_fraction: f64,
    /// The chaos report at that deployment level.
    pub report: ChaosReport,
}

json::impl_json_struct!(DeploymentSweepPoint {
    deployment_fraction,
    report,
});

/// A full partial-deployment sweep: detector accuracy vs deployment
/// fraction under one churn scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentSweep {
    /// The churn scenario every point replays.
    pub scenario: ChaosScenario,
    /// Trials per point.
    pub trials: usize,
    /// The master seed (shared across points, so every point replays the
    /// same casts and fault plans — only the deployment set varies).
    pub seed: u64,
    /// One report per requested fraction, in request order.
    pub points: Vec<DeploymentSweepPoint>,
}

json::impl_json_struct!(DeploymentSweep {
    scenario,
    trials,
    seed,
    points,
});

impl DeploymentSweep {
    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// The default fractions `moas-lab chaos --deployment-sweep` measures.
pub const DEPLOYMENT_SWEEP_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// Runs a chaos scenario serially. Equivalent to [`run_chaos_jobs`] with
/// `jobs = 1`.
#[must_use]
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    run_chaos_jobs(config, 1)
}

/// Runs a chaos scenario with trial-level parallelism, bit-identical to the
/// serial path for every `jobs` value: trials are planned sequentially
/// (per-trial seeds derive from `(config.seed, trial index)`, so no shared
/// RNG state is consumed), executed into index-addressed slots, and
/// aggregated in planning order. The per-trial fault RNG streams are seeded
/// inside each trial from its planned seed, so they do not depend on
/// scheduling either.
///
/// # Panics
///
/// Panics if the generated topology has no stub with two providers (cannot
/// happen with the default configurations) or if a scenario that must
/// converge does not.
#[must_use]
pub fn run_chaos_jobs(config: &ChaosConfig, jobs: usize) -> ChaosReport {
    run_chaos_deployment_jobs(config, 1.0, jobs)
}

/// [`run_chaos_jobs`] at a partial deployment level: each trial samples a
/// seeded `deployment_fraction` subset of ASes to run the detector (1.0 is
/// exactly [`Deployment::Full`], 0.0 exactly [`Deployment::None`]). The
/// casts, fault plans and jitter are identical to the full-deployment run
/// with the same config, so reports across fractions differ only in what
/// the detector saw.
#[must_use]
pub fn run_chaos_deployment_jobs(
    config: &ChaosConfig,
    deployment_fraction: f64,
    jobs: usize,
) -> ChaosReport {
    let graph = chaos_graph(config);
    let plans = plan_casts(&graph, config);

    // Phase 2: run, index-addressed. The no-op sink compiles the
    // instrumentation away.
    let results: Vec<TrialResult> = minipool::map_indexed(jobs, plans.len(), |i| {
        run_one(
            &graph,
            config,
            &plans[i],
            deployment_fraction,
            &mut NoopSink,
        )
    });

    aggregate(config, &results)
}

/// Accuracy vs deployment fraction: runs the scenario once per fraction
/// (same seed, so the same casts and fault plans replay at every level) and
/// collects the reports. Bit-identical for every `jobs` value, like every
/// other driver here.
#[must_use]
pub fn run_deployment_sweep_jobs(
    config: &ChaosConfig,
    fractions: &[f64],
    jobs: usize,
) -> DeploymentSweep {
    let points = fractions
        .iter()
        .map(|&deployment_fraction| DeploymentSweepPoint {
            deployment_fraction,
            report: run_chaos_deployment_jobs(config, deployment_fraction, jobs),
        })
        .collect();
    DeploymentSweep {
        scenario: config.scenario,
        trials: config.trials,
        seed: config.seed,
        points,
    }
}

/// [`run_chaos_jobs`] with observability: each trial records its churn- and
/// attack-run network metrics (key prefixes `churn.` / `attack.`) plus
/// trial-level counters and histograms under `chaos.*` into a per-trial
/// [`RecordingSink`]; the per-trial snapshots are merged **in plan order**
/// after all trials finish, so the report and the snapshot are both
/// bit-identical for every `jobs` value.
#[must_use]
pub fn run_chaos_metrics_jobs(config: &ChaosConfig, jobs: usize) -> (ChaosReport, MetricsSnapshot) {
    let graph = chaos_graph(config);
    let plans = plan_casts(&graph, config);

    let results: Vec<(TrialResult, MetricsSnapshot)> =
        minipool::map_indexed(jobs, plans.len(), |i| {
            let mut sink = RecordingSink::new();
            let result = run_one(&graph, config, &plans[i], 1.0, &mut sink);
            (result, sink.into_snapshot())
        });

    let trial_results: Vec<TrialResult> = results.iter().map(|(r, _)| *r).collect();
    let mut snapshot = MetricsSnapshot::new();
    for (_, trial_snapshot) in &results {
        snapshot.merge(trial_snapshot);
    }
    (aggregate(config, &trial_results), snapshot)
}

/// [`run_chaos_jobs`] through the deterministic sharded engine: trials run
/// one at a time, each fanned over `shards` partition engines on up to
/// `jobs` worker threads (intra-trial parallelism where [`run_chaos_jobs`]
/// is inter-trial). Bit-identical for every `(shards, jobs)` pair.
///
/// Not guaranteed bit-identical to the classic driver: the sharded engine
/// breaks same-tick ties with an intrinsic event order and draws lossy-link
/// fault fates from per-edge RNG streams (the classic engine consumes one
/// global stream in delivery order), so fault-model scenarios may diverge
/// numerically while remaining statistically equivalent.
///
/// # Panics
///
/// Same conditions as [`run_chaos_jobs`].
#[must_use]
pub fn run_chaos_sharded(config: &ChaosConfig, shards: usize, jobs: usize) -> ChaosReport {
    let graph = chaos_graph(config);
    let plans = plan_casts(&graph, config);
    let results: Vec<TrialResult> = plans
        .iter()
        .map(|cast| run_one_sharded(&graph, config, cast, 1.0, shards, jobs, &mut NoopSink))
        .collect();
    aggregate(config, &results)
}

/// [`run_chaos_sharded`] with observability: per-trial [`RecordingSink`]
/// snapshots merged in plan order, mirroring [`run_chaos_metrics_jobs`]. The
/// snapshot only contains the shard-count-invariant metrics subset the
/// sharded engine exports.
///
/// # Panics
///
/// Same conditions as [`run_chaos_jobs`].
#[must_use]
pub fn run_chaos_sharded_metrics(
    config: &ChaosConfig,
    shards: usize,
    jobs: usize,
) -> (ChaosReport, MetricsSnapshot) {
    let graph = chaos_graph(config);
    let plans = plan_casts(&graph, config);
    let mut snapshot = MetricsSnapshot::new();
    let results: Vec<TrialResult> = plans
        .iter()
        .map(|cast| {
            let mut sink = RecordingSink::new();
            let result = run_one_sharded(&graph, config, cast, 1.0, shards, jobs, &mut sink);
            snapshot.merge(&sink.into_snapshot());
            result
        })
        .collect();
    (aggregate(config, &results), snapshot)
}

/// The generated topology a chaos run plays out on.
pub(crate) fn chaos_graph(config: &ChaosConfig) -> AsGraph {
    InternetModel::new()
        .transit_count(config.transit_count)
        .stub_count(config.stub_count)
        .multihome_prob(0.9)
        .build(config.seed)
}

/// Phase 1: plans every trial's cast serially (per-trial seeds derive from
/// `(config.seed, trial index)`, so no shared RNG state is consumed).
pub(crate) fn plan_casts(graph: &AsGraph, config: &ChaosConfig) -> Vec<TrialPlan> {
    let multihomed: Vec<Asn> = graph
        .stub_asns()
        .into_iter()
        .filter(|&s| graph.degree(s) >= 2)
        .collect();
    assert!(
        multihomed.len() >= 2,
        "chaos topology has too few multihomed stubs"
    );
    (0..config.trials)
        .map(|t| {
            let seed = sim_engine::rng::derive_seed(config.seed, t as u64);
            let mut rng = sim_engine::rng::from_seed(seed);
            let picked = sim_engine::rng::sample_distinct(&mut rng, &multihomed, 2);
            let (victim, partner) = (picked[0], picked[1]);
            let provider = graph
                .neighbors(victim)
                .next()
                .expect("multihomed stub has providers");
            let others: Vec<Asn> = graph
                .asns()
                .filter(|&a| a != victim && a != partner)
                .collect();
            let attacker = sim_engine::rng::sample_distinct(&mut rng, &others, 1)[0];
            TrialPlan {
                victim,
                partner,
                provider,
                attacker,
                seed,
            }
        })
        .collect()
}

/// Phase 3: aggregates trial results **in planning order** into a report.
fn aggregate(config: &ChaosConfig, results: &[TrialResult]) -> ChaosReport {
    let noisy = results.iter().filter(|r| r.churn_alarms > 0).count();
    let false_alarms: Vec<f64> = results.iter().map(|r| r.churn_alarms as f64).collect();
    let attack_trials = if config.scenario == ChaosScenario::FlapStorm {
        0
    } else {
        results.len()
    };
    let latencies: Vec<f64> = results
        .iter()
        .filter_map(|r| r.latency)
        .map(|l| l as f64)
        .collect();
    let missed = attack_trials.saturating_sub(latencies.len());
    let cycles: Vec<f64> = results
        .iter()
        .filter(|r| r.oscillated)
        .map(|r| r.cycle_len as f64)
        .collect();

    ChaosReport {
        scenario: config.scenario,
        trials: results.len(),
        seed: config.seed,
        false_alarm_rate: ratio(noisy, results.len()),
        mean_false_alarms: mean(&false_alarms),
        missed_detection_rate: ratio(missed, attack_trials),
        mean_detection_latency_ticks: mean(&latencies),
        detected_trials: latencies.len(),
        oscillating_trials: cycles.len(),
        mean_cycle_len: mean(&cycles),
        mean_messages: mean(
            &results
                .iter()
                .map(|r| r.messages as f64)
                .collect::<Vec<_>>(),
        ),
        mean_dropped: mean(&results.iter().map(|r| r.dropped as f64).collect::<Vec<_>>()),
        mean_corrupted: mean(
            &results
                .iter()
                .map(|r| r.corrupted as f64)
                .collect::<Vec<_>>(),
        ),
        mean_duplicated: mean(
            &results
                .iter()
                .map(|r| r.duplicated as f64)
                .collect::<Vec<_>>(),
        ),
        mean_reordered: mean(
            &results
                .iter()
                .map(|r| r.reordered as f64)
                .collect::<Vec<_>>(),
        ),
        mean_mrai_deferred: mean(
            &results
                .iter()
                .map(|r| r.mrai_deferred as f64)
                .collect::<Vec<_>>(),
        ),
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// The scenario-specific parts of one trial's setup.
pub(crate) struct Scenario {
    /// The churn timeline (without the attack injection).
    pub(crate) plan: NetFaultPlan,
    /// MOAS lists attached by the legitimate origins (`None` = implicit).
    pub(crate) origin_list: Option<MoasList>,
    /// Whether the partner originates from the start (vs only via timeline).
    pub(crate) partner_originates: bool,
    /// Transit ASes that strip MOAS communities on export.
    pub(crate) strippers: BTreeSet<Asn>,
    /// MRAI ticks (0 = disabled).
    pub(crate) mrai: u64,
    /// Watchdog interval (0 = off); set only where oscillation is expected.
    pub(crate) watchdog: u64,
    /// Whether the churn run is expected to end in oscillation.
    pub(crate) expect_oscillation: bool,
}

pub(crate) fn build_scenario(graph: &AsGraph, config: &ChaosConfig, cast: &TrialPlan) -> Scenario {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let bare = Route::new(prefix, AsPath::new());
    let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();
    let mut plan = NetFaultPlan::new(sim_engine::rng::derive_seed(cast.seed, 0xFA17));
    let mut scenario = Scenario {
        plan: NetFaultPlan::new(0),
        origin_list: Some(valid_list),
        partner_originates: true,
        strippers: BTreeSet::new(),
        mrai: 0,
        watchdog: 0,
        expect_oscillation: false,
    };
    match config.scenario {
        ChaosScenario::Failover => {
            // Primary provider dies; the partner starts backup origination
            // with an implicit list (a fresh backup origin has no list
            // configured — the §4.3 hazard), then everything heals.
            plan.at(T_CHURN, FaultEvent::FailLink(cast.victim, cast.provider));
            plan.at(
                T_CHURN + 5,
                FaultEvent::Announce {
                    asn: cast.partner,
                    route: bare.clone(),
                },
            );
            plan.at(
                T_RESTORE,
                FaultEvent::RestoreLink(cast.victim, cast.provider),
            );
            plan.at(
                T_RESTORE + 5,
                FaultEvent::Withdraw {
                    asn: cast.partner,
                    prefix,
                },
            );
            scenario.origin_list = None;
            scenario.partner_originates = false;
        }
        ChaosScenario::OriginFlap => {
            // The backup origin flaps six times, implicit lists, MRAI on:
            // bounded legitimate churn that must still converge.
            plan.every(
                T_CHURN,
                40,
                Some(6),
                FaultEvent::ToggleOrigin {
                    asn: cast.partner,
                    route: bare,
                },
            );
            scenario.origin_list = None;
            scenario.partner_originates = false;
            scenario.mrai = 20;
        }
        ChaosScenario::LossyCore => {
            // Proper lists everywhere; the transit core misbehaves. Every
            // transit-transit link gets the model — a single link sees only
            // a couple of updates per convergence, far too few to exercise
            // the fault classes.
            for core in core_links(graph) {
                plan.set_link_model(
                    core,
                    LinkFaultModel {
                        drop: 0.15,
                        corrupt: 0.05,
                        duplicate: 0.05,
                        reorder: 0.10,
                        max_extra_delay: 5,
                    },
                );
            }
        }
        ChaosScenario::SessionReset => {
            // The victim's provider session resets repeatedly, and that
            // provider strips MOAS communities, so each re-announcement wave
            // re-raises implicit-list conflicts downstream.
            plan.every(
                T_CHURN,
                60,
                Some(3),
                FaultEvent::ResetSession(cast.victim, cast.provider),
            );
            scenario.strippers.insert(cast.provider);
        }
        ChaosScenario::FlapStorm => {
            // Unbounded flap, MRAI off: never converges. Only the watchdog
            // can end the run.
            plan.every(
                5,
                6,
                None,
                FaultEvent::ToggleOrigin {
                    asn: cast.partner,
                    route: bare,
                },
            );
            scenario.origin_list = None;
            scenario.partner_originates = false;
            scenario.watchdog = WATCHDOG_EVERY;
            scenario.expect_oscillation = true;
        }
        ChaosScenario::MraiDeferral => {
            // Six flap edges 10 ticks apart under a 30-tick MRAI window:
            // every edge after the first lands while the timers are still
            // closed, so it is deferred (and mostly coalesced away) rather
            // than propagated. Bounded churn — must converge once the last
            // window flushes.
            plan.every(
                T_CHURN,
                10,
                Some(6),
                FaultEvent::ToggleOrigin {
                    asn: cast.partner,
                    route: bare,
                },
            );
            scenario.origin_list = None;
            scenario.partner_originates = false;
            scenario.mrai = 30;
        }
    }
    scenario.plan = plan;
    scenario
}

/// The transit-transit links of the topology — the "core" the lossy-core
/// scenario degrades.
fn core_links(graph: &AsGraph) -> Vec<(Asn, Asn)> {
    let transit: BTreeSet<Asn> = graph.transit_asns().into_iter().collect();
    graph
        .links()
        .into_iter()
        .filter(|(a, b)| transit.contains(a) && transit.contains(b))
        .collect()
}

/// The detector deployment of one trial: exactly `Full`/`None` at the
/// extremes (so fraction 1.0 reproduces the original runs bit-for-bit), a
/// per-trial seeded sample in between — different trials deploy different
/// subsets, like real incremental rollout.
fn deployment_for(graph: &AsGraph, cast: &TrialPlan, fraction: f64) -> Deployment {
    if fraction >= 1.0 {
        Deployment::Full
    } else if fraction <= 0.0 {
        Deployment::None
    } else {
        let asns: Vec<Asn> = graph.asns().collect();
        Deployment::sample(
            &asns,
            fraction,
            sim_engine::rng::derive_seed(cast.seed, 0xDE91),
        )
    }
}

/// Runs one chaos trial. Network metrics of the churn-only run land in
/// `sink` under the `churn.` prefix, those of the churn+attack run under
/// `attack.`; trial-level verdicts (alarm counts, detection latency,
/// oscillation) under `chaos.*`. With [`NoopSink`] every export is skipped.
fn run_one<S: MetricsSink>(
    graph: &AsGraph,
    config: &ChaosConfig,
    cast: &TrialPlan,
    deployment_fraction: f64,
    sink: &mut S,
) -> TrialResult {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();

    let deployment = deployment_for(graph, cast, deployment_fraction);

    // Churn-only run: every alarm is noise.
    let scenario = build_scenario(graph, config, cast);
    let (churn_net, churn_err) =
        run_scenario(graph, config, cast, &scenario, deployment.clone(), None);
    let oscillated = matches!(churn_err, Some(ConvergenceError::Oscillating { .. }));
    assert_eq!(
        oscillated, scenario.expect_oscillation,
        "scenario {} convergence surprise: {churn_err:?}",
        config.scenario
    );
    let cycle_len = match churn_err {
        Some(ConvergenceError::Oscillating { cycle_len }) => cycle_len,
        _ => 0,
    };
    let faults = churn_net.fault_stats_total();
    let mrai_deferred = churn_net.stats().mrai_deferred;
    let churn_alarms = churn_net.monitor().alarms().len() as u64;
    if S::ENABLED {
        churn_net.export_metrics(&mut Scoped::new(sink, "churn"));
        sink.counter_add("chaos.trials", 1);
        sink.counter_add("chaos.churn_alarms", churn_alarms);
        sink.counter_add("chaos.mrai_deferred", mrai_deferred);
        if oscillated {
            sink.counter_add("chaos.oscillating_trials", 1);
            sink.record("chaos.cycle_len", cycle_len);
        } else {
            sink.record(
                "chaos.convergence_ticks.churn",
                churn_net.stats().converged_at.ticks(),
            );
        }
    }

    // Churn + attack run: measure detection of a forged origin injected
    // mid-churn (skipped for the non-converging storm).
    let latency = if scenario.expect_oscillation {
        None
    } else {
        let scenario = build_scenario(graph, config, cast);
        let forged = FalseOriginAttack::new(ListForgery::IncludeSelf).forged_route(
            prefix,
            cast.attacker,
            &valid_list,
        );
        let (attack_net, attack_err) = run_scenario(
            graph,
            config,
            cast,
            &scenario,
            deployment,
            Some(FaultEvent::Announce {
                asn: cast.attacker,
                route: forged,
            }),
        );
        assert!(
            attack_err.is_none(),
            "attack run must converge: {attack_err:?}"
        );
        let latency = attack_net
            .monitor()
            .alarms()
            .iter()
            .filter(|a| a.resolution == Resolution::Confirmed)
            .map(|a| a.at.ticks())
            .filter(|&at| at >= T_ATTACK)
            .min()
            .map(|at| at - T_ATTACK);
        if S::ENABLED {
            attack_net.export_metrics(&mut Scoped::new(sink, "attack"));
            sink.record(
                "chaos.convergence_ticks.attack",
                attack_net.stats().converged_at.ticks(),
            );
            match latency {
                Some(l) => sink.record("chaos.detection_latency_ticks", l),
                None => sink.counter_add("chaos.missed_detections", 1),
            }
        }
        latency
    };

    TrialResult {
        churn_alarms,
        latency,
        oscillated,
        cycle_len,
        messages: churn_net.stats().total_messages(),
        dropped: faults.dropped,
        corrupted: faults.corrupted,
        duplicated: faults.duplicated,
        reordered: faults.reordered,
        mrai_deferred,
    }
}

/// [`run_one`] on the sharded engine: alarm counts and detection latency are
/// summed/min-folded across the per-shard monitors, which reproduces the
/// single-monitor totals because alarms and verifier queries are
/// observer-scoped.
#[allow(clippy::too_many_arguments)]
fn run_one_sharded<S: MetricsSink>(
    graph: &AsGraph,
    config: &ChaosConfig,
    cast: &TrialPlan,
    deployment_fraction: f64,
    shards: usize,
    jobs: usize,
    sink: &mut S,
) -> TrialResult {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();

    let deployment = deployment_for(graph, cast, deployment_fraction);

    // Churn-only run: every alarm is noise.
    let scenario = build_scenario(graph, config, cast);
    let (churn_net, churn_err) = run_scenario_sharded(
        graph,
        config,
        cast,
        &scenario,
        deployment.clone(),
        None,
        shards,
        jobs,
    );
    let oscillated = matches!(churn_err, Some(ConvergenceError::Oscillating { .. }));
    assert_eq!(
        oscillated, scenario.expect_oscillation,
        "scenario {} convergence surprise: {churn_err:?}",
        config.scenario
    );
    let cycle_len = match churn_err {
        Some(ConvergenceError::Oscillating { cycle_len }) => cycle_len,
        _ => 0,
    };
    let faults = churn_net.fault_stats_total();
    let churn_stats = churn_net.stats();
    let mrai_deferred = churn_stats.mrai_deferred;
    let churn_alarms: u64 = churn_net.monitors().map(|m| m.alarms().len() as u64).sum();
    if S::ENABLED {
        churn_net.export_metrics(&mut Scoped::new(sink, "churn"));
        sink.counter_add("chaos.trials", 1);
        sink.counter_add("chaos.churn_alarms", churn_alarms);
        sink.counter_add("chaos.mrai_deferred", mrai_deferred);
        if oscillated {
            sink.counter_add("chaos.oscillating_trials", 1);
            sink.record("chaos.cycle_len", cycle_len);
        } else {
            sink.record(
                "chaos.convergence_ticks.churn",
                churn_stats.converged_at.ticks(),
            );
        }
    }

    // Churn + attack run: measure detection of a forged origin injected
    // mid-churn (skipped for the non-converging storm).
    let latency = if scenario.expect_oscillation {
        None
    } else {
        let scenario = build_scenario(graph, config, cast);
        let forged = FalseOriginAttack::new(ListForgery::IncludeSelf).forged_route(
            prefix,
            cast.attacker,
            &valid_list,
        );
        let (attack_net, attack_err) = run_scenario_sharded(
            graph,
            config,
            cast,
            &scenario,
            deployment,
            Some(FaultEvent::Announce {
                asn: cast.attacker,
                route: forged,
            }),
            shards,
            jobs,
        );
        assert!(
            attack_err.is_none(),
            "attack run must converge: {attack_err:?}"
        );
        let latency = attack_net
            .monitors()
            .flat_map(|m| m.alarms().iter())
            .filter(|a| a.resolution == Resolution::Confirmed)
            .map(|a| a.at.ticks())
            .filter(|&at| at >= T_ATTACK)
            .min()
            .map(|at| at - T_ATTACK);
        if S::ENABLED {
            attack_net.export_metrics(&mut Scoped::new(sink, "attack"));
            sink.record(
                "chaos.convergence_ticks.attack",
                attack_net.stats().converged_at.ticks(),
            );
            match latency {
                Some(l) => sink.record("chaos.detection_latency_ticks", l),
                None => sink.counter_add("chaos.missed_detections", 1),
            }
        }
        latency
    };

    TrialResult {
        churn_alarms,
        latency,
        oscillated,
        cycle_len,
        messages: churn_stats.total_messages(),
        dropped: faults.dropped,
        corrupted: faults.corrupted,
        duplicated: faults.duplicated,
        reordered: faults.reordered,
        mrai_deferred,
    }
}

/// [`run_scenario`] on the sharded engine: one monitor per shard, cloned
/// from the same config and registry, so the union of the per-shard alarm
/// logs equals the classic single log for any partition.
#[allow(clippy::too_many_arguments)]
fn run_scenario_sharded(
    graph: &AsGraph,
    config: &ChaosConfig,
    cast: &TrialPlan,
    scenario: &Scenario,
    deployment: Deployment,
    attack: Option<FaultEvent>,
    shards: usize,
    jobs: usize,
) -> (
    ShardedNetwork<MoasMonitor<RegistryVerifier>>,
    Option<ConvergenceError>,
) {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();

    let monitor = || {
        let mut registry = RegistryVerifier::new();
        registry.register(prefix, valid_list.clone());
        MoasMonitor::new(
            MoasConfig {
                deployment: deployment.clone(),
                strippers: scenario.strippers.clone(),
                on_unresolved: UnresolvedPolicy::Accept,
            },
            registry,
        )
    };
    let mut net = ShardedNetwork::with_monitor_and_jitter(
        graph,
        shards,
        jobs,
        cast.seed,
        config.max_link_delay,
        monitor,
    );
    net.set_mrai(scenario.mrai);
    net.set_watchdog(scenario.watchdog);

    let mut plan = scenario.plan.clone();
    if let Some(event) = attack {
        plan.at(T_ATTACK, event);
    }
    net.set_fault_plan(plan).expect("planned casts are valid");

    net.originate(cast.victim, prefix, scenario.origin_list.clone());
    if scenario.partner_originates {
        net.originate(cast.partner, prefix, scenario.origin_list.clone());
    }

    let err = match net.run() {
        Ok(_) => None,
        Err(err @ ConvergenceError::Oscillating { .. }) => Some(err),
        Err(err) => panic!("chaos trial blew its event budget: {err}"),
    };
    (net, err)
}

/// Builds the network for one run, installs the (possibly attack-augmented)
/// plan, and drives it. Returns the network for inspection plus the
/// convergence error, if any — budget exhaustion is a driver bug and panics;
/// oscillation is a legitimate verdict the caller interprets.
fn run_scenario(
    graph: &AsGraph,
    config: &ChaosConfig,
    cast: &TrialPlan,
    scenario: &Scenario,
    deployment: Deployment,
    attack: Option<FaultEvent>,
) -> (
    Network<MoasMonitor<RegistryVerifier>>,
    Option<ConvergenceError>,
) {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();
    let mut registry = RegistryVerifier::new();
    registry.register(prefix, valid_list);

    let monitor = MoasMonitor::new(
        MoasConfig {
            deployment,
            strippers: scenario.strippers.clone(),
            on_unresolved: UnresolvedPolicy::Accept,
        },
        registry,
    );
    let mut net =
        Network::with_monitor_and_jitter(graph, monitor, cast.seed, config.max_link_delay);
    net.set_mrai(scenario.mrai);
    net.set_watchdog(scenario.watchdog);

    let mut plan = scenario.plan.clone();
    if let Some(event) = attack {
        plan.at(T_ATTACK, event);
    }
    net.set_fault_plan(plan).expect("planned casts are valid");

    net.originate(cast.victim, prefix, scenario.origin_list.clone());
    if scenario.partner_originates {
        net.originate(cast.partner, prefix, scenario.origin_list.clone());
    }

    let err = match net.run() {
        Ok(_) => None,
        Err(err @ ConvergenceError::Oscillating { .. }) => Some(err),
        Err(err) => panic!("chaos trial blew its event budget: {err}"),
    };
    (net, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_names_round_trip() {
        for scenario in ChaosScenario::all() {
            let parsed: ChaosScenario = scenario.name().parse().unwrap();
            assert_eq!(parsed, scenario);
        }
        let err = "tsunami".parse::<ChaosScenario>().unwrap_err();
        assert!(err.to_string().contains("tsunami"));
        assert!(err.to_string().contains("failover"));
    }

    #[test]
    fn failover_detects_attack_and_survives_churn() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::Failover));
        assert_eq!(report.trials, 6);
        assert_eq!(report.oscillating_trials, 0);
        assert!(report.detected_trials > 0, "attacks must be detected");
        assert!(report.mean_messages > 0.0);
        // The backup origin comes online with an implicit list: the detector
        // must raise (false) alarms during legitimate failover.
        assert!(report.false_alarm_rate > 0.0);
    }

    #[test]
    fn origin_flap_converges_with_mrai() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::OriginFlap));
        assert_eq!(report.oscillating_trials, 0);
        assert!(report.mean_messages > 0.0);
    }

    #[test]
    fn lossy_core_perturbs_messages_without_breaking_detection() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::LossyCore));
        assert_eq!(report.oscillating_trials, 0);
        assert!(
            report.mean_dropped + report.mean_corrupted + report.mean_duplicated > 0.0,
            "the fault model must actually fire"
        );
        assert!(report.detected_trials > 0);
    }

    #[test]
    fn session_reset_churn_raises_false_alarms() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::SessionReset));
        assert_eq!(report.oscillating_trials, 0);
        // The stripping provider mangles lists on every re-announcement
        // wave: legitimate churn must look suspicious to the detector.
        assert!(report.false_alarm_rate > 0.0);
    }

    #[test]
    fn flap_storm_always_trips_the_watchdog() {
        let mut config = ChaosConfig::quick(ChaosScenario::FlapStorm);
        config.trials = 3;
        let report = run_chaos(&config);
        assert_eq!(report.oscillating_trials, report.trials);
        assert!(report.mean_cycle_len > 0.0);
        assert_eq!(report.detected_trials, 0);
        assert_eq!(report.missed_detection_rate, 0.0);
    }

    #[test]
    fn mrai_deferral_defers_updates_and_still_detects() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::MraiDeferral));
        assert_eq!(report.oscillating_trials, 0);
        assert!(
            report.mean_mrai_deferred > 0.0,
            "flapping faster than the MRAI window must defer updates"
        );
        assert!(report.detected_trials > 0, "attacks must still be detected");
    }

    #[test]
    fn sharded_chaos_is_shard_count_invariant() {
        let config = ChaosConfig::quick(ChaosScenario::MraiDeferral);
        let one = run_chaos_sharded(&config, 1, 1);
        assert!(one.mean_mrai_deferred > 0.0);
        for shards in [2, 4] {
            assert_eq!(
                run_chaos_sharded(&config, shards, 2),
                one,
                "shards={shards}"
            );
        }
    }

    #[test]
    fn chaos_runs_are_deterministic() {
        let config = ChaosConfig::quick(ChaosScenario::Failover);
        assert_eq!(run_chaos(&config), run_chaos(&config));
    }

    #[test]
    fn parallel_chaos_is_bit_identical_to_serial() {
        let config = ChaosConfig::quick(ChaosScenario::SessionReset);
        let serial = run_chaos(&config);
        for jobs in [2, 4] {
            assert_eq!(run_chaos_jobs(&config, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn deployment_sweep_tracks_detector_coverage() {
        let config = ChaosConfig::quick(ChaosScenario::Failover);
        let sweep = run_deployment_sweep_jobs(&config, &[0.0, 0.5, 1.0], 1);
        assert_eq!(sweep.scenario, config.scenario);
        assert_eq!(sweep.points.len(), 3);

        let nobody = &sweep.points[0].report;
        let half = &sweep.points[1].report;
        let everyone = &sweep.points[2].report;
        // With no detector deployed there is nothing to alarm or detect.
        assert_eq!(nobody.detected_trials, 0);
        assert_eq!(nobody.false_alarm_rate, 0.0);
        assert_eq!(nobody.missed_detection_rate, 1.0);
        // Full deployment is bit-identical to the plain chaos run.
        assert_eq!(*everyone, run_chaos(&config));
        // Coverage can only help: detection never gets worse as the
        // detector spreads.
        assert!(half.detected_trials >= nobody.detected_trials);
        assert!(everyone.detected_trials >= half.detected_trials);
        assert!(everyone.detected_trials > 0);
        // The same casts and fault plans replay at every fraction.
        assert_eq!(nobody.mean_messages, everyone.mean_messages);
    }

    #[test]
    fn deployment_sweep_is_deterministic_and_parallel_safe() {
        let config = ChaosConfig::quick(ChaosScenario::SessionReset);
        let serial = run_deployment_sweep_jobs(&config, &[0.5], 1);
        assert_eq!(run_deployment_sweep_jobs(&config, &[0.5], 1), serial);
        assert_eq!(run_deployment_sweep_jobs(&config, &[0.5], 4), serial);
    }

    #[test]
    fn deployment_sweep_json_round_trips() {
        let mut config = ChaosConfig::quick(ChaosScenario::OriginFlap);
        config.trials = 2;
        let sweep = run_deployment_sweep_jobs(&config, &[0.0, 1.0], 1);
        let back: DeploymentSweep = crate::json::from_str(&sweep.to_json()).unwrap();
        assert_eq!(back, sweep);
    }

    #[test]
    fn report_json_round_trips() {
        let report = run_chaos(&ChaosConfig::quick(ChaosScenario::OriginFlap));
        let json = report.to_json();
        let back: ChaosReport = crate::json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn config_json_round_trips() {
        let config = ChaosConfig::quick(ChaosScenario::LossyCore);
        let json = config.to_json();
        let back: ChaosConfig = crate::json::from_str(&json).unwrap();
        assert_eq!(back.scenario, config.scenario);
        assert_eq!(back.trials, config.trials);
        assert_eq!(back.seed, config.seed);
    }
}
