//! Dependency-free JSON encoding for experiment provenance.
//!
//! The experiment configs and figure reports are serialized to pretty JSON
//! for EXPERIMENTS.md; with no crates.io access in the build environment this
//! module replaces `serde`/`serde_json` with a small hand-rolled value type,
//! printer, and parser covering exactly the shapes the reports need
//! (objects, arrays, strings, finite numbers, booleans).
//!
//! Numbers round-trip exactly: they are printed with Rust's shortest
//! round-trip `f64` formatting and parsed back with `str::parse::<f64>`.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Why a JSON document failed to parse or decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset the parser had reached (0 for decode errors).
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (at byte {})", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn decode_err(message: impl Into<String>) -> JsonError {
    JsonError {
        message: message.into(),
        offset: 0,
    }
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation.
    #[must_use]
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut parser = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing data after document"));
        }
        Ok(value)
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        // Integral values print without an exponent or fraction.
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n:?}"));
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            message: message.into(),
            offset: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{text}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected byte 0x{other:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ASCII \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("surrogate \\u escape"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| JsonError {
            message: format!("invalid number '{text}'"),
            offset: start,
        })?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

/// Types encodable as JSON.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json_value(&self) -> Json;
}

/// Types decodable from JSON.
pub trait FromJson: Sized {
    /// Builds from a JSON value.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on a shape or domain mismatch.
    fn from_json_value(value: &Json) -> Result<Self, JsonError>;
}

/// Pretty-prints any encodable value.
pub fn to_string_pretty<T: ToJson>(value: &T) -> String {
    value.to_json_value().pretty()
}

/// Parses and decodes any decodable value.
///
/// # Errors
///
/// Returns [`JsonError`] if the document does not parse or decode.
pub fn from_str<T: FromJson>(input: &str) -> Result<T, JsonError> {
    T::from_json_value(&Json::parse(input)?)
}

impl ToJson for f64 {
    fn to_json_value(&self) -> Json {
        Json::Num(*self)
    }
}

impl FromJson for f64 {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Num(n) => Ok(*n),
            _ => Err(decode_err("expected number")),
        }
    }
}

macro_rules! impl_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json_value(&self) -> Json {
                Json::Num(*self as f64)
            }
        }
        impl FromJson for $t {
            fn from_json_value(value: &Json) -> Result<Self, JsonError> {
                match value {
                    Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (<$t>::MAX as f64) => {
                        Ok(*n as $t)
                    }
                    _ => Err(decode_err(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_json_int!(u32, u64, usize);

impl ToJson for bool {
    fn to_json_value(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Bool(b) => Ok(*b),
            _ => Err(decode_err("expected boolean")),
        }
    }
}

impl ToJson for String {
    fn to_json_value(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => Ok(s.clone()),
            _ => Err(decode_err("expected string")),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json_value(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json_value).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Arr(items) => items.iter().map(T::from_json_value).collect(),
            _ => Err(decode_err("expected array")),
        }
    }
}

impl<K: ToJson + Ord + fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json_value(&self) -> Json {
        Json::Obj(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K, V> FromJson for BTreeMap<K, V>
where
    K: FromJson + Ord + std::str::FromStr,
    V: FromJson,
{
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Obj(fields) => fields
                .iter()
                .map(|(k, v)| {
                    let key = k
                        .parse::<K>()
                        .map_err(|_| decode_err(format!("bad map key '{k}'")))?;
                    Ok((key, V::from_json_value(v)?))
                })
                .collect(),
            _ => Err(decode_err("expected object")),
        }
    }
}

/// Derives [`ToJson`]/[`FromJson`] for a named-field struct.
macro_rules! impl_json_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json_value(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), self.$field.to_json_value())),+
                ])
            }
        }

        impl $crate::json::FromJson for $ty {
            fn from_json_value(value: &$crate::json::Json) -> Result<Self, $crate::json::JsonError> {
                Ok($ty {
                    $($field: $crate::json::FromJson::from_json_value(
                        value.get(stringify!($field)).ok_or_else(|| $crate::json::JsonError {
                            message: format!(
                                "missing field '{}' of {}",
                                stringify!($field),
                                stringify!($ty),
                            ),
                            offset: 0,
                        })?,
                    )?),+
                })
            }
        }
    };
}

pub(crate) use impl_json_struct;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        for doc in ["0", "-12.5", "1e3", "true", "false", "null", "\"a b\\nc\""] {
            let v = Json::parse(doc).unwrap();
            assert_eq!(Json::parse(&v.pretty()).unwrap(), v, "{doc}");
        }
    }

    #[test]
    fn struct_shape_round_trips() {
        let value = Json::Obj(vec![
            ("name".into(), Json::Str("fig9a".into())),
            (
                "points".into(),
                Json::Arr(vec![Json::Num(0.25), Json::Num(36.0)]),
            ),
            ("empty".into(), Json::Arr(vec![])),
            ("flag".into(), Json::Bool(true)),
        ]);
        let text = value.pretty();
        assert_eq!(Json::parse(&text).unwrap(), value);
        assert!(text.contains("\"points\": [\n"));
    }

    #[test]
    fn numbers_round_trip_exactly() {
        for n in [0.1, 1.0 / 3.0, 683.0, 1e-9, f64::MAX] {
            let printed = Json::Num(n).pretty();
            match Json::parse(&printed).unwrap() {
                Json::Num(back) => assert_eq!(back, n, "{printed}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn parse_errors_carry_offsets() {
        let err = Json::parse("{\"a\": }").unwrap_err();
        assert_eq!(err.offset, 6);
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("[1] extra").is_err());
        assert!(Json::parse("+inf").is_err());
    }

    #[test]
    fn map_codec() {
        let mut m = BTreeMap::new();
        m.insert(2usize, 7usize);
        m.insert(3usize, 1usize);
        let back: BTreeMap<usize, usize> = from_str(&to_string_pretty(&m)).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn decode_type_mismatch_fails() {
        assert!(from_str::<f64>("\"nope\"").is_err());
        assert!(from_str::<u64>("1.5").is_err());
        assert!(from_str::<u64>("-3").is_err());
        assert!(from_str::<Vec<f64>>("{}").is_err());
    }
}
