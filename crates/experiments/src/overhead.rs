//! The §4.3 overhead analysis: what attaching MOAS lists costs.
//!
//! "The attachment of a MOAS list also adds to the overall size of the
//! routing table and route announcements. Routes that originate from a
//! single AS need not attach a MOAS list. [...] less than 3,000 routes
//! originate from multiple ASes [...] about 99% of all MOAS cases involve 3
//! or fewer origin ASes. Thus the MOAS list itself should be relatively
//! short." This module quantifies that argument over any daily table dump.

use std::collections::BTreeMap;
use std::fmt;

use route_measurement::DailyDump;
use serde::{Deserialize, Serialize};

/// Wire-size assumptions for the estimate, in bytes.
///
/// A community attribute value is exactly 4 octets (RFC 1997); the attribute
/// header costs 3 octets once per route that carries any community. The
/// baseline per-route size approximates a 2001-era RIB entry (prefix, a
/// ~3.7-hop AS path of 2-octet ASNs, origin/next-hop attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireModel {
    /// Estimated bytes per table route without MOAS lists.
    pub baseline_route_bytes: u64,
    /// Bytes per MOAS-list member (one community value).
    pub bytes_per_member: u64,
    /// One-time attribute header bytes per route carrying a list.
    pub attribute_header_bytes: u64,
}

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            baseline_route_bytes: 36,
            bytes_per_member: 4,
            attribute_header_bytes: 3,
        }
    }
}

/// The measured overhead of attaching MOAS lists to a table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverheadReport {
    /// Total routes (prefixes) in the table.
    pub total_routes: usize,
    /// Routes announced by multiple origins — the only ones needing a list.
    pub multi_origin_routes: usize,
    /// Distribution of list sizes over the multi-origin routes.
    pub list_size_distribution: BTreeMap<usize, usize>,
    /// Bytes the MOAS lists add.
    pub added_bytes: u64,
    /// Estimated table size without lists.
    pub baseline_bytes: u64,
}

impl OverheadReport {
    /// Added bytes relative to the baseline table size.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            self.added_bytes as f64 / self.baseline_bytes as f64
        }
    }

    /// Fraction of routes that need a list at all.
    #[must_use]
    pub fn affected_fraction(&self) -> f64 {
        if self.total_routes == 0 {
            0.0
        } else {
            self.multi_origin_routes as f64 / self.total_routes as f64
        }
    }

    /// Fraction of multi-origin routes with 3 or fewer origins (the paper's
    /// "about 99%").
    #[must_use]
    pub fn short_list_fraction(&self) -> f64 {
        if self.multi_origin_routes == 0 {
            return 1.0;
        }
        let short: usize = self
            .list_size_distribution
            .iter()
            .filter(|(&size, _)| size <= 3)
            .map(|(_, &n)| n)
            .sum();
        short as f64 / self.multi_origin_routes as f64
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} routes need a MOAS list ({:.2}%); {} bytes added over ~{} ({:.3}%); {:.1}% of lists have <=3 members",
            self.multi_origin_routes,
            self.total_routes,
            100.0 * self.affected_fraction(),
            self.added_bytes,
            self.baseline_bytes,
            100.0 * self.overhead_fraction(),
            100.0 * self.short_list_fraction(),
        )
    }
}

/// Measures the overhead of MOAS lists over one daily table dump.
///
/// # Example
///
/// ```
/// use experiments::moas_list_overhead;
/// use route_measurement::{generate_timeline, TimelineConfig};
///
/// let timeline = generate_timeline(&TimelineConfig::paper().with_days(30));
/// let report = moas_list_overhead(timeline.dumps.last().unwrap(), Default::default());
/// assert!(report.multi_origin_routes > 0);
/// assert!(report.short_list_fraction() > 0.9);
/// ```
#[must_use]
pub fn moas_list_overhead(dump: &DailyDump, wire: WireModel) -> OverheadReport {
    let mut list_size_distribution: BTreeMap<usize, usize> = BTreeMap::new();
    let mut added_bytes = 0u64;
    let mut total_routes = 0usize;
    let mut multi_origin_routes = 0usize;

    for (_, origins) in dump.iter() {
        total_routes += 1;
        if origins.len() > 1 {
            multi_origin_routes += 1;
            *list_size_distribution.entry(origins.len()).or_insert(0) += 1;
            added_bytes +=
                wire.attribute_header_bytes + wire.bytes_per_member * origins.len() as u64;
        }
    }

    OverheadReport {
        total_routes,
        multi_origin_routes,
        list_size_distribution,
        added_bytes,
        baseline_bytes: wire.baseline_route_bytes * total_routes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Ipv4Prefix};

    fn p(i: u32) -> Ipv4Prefix {
        Ipv4Prefix::new(i << 16, 16)
    }

    #[test]
    fn empty_dump_zero_overhead() {
        let report = moas_list_overhead(&DailyDump::new(0), WireModel::default());
        assert_eq!(report.total_routes, 0);
        assert_eq!(report.overhead_fraction(), 0.0);
        assert_eq!(report.affected_fraction(), 0.0);
        assert_eq!(report.short_list_fraction(), 1.0);
    }

    #[test]
    fn only_multi_origin_routes_pay() {
        let mut dump = DailyDump::new(0);
        dump.observe(p(1), Asn(10)); // single origin: free
        dump.observe(p(2), Asn(20));
        dump.observe(p(2), Asn(21)); // 2-member list
        dump.observe(p(3), Asn(30));
        dump.observe(p(3), Asn(31));
        dump.observe(p(3), Asn(32)); // 3-member list
        let report = moas_list_overhead(&dump, WireModel::default());
        assert_eq!(report.total_routes, 3);
        assert_eq!(report.multi_origin_routes, 2);
        assert_eq!(report.list_size_distribution[&2], 1);
        assert_eq!(report.list_size_distribution[&3], 1);
        // (3 + 4*2) + (3 + 4*3) = 26 bytes.
        assert_eq!(report.added_bytes, 26);
        assert_eq!(report.baseline_bytes, 108);
        assert_eq!(report.short_list_fraction(), 1.0);
    }

    #[test]
    fn paper_scale_overhead_is_small() {
        // The §4.3 argument at calibrated scale: the MOAS list adds well
        // under 1% to a table where a small minority of routes is
        // multi-origin. Our synthetic dumps only carry a token single-origin
        // background, so scale the baseline to a realistic 100k-route table.
        let timeline = route_measurement::generate_timeline(
            &route_measurement::TimelineConfig::paper().with_days(10),
        );
        let report = moas_list_overhead(timeline.dumps.last().unwrap(), WireModel::default());
        let realistic_table_bytes = 100_000u64 * WireModel::default().baseline_route_bytes;
        let fraction = report.added_bytes as f64 / realistic_table_bytes as f64;
        assert!(fraction < 0.01, "overhead {fraction:.4}");
        assert!(report.short_list_fraction() > 0.95);
    }

    #[test]
    fn display_summarizes() {
        let mut dump = DailyDump::new(0);
        dump.observe(p(2), Asn(20));
        dump.observe(p(2), Asn(21));
        let s = moas_list_overhead(&dump, WireModel::default()).to_string();
        assert!(s.contains("1 of 1 routes"));
        assert!(s.contains("bytes added"));
    }
}
