//! The §4.3 overhead analysis: what attaching MOAS lists costs.
//!
//! "The attachment of a MOAS list also adds to the overall size of the
//! routing table and route announcements. Routes that originate from a
//! single AS need not attach a MOAS list. [...] less than 3,000 routes
//! originate from multiple ASes [...] about 99% of all MOAS cases involve 3
//! or fewer origin ASes. Thus the MOAS list itself should be relatively
//! short." This module quantifies that argument over any daily table dump.

use std::collections::BTreeMap;
use std::fmt;

use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList};
use bgp_wire::bgp::PathAttributes;
use bgp_wire::mrt::{MrtBody, MrtRecord, RibEntry, RibIpv4Unicast};
use route_measurement::DailyDump;

use crate::json;

/// Wire-size assumptions for the estimate, in bytes.
///
/// A community attribute value is exactly 4 octets (RFC 1997); the attribute
/// header costs 3 octets once per route that carries any community. The
/// baseline per-route size approximates a 2001-era RIB entry (prefix, a
/// ~3.7-hop AS path of 2-octet ASNs, origin/next-hop attributes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireModel {
    /// Estimated bytes per table route without MOAS lists.
    pub baseline_route_bytes: u64,
    /// Bytes per MOAS-list member (one community value).
    pub bytes_per_member: u64,
    /// One-time attribute header bytes per route carrying a list.
    pub attribute_header_bytes: u64,
}

json::impl_json_struct!(WireModel {
    baseline_route_bytes,
    bytes_per_member,
    attribute_header_bytes,
});

impl Default for WireModel {
    fn default() -> Self {
        WireModel {
            baseline_route_bytes: 36,
            bytes_per_member: 4,
            attribute_header_bytes: 3,
        }
    }
}

/// The measured overhead of attaching MOAS lists to a table.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadReport {
    /// Total routes (prefixes) in the table.
    pub total_routes: usize,
    /// Routes announced by multiple origins — the only ones needing a list.
    pub multi_origin_routes: usize,
    /// Distribution of list sizes over the multi-origin routes.
    pub list_size_distribution: BTreeMap<usize, usize>,
    /// Bytes the MOAS lists add.
    pub added_bytes: u64,
    /// Estimated table size without lists.
    pub baseline_bytes: u64,
}

json::impl_json_struct!(OverheadReport {
    total_routes,
    multi_origin_routes,
    list_size_distribution,
    added_bytes,
    baseline_bytes,
});

impl OverheadReport {
    /// Added bytes relative to the baseline table size.
    #[must_use]
    pub fn overhead_fraction(&self) -> f64 {
        if self.baseline_bytes == 0 {
            0.0
        } else {
            self.added_bytes as f64 / self.baseline_bytes as f64
        }
    }

    /// Fraction of routes that need a list at all.
    #[must_use]
    pub fn affected_fraction(&self) -> f64 {
        if self.total_routes == 0 {
            0.0
        } else {
            self.multi_origin_routes as f64 / self.total_routes as f64
        }
    }

    /// Fraction of multi-origin routes with 3 or fewer origins (the paper's
    /// "about 99%").
    #[must_use]
    pub fn short_list_fraction(&self) -> f64 {
        if self.multi_origin_routes == 0 {
            return 1.0;
        }
        let short: usize = self
            .list_size_distribution
            .iter()
            .filter(|(&size, _)| size <= 3)
            .map(|(_, &n)| n)
            .sum();
        short as f64 / self.multi_origin_routes as f64
    }
}

impl fmt::Display for OverheadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} routes need a MOAS list ({:.2}%); {} bytes added over ~{} ({:.3}%); {:.1}% of lists have <=3 members",
            self.multi_origin_routes,
            self.total_routes,
            100.0 * self.affected_fraction(),
            self.added_bytes,
            self.baseline_bytes,
            100.0 * self.overhead_fraction(),
            100.0 * self.short_list_fraction(),
        )
    }
}

/// Measures the overhead of MOAS lists over one daily table dump.
///
/// # Example
///
/// ```
/// use experiments::moas_list_overhead;
/// use route_measurement::{generate_timeline, TimelineConfig};
///
/// let timeline = generate_timeline(&TimelineConfig::paper().with_days(30));
/// let report = moas_list_overhead(timeline.dumps.last().unwrap(), Default::default());
/// assert!(report.multi_origin_routes > 0);
/// assert!(report.short_list_fraction() > 0.9);
/// ```
#[must_use]
pub fn moas_list_overhead(dump: &DailyDump, wire: WireModel) -> OverheadReport {
    overhead_with(dump, |_, origins| {
        let added = if origins.len() > 1 {
            wire.attribute_header_bytes + wire.bytes_per_member * origins.len() as u64
        } else {
            0
        };
        (wire.baseline_route_bytes, added)
    })
}

/// MRT framing bytes per RIB record that [`WireModel`]'s per-route estimate
/// deliberately leaves out: the 12-byte record header, the 4-byte sequence
/// number, and the 2-byte entry count.
pub const MRT_FRAMING_BYTES: u64 = 18;

/// Measures the overhead of MOAS lists by *actually encoding* each table
/// route with the `bgp-wire` codec, instead of assuming per-route byte
/// counts.
///
/// Every prefix is rendered as one `TABLE_DUMP_V2` `RIB_IPV4_UNICAST`
/// record holding a representative 4-hop route; the route is encoded twice
/// — with and without its MOAS-list communities — and the difference is the
/// measured cost of the list. Baselines subtract [`MRT_FRAMING_BYTES`] so
/// they estimate the same quantity as [`WireModel::baseline_route_bytes`]
/// (the in-table size of one route).
///
/// The companion analytic model stays as a cross-check:
/// `added_bytes` agrees *exactly* (a community is always 4 octets and the
/// attribute header 3), while the measured baseline runs ~20% above the
/// analytic 36-byte estimate — `TABLE_DUMP_V2` mandates 4-octet ASNs
/// (+8 bytes on a 4-hop path) and a 4-byte per-entry `originated_time`,
/// both of which the 2001-era 2-octet analytic model deliberately omits.
/// The cross-check test bounds the divergence at 25%.
///
/// # Panics
///
/// Panics if a MOAS list member exceeds 16 bits — such an origin cannot be
/// carried in an RFC 1997 community, and the measurement pipeline never
/// produces one.
#[must_use]
pub fn measure_moas_list_overhead(dump: &DailyDump) -> OverheadReport {
    overhead_with(dump, measured_cost)
}

/// [`measure_moas_list_overhead`] with the per-route encoding fanned across
/// up to `jobs` worker threads in contiguous chunks.
///
/// All tallies are integers, so the merged report is identical to the serial
/// one for every `jobs` value (partials are still merged in prefix order).
#[must_use]
pub fn measure_moas_list_overhead_jobs(dump: &DailyDump, jobs: usize) -> OverheadReport {
    let entries: Vec<(Ipv4Prefix, &std::collections::BTreeSet<Asn>)> = dump.iter().collect();
    let workers = jobs.max(1).min(entries.len().max(1));
    let chunk_len = entries.len().div_ceil(workers);
    let chunks: Vec<_> = entries.chunks(chunk_len.max(1)).collect();

    let partials = minipool::map_indexed(jobs, chunks.len(), |ci| {
        let mut partial = OverheadReport {
            total_routes: 0,
            multi_origin_routes: 0,
            list_size_distribution: BTreeMap::new(),
            added_bytes: 0,
            baseline_bytes: 0,
        };
        for &(prefix, origins) in chunks[ci] {
            partial.total_routes += 1;
            if origins.len() > 1 {
                partial.multi_origin_routes += 1;
                *partial
                    .list_size_distribution
                    .entry(origins.len())
                    .or_insert(0) += 1;
            }
            let (baseline, added) = measured_cost(prefix, origins);
            partial.baseline_bytes += baseline;
            partial.added_bytes += added;
        }
        partial
    });

    partials.into_iter().fold(
        OverheadReport {
            total_routes: 0,
            multi_origin_routes: 0,
            list_size_distribution: BTreeMap::new(),
            added_bytes: 0,
            baseline_bytes: 0,
        },
        |mut merged, partial| {
            merged.total_routes += partial.total_routes;
            merged.multi_origin_routes += partial.multi_origin_routes;
            for (size, count) in partial.list_size_distribution {
                *merged.list_size_distribution.entry(size).or_insert(0) += count;
            }
            merged.added_bytes += partial.added_bytes;
            merged.baseline_bytes += partial.baseline_bytes;
            merged
        },
    )
}

/// The measured `(baseline, added)` byte cost of one table route: encode it
/// through the `bgp-wire` codec with and without its MOAS-list communities.
fn measured_cost(prefix: Ipv4Prefix, origins: &std::collections::BTreeSet<Asn>) -> (u64, u64) {
    let representative = origins.iter().next().copied().unwrap_or(Asn(0));
    let base_attrs = PathAttributes {
        origin: bgp_types::RouteOrigin::Igp,
        // A 2001-vintage path: ~4 hops of 2-octet ASNs ending at the
        // origin (matches the WireModel's assumptions).
        as_path: AsPath::from_sequence([Asn(701), Asn(1239), Asn(7018), representative]),
        next_hop: PathAttributes::synthetic_next_hop(Some(Asn(701))),
        local_pref: None,
        communities: Vec::new(),
        mp_reach: None,
        mp_unreach: None,
    };
    let without = encoded_rib_len(prefix, base_attrs.clone());
    let with = if origins.len() > 1 {
        let list: MoasList = origins.iter().copied().collect();
        let mut attrs = base_attrs;
        attrs.communities = list.to_communities();
        encoded_rib_len(prefix, attrs)
    } else {
        without
    };
    (without - MRT_FRAMING_BYTES, with - without)
}

/// Encodes one single-entry RIB record and returns its full length.
fn encoded_rib_len(prefix: Ipv4Prefix, attrs: PathAttributes) -> u64 {
    let record = MrtRecord {
        timestamp: 0,
        body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
            sequence: 0,
            prefix,
            entries: vec![RibEntry {
                peer_index: 0,
                originated_time: 0,
                attrs,
            }],
        }),
    };
    record.encode().expect("16-bit origins always encode").len() as u64
}

/// Shared tally: `cost` returns `(baseline_bytes, added_bytes)` per route.
fn overhead_with(
    dump: &DailyDump,
    mut cost: impl FnMut(Ipv4Prefix, &std::collections::BTreeSet<Asn>) -> (u64, u64),
) -> OverheadReport {
    let mut list_size_distribution: BTreeMap<usize, usize> = BTreeMap::new();
    let mut added_bytes = 0u64;
    let mut baseline_bytes = 0u64;
    let mut total_routes = 0usize;
    let mut multi_origin_routes = 0usize;

    for (prefix, origins) in dump.iter() {
        total_routes += 1;
        if origins.len() > 1 {
            multi_origin_routes += 1;
            *list_size_distribution.entry(origins.len()).or_insert(0) += 1;
        }
        let (baseline, added) = cost(prefix, origins);
        baseline_bytes += baseline;
        added_bytes += added;
    }

    OverheadReport {
        total_routes,
        multi_origin_routes,
        list_size_distribution,
        added_bytes,
        baseline_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{Asn, Ipv4Prefix};

    fn p(i: u32) -> Ipv4Prefix {
        Ipv4Prefix::new(i << 16, 16)
    }

    #[test]
    fn empty_dump_zero_overhead() {
        let report = moas_list_overhead(&DailyDump::new(0), WireModel::default());
        assert_eq!(report.total_routes, 0);
        assert_eq!(report.overhead_fraction(), 0.0);
        assert_eq!(report.affected_fraction(), 0.0);
        assert_eq!(report.short_list_fraction(), 1.0);
    }

    #[test]
    fn only_multi_origin_routes_pay() {
        let mut dump = DailyDump::new(0);
        dump.observe(p(1), Asn(10)); // single origin: free
        dump.observe(p(2), Asn(20));
        dump.observe(p(2), Asn(21)); // 2-member list
        dump.observe(p(3), Asn(30));
        dump.observe(p(3), Asn(31));
        dump.observe(p(3), Asn(32)); // 3-member list
        let report = moas_list_overhead(&dump, WireModel::default());
        assert_eq!(report.total_routes, 3);
        assert_eq!(report.multi_origin_routes, 2);
        assert_eq!(report.list_size_distribution[&2], 1);
        assert_eq!(report.list_size_distribution[&3], 1);
        // (3 + 4*2) + (3 + 4*3) = 26 bytes.
        assert_eq!(report.added_bytes, 26);
        assert_eq!(report.baseline_bytes, 108);
        assert_eq!(report.short_list_fraction(), 1.0);
    }

    #[test]
    fn paper_scale_overhead_is_small() {
        // The §4.3 argument at calibrated scale: the MOAS list adds well
        // under 1% to a table where a small minority of routes is
        // multi-origin. Our synthetic dumps only carry a token single-origin
        // background, so scale the baseline to a realistic 100k-route table.
        let timeline = route_measurement::generate_timeline(
            &route_measurement::TimelineConfig::paper().with_days(10),
        );
        let report = moas_list_overhead(timeline.dumps.last().unwrap(), WireModel::default());
        let realistic_table_bytes = 100_000u64 * WireModel::default().baseline_route_bytes;
        let fraction = report.added_bytes as f64 / realistic_table_bytes as f64;
        assert!(fraction < 0.01, "overhead {fraction:.4}");
        assert!(report.short_list_fraction() > 0.95);
    }

    #[test]
    fn measured_agrees_with_analytic_model() {
        let timeline = route_measurement::generate_timeline(
            &route_measurement::TimelineConfig::paper().with_days(10),
        );
        let dump = timeline.dumps.last().unwrap();
        let analytic = moas_list_overhead(dump, WireModel::default());
        let measured = measure_moas_list_overhead(dump);

        // Same routes, same lists.
        assert_eq!(measured.total_routes, analytic.total_routes);
        assert_eq!(measured.multi_origin_routes, analytic.multi_origin_routes);
        assert_eq!(
            measured.list_size_distribution,
            analytic.list_size_distribution
        );

        // The added bytes agree *exactly*: one 3-byte attribute header plus
        // one 4-byte community per member, whether estimated or encoded.
        assert_eq!(measured.added_bytes, analytic.added_bytes);

        // Baselines agree within 25% documented slack: the measured route
        // is bigger than the analytic 36 bytes because TABLE_DUMP_V2
        // encodes 4-octet ASNs (+8 bytes on a 4-hop path) and a 4-byte
        // per-entry originated_time, which the 2-octet 2001-era analytic
        // model omits. The measured side must still be the *larger* one.
        let ratio = measured.baseline_bytes as f64 / analytic.baseline_bytes as f64;
        assert!(
            (1.0..1.25).contains(&ratio),
            "baseline ratio {ratio:.3}: measured {} vs analytic {}",
            measured.baseline_bytes,
            analytic.baseline_bytes
        );
    }

    #[test]
    fn parallel_measurement_matches_serial() {
        let timeline = route_measurement::generate_timeline(
            &route_measurement::TimelineConfig::paper().with_days(10),
        );
        let dump = timeline.dumps.last().unwrap();
        let serial = measure_moas_list_overhead(dump);
        for jobs in [1, 2, 4] {
            assert_eq!(
                measure_moas_list_overhead_jobs(dump, jobs),
                serial,
                "jobs={jobs}"
            );
        }
    }

    #[test]
    fn parallel_measurement_of_empty_dump() {
        let report = measure_moas_list_overhead_jobs(&DailyDump::new(0), 4);
        assert_eq!(report.total_routes, 0);
        assert_eq!(report.added_bytes, 0);
    }

    #[test]
    fn measured_added_bytes_per_route() {
        let mut dump = DailyDump::new(0);
        dump.observe(p(1), Asn(10));
        dump.observe(p(2), Asn(20));
        dump.observe(p(2), Asn(21));
        let report = measure_moas_list_overhead(&dump);
        // One 2-member list: 3-byte attr header + 2 * 4-byte communities.
        assert_eq!(report.added_bytes, 11);
        assert_eq!(report.total_routes, 2);
        assert_eq!(report.multi_origin_routes, 1);
    }

    #[test]
    fn display_summarizes() {
        let mut dump = DailyDump::new(0);
        dump.observe(p(2), Asn(20));
        dump.observe(p(2), Asn(21));
        let s = moas_list_overhead(&dump, WireModel::default()).to_string();
        assert!(s.contains("1 of 1 routes"));
        assert!(s.contains("bytes added"));
    }
}
