//! Serialization and rendering for observability snapshots.
//!
//! `minimetrics` deliberately knows nothing about JSON; this module bridges
//! its [`MetricsSnapshot`]/[`Log2Histogram`] types into the crate's
//! hand-rolled [`json`](crate::json) codec (the local `ToJson`/`FromJson`
//! traits let us implement the codec for the foreign types here) and renders
//! snapshots as the human-readable summary behind `moas-lab metrics-summary`.
//!
//! # Serialized shape
//!
//! ```json
//! {
//!   "counters":   { "net.messages.announcements": 683, ... },
//!   "gauges":     { "sim.queue.depth_high_water": 41, ... },
//!   "histograms": {
//!     "trial.convergence_ticks.origin": {
//!       "count": 15, "sum": 310, "min": 14, "max": 29,
//!       "buckets": [[4, 3], [5, 12]]
//!     }
//!   }
//! }
//! ```
//!
//! Histogram buckets serialize sparsely as `[bucket index, count]` pairs
//! (see [`Log2Histogram::bucket_index`] for the value → bucket mapping).
//!
//! JSON numbers are `f64`, so counter/sum values above 2^53 would lose
//! precision in a round-trip; simulation counters stay far below that.

use minimetrics::{Log2Histogram, MetricsSnapshot};

use crate::json::{FromJson, Json, JsonError, ToJson};
use crate::overhead::OverheadReport;

impl ToJson for Log2Histogram {
    fn to_json_value(&self) -> Json {
        let buckets: Vec<Json> = self
            .nonzero_buckets()
            .map(|(index, count)| Json::Arr(vec![Json::Num(index as f64), Json::Num(count as f64)]))
            .collect();
        Json::Obj(vec![
            ("count".into(), self.count().to_json_value()),
            ("sum".into(), self.sum().to_json_value()),
            ("min".into(), self.min().unwrap_or(0).to_json_value()),
            ("max".into(), self.max().unwrap_or(0).to_json_value()),
            ("buckets".into(), Json::Arr(buckets)),
        ])
    }
}

impl FromJson for Log2Histogram {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| JsonError {
                message: format!("missing histogram field '{name}'"),
                offset: 0,
            })
        };
        let count = u64::from_json_value(field("count")?)?;
        let sum = u64::from_json_value(field("sum")?)?;
        let min = u64::from_json_value(field("min")?)?;
        let max = u64::from_json_value(field("max")?)?;
        let pairs = Vec::<Vec<u64>>::from_json_value(field("buckets")?)?;

        let mut hist = Log2Histogram::new();
        for pair in &pairs {
            let [index, bucket_count] = pair.as_slice() else {
                return Err(JsonError {
                    message: "histogram bucket is not an [index, count] pair".into(),
                    offset: 0,
                });
            };
            if *index as usize >= minimetrics::HISTOGRAM_BUCKETS {
                return Err(JsonError {
                    message: format!("histogram bucket index {index} out of range"),
                    offset: 0,
                });
            }
            hist.add_bucket(*index as usize, *bucket_count);
        }
        if hist.count() != count {
            return Err(JsonError {
                message: format!(
                    "histogram count {count} disagrees with bucket total {}",
                    hist.count()
                ),
                offset: 0,
            });
        }
        hist.set_summary(sum, min, max);
        Ok(hist)
    }
}

impl ToJson for MetricsSnapshot {
    fn to_json_value(&self) -> Json {
        Json::Obj(vec![
            ("counters".into(), self.counters.to_json_value()),
            ("gauges".into(), self.gauges.to_json_value()),
            ("histograms".into(), self.histograms.to_json_value()),
        ])
    }
}

impl FromJson for MetricsSnapshot {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        let field = |name: &str| {
            value.get(name).ok_or_else(|| JsonError {
                message: format!("missing snapshot field '{name}'"),
                offset: 0,
            })
        };
        Ok(MetricsSnapshot {
            counters: FromJson::from_json_value(field("counters")?)?,
            gauges: FromJson::from_json_value(field("gauges")?)?,
            histograms: FromJson::from_json_value(field("histograms")?)?,
        })
    }
}

/// Renders a snapshot as the aligned plain-text table behind
/// `moas-lab metrics-summary`: one section per metric kind, histograms with
/// their count/mean/min/max and the value range of their modal bucket.
#[must_use]
pub fn render_metrics_summary(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    if snapshot.is_empty() {
        out.push_str("(empty snapshot)\n");
        return out;
    }

    let key_width = snapshot
        .counters
        .keys()
        .chain(snapshot.gauges.keys())
        .chain(snapshot.histograms.keys())
        .map(String::len)
        .max()
        .unwrap_or(0);

    if !snapshot.counters.is_empty() {
        out.push_str(&format!("counters ({}):\n", snapshot.counters.len()));
        for (key, value) in &snapshot.counters {
            out.push_str(&format!("  {key:<key_width$}  {value}\n"));
        }
    }
    if !snapshot.gauges.is_empty() {
        out.push_str(&format!("gauges ({}):\n", snapshot.gauges.len()));
        for (key, value) in &snapshot.gauges {
            out.push_str(&format!("  {key:<key_width$}  {value}\n"));
        }
    }
    if !snapshot.histograms.is_empty() {
        out.push_str(&format!("histograms ({}):\n", snapshot.histograms.len()));
        for (key, hist) in &snapshot.histograms {
            let modal = hist
                .nonzero_buckets()
                .max_by_key(|&(_, count)| count)
                .map(|(index, _)| Log2Histogram::bucket_range(index));
            out.push_str(&format!(
                "  {key:<key_width$}  count={} mean={:.1} min={} max={}",
                hist.count(),
                hist.mean(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0),
            ));
            if let Some((low, high)) = modal {
                out.push_str(&format!(" mode={low}..={high}"));
            }
            out.push('\n');
        }
    }
    out
}

/// Derives a metrics snapshot from a table-overhead report so `moas-lab
/// overhead --metrics` emits the same artifact shape as the simulation
/// commands: byte totals as counters, the table-size breakdown as gauges,
/// and the MOAS-list-size distribution as a histogram.
#[must_use]
pub fn overhead_metrics(report: &OverheadReport) -> MetricsSnapshot {
    let mut snapshot = MetricsSnapshot::new();
    snapshot
        .counters
        .insert("overhead.added_bytes".into(), report.added_bytes);
    snapshot
        .counters
        .insert("overhead.baseline_bytes".into(), report.baseline_bytes);
    snapshot
        .gauges
        .insert("overhead.total_routes".into(), report.total_routes as u64);
    snapshot.gauges.insert(
        "overhead.multi_origin_routes".into(),
        report.multi_origin_routes as u64,
    );
    let mut sizes = Log2Histogram::new();
    for (&size, &routes) in &report.list_size_distribution {
        for _ in 0..routes {
            sizes.observe(size as u64);
        }
    }
    snapshot
        .histograms
        .insert("overhead.moas_list_size".into(), sizes);
    snapshot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{from_str, to_string_pretty, FromJson};
    use std::collections::BTreeMap;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.counters.insert("net.messages.announcements".into(), 683);
        s.counters.insert("trial.count".into(), 15);
        s.gauges.insert("sim.queue.depth_high_water".into(), 41);
        let mut h = Log2Histogram::new();
        for v in [0, 1, 5, 5, 14, 1024] {
            h.observe(v);
        }
        s.histograms
            .insert("trial.convergence_ticks.origin".into(), h);
        s
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snapshot = sample();
        let text = to_string_pretty(&snapshot);
        let back: MetricsSnapshot = from_str(&text).unwrap();
        assert_eq!(back, snapshot);
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let text = to_string_pretty(&MetricsSnapshot::new());
        let back: MetricsSnapshot = from_str(&text).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn histogram_decode_rejects_malformed_buckets() {
        let no_pair = r#"{"count": 1, "sum": 0, "min": 0, "max": 0, "buckets": [[3]]}"#;
        assert!(from_str::<Log2Histogram>(no_pair).is_err());
        let bad_index = r#"{"count": 1, "sum": 0, "min": 0, "max": 0, "buckets": [[65, 1]]}"#;
        assert!(from_str::<Log2Histogram>(bad_index).is_err());
        let bad_count = r#"{"count": 9, "sum": 0, "min": 0, "max": 0, "buckets": [[0, 1]]}"#;
        assert!(from_str::<Log2Histogram>(bad_count).is_err());
    }

    #[test]
    fn histogram_summary_survives_round_trip() {
        let mut h = Log2Histogram::new();
        h.observe(14);
        h.observe(1000);
        let back = Log2Histogram::from_json_value(&h.to_json_value()).unwrap();
        assert_eq!(back.sum(), 1014);
        assert_eq!(back.min(), Some(14));
        assert_eq!(back.max(), Some(1000));
    }

    #[test]
    fn summary_renders_every_section() {
        let text = render_metrics_summary(&sample());
        assert!(text.contains("counters (2):"));
        assert!(text.contains("net.messages.announcements"));
        assert!(text.contains("gauges (1):"));
        assert!(text.contains("histograms (1):"));
        assert!(text.contains("count=6"));
        assert!(text.contains("min=0 max=1024"));
        assert!(text.contains("mode=4..=7"));
        assert_eq!(
            render_metrics_summary(&MetricsSnapshot::new()),
            "(empty snapshot)\n"
        );
    }

    #[test]
    fn overhead_report_becomes_snapshot() {
        let mut list_size_distribution = BTreeMap::new();
        list_size_distribution.insert(2usize, 3usize);
        list_size_distribution.insert(4usize, 1usize);
        let report = OverheadReport {
            total_routes: 100,
            multi_origin_routes: 4,
            list_size_distribution,
            added_bytes: 56,
            baseline_bytes: 4000,
        };
        let snapshot = overhead_metrics(&report);
        assert_eq!(snapshot.counters["overhead.added_bytes"], 56);
        assert_eq!(snapshot.gauges["overhead.total_routes"], 100);
        let hist = &snapshot.histograms["overhead.moas_list_size"];
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.sum(), 10);
        assert_eq!(hist.max(), Some(4));
    }
}
