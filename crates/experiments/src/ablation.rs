//! Ablations probing the §4.3 limitations and design choices.

use std::collections::BTreeSet;

use as_topology::{AsGraph, InternetModel};
use bgp_engine::{CommunityPolicy, CommunityPolicyMap, ForwardingPlane, Network, ValleyFree};
use bgp_types::{Asn, MoasList};
use minimetrics::{MetricsSink, MetricsSnapshot, NoopSink, RecordingSink, Scoped};
use moas_core::{
    Deployment, ListForgery, MoasConfig, MoasMonitor, RegistryVerifier, SubPrefixHijack,
    UnresolvedPolicy,
};

use crate::json;
use crate::stats::mean;
use crate::trial::{run_trial, run_trial_metrics, TrialConfig};

/// Outcome of the sub-prefix hijack ablation on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPrefixAblation {
    /// Mean % of remaining ASes whose best route for the *hijacked
    /// sub-prefix* points at the attacker, under full MOAS deployment.
    pub subprefix_adoption_pct: f64,
    /// Mean % adopting the false route when the attacker instead announces
    /// the exact victim prefix (same runs, same full deployment).
    pub exact_prefix_adoption_pct: f64,
    /// Mean alarms raised during the sub-prefix runs (expected: 0 — the
    /// mechanism never sees a conflict).
    pub subprefix_alarms: f64,
    /// Mean % of ASes whose *data-plane traffic* to an address inside the
    /// hijacked half lands at the attacker (longest-match forwarding over
    /// the converged FIBs). This is the §4.3 damage the control-plane census
    /// cannot see.
    pub subprefix_traffic_capture_pct: f64,
}

json::impl_json_struct!(SubPrefixAblation {
    subprefix_adoption_pct,
    exact_prefix_adoption_pct,
    subprefix_alarms,
    subprefix_traffic_capture_pct,
});

/// The §4.3 boundary: full MOAS deployment against a more-specific-prefix
/// hijacker. Expected result — reproduced here — is that detection never
/// fires and the hijack succeeds everywhere, while the same attacker
/// announcing the exact prefix is caught.
#[must_use]
pub fn subprefix_ablation(graph: &AsGraph, runs: usize, seed: u64) -> SubPrefixAblation {
    subprefix_ablation_jobs(graph, runs, seed, 1)
}

/// [`subprefix_ablation`] with its independent runs fanned across up to
/// `jobs` worker threads. Every run seeds its own RNG from `(seed, run)`, so
/// the per-run samples — and the index-ordered aggregation — are identical
/// for every `jobs` value.
#[must_use]
pub fn subprefix_ablation_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> SubPrefixAblation {
    let stubs = graph.stub_asns();
    let victim_prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");

    // Each slot holds one run's (sub adoption, alarms, traffic, exact).
    let samples = minipool::map_indexed(jobs, runs, |run| {
        let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
        let mut rng = sim_engine::rng::from_seed(run_seed);
        let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
        let (victim, attacker) = (picked[0], picked[1]);
        let valid_list = MoasList::implicit(victim);

        // Sub-prefix run: attacker announces the more-specific half.
        let mut registry = RegistryVerifier::new();
        registry.register(victim_prefix, valid_list.clone());
        let monitor = MoasMonitor::full(registry);
        let mut net = Network::with_monitor_and_jitter(graph, monitor, run_seed, 4);
        net.originate(victim, victim_prefix, Some(valid_list.clone()));
        let sub = SubPrefixHijack::new().launch(&mut net, attacker, victim_prefix);
        net.run().expect("ablation networks converge");

        let eligible = graph.len() - 1; // exclude the attacker
        let fooled = graph
            .asns()
            .filter(|&asn| asn != attacker)
            .filter(|&asn| net.best_origin(asn, sub) == Some(attacker))
            .count();
        let adoption = 100.0 * fooled as f64 / eligible as f64;
        let alarms = net.monitor().alarms().len() as f64;

        // Data plane: where do packets addressed inside the hijacked half go?
        let plane = ForwardingPlane::snapshot(&net);
        let exclude: std::collections::BTreeSet<Asn> = [attacker].into_iter().collect();
        let (_, to_attacker_or_other, _) = plane.capture_census(sub.network(), victim, &exclude);
        let traffic = 100.0 * to_attacker_or_other as f64 / eligible as f64;

        // Exact-prefix control run with the same parties.
        let control = TrialConfig {
            seed: run_seed,
            ..TrialConfig::new(vec![victim], vec![attacker], Deployment::Full)
        };
        let outcome = run_trial(graph, &control);
        let exact = 100.0 * outcome.adoption_fraction();

        [adoption, alarms, traffic, exact]
    });

    let column = |i: usize| samples.iter().map(|s| s[i]).collect::<Vec<f64>>();
    SubPrefixAblation {
        subprefix_adoption_pct: mean(&column(0)),
        exact_prefix_adoption_pct: mean(&column(3)),
        subprefix_alarms: mean(&column(1)),
        subprefix_traffic_capture_pct: mean(&column(2)),
    }
}

/// Outcome of the valley-free policy-routing ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValleyFreePoint {
    /// `"policy-free"` (the paper's model) or `"valley-free"`.
    pub routing: String,
    /// Mean % adoption under Normal BGP (no detection).
    pub normal_adoption_pct: f64,
    /// Mean % adoption under full MOAS detection.
    pub moas_adoption_pct: f64,
    /// Mean advertisements suppressed by the export policy per run.
    pub mean_suppressed: f64,
}

json::impl_json_struct!(ValleyFreePoint {
    routing,
    normal_adoption_pct,
    moas_adoption_pct,
    mean_suppressed,
});

/// Evaluates the MOAS mechanism under Gao-Rexford policy routing — the
/// realism the paper's simulation abstracts away. Valley-free export
/// restricts where both valid *and* false routes travel, so this measures
/// whether the paper's conclusions survive policy routing.
///
/// Runs on a fresh `InternetModel` ground-truth topology (policy routing
/// needs the relationship annotations, which the §5.1 sampling pipeline does
/// not preserve).
#[must_use]
pub fn valley_free_ablation(runs: usize, seed: u64) -> Vec<ValleyFreePoint> {
    valley_free_ablation_jobs(runs, seed, 1)
}

/// [`valley_free_ablation`] with its `2 × runs` independent
/// `(routing policy, run)` cells fanned across up to `jobs` worker threads.
/// Each cell seeds its own RNG from `(seed, run, policy)`, and the per-policy
/// aggregates fold cell results in run order — bit-identical for every `jobs`
/// value.
#[must_use]
pub fn valley_free_ablation_jobs(runs: usize, seed: u64, jobs: usize) -> Vec<ValleyFreePoint> {
    let (graph, rels) = InternetModel::new()
        .transit_count(15)
        .stub_count(60)
        .build_with_relationships(seed);
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX.parse().expect("constant");

    // Cell i: policy_on = i / runs, run = i % runs. Each cell simulates both
    // deployments and yields (normal pct, moas pct, suppressed per deployment).
    let cells = minipool::map_indexed(jobs, 2 * runs, |i| {
        let policy_on = i >= runs;
        let run = i % runs;
        let run_seed =
            sim_engine::rng::derive_seed(seed, (run * 2 + usize::from(policy_on)) as u64);
        let mut rng = sim_engine::rng::from_seed(run_seed);
        let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, 1);
        let victim = picked[0];
        let candidates: Vec<Asn> = asns.iter().copied().filter(|&a| a != victim).collect();
        let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 3);
        let valid = MoasList::implicit(victim);

        let mut normal_pct = 0.0;
        let mut moas_pct = 0.0;
        let mut suppressed = [0.0; 2];
        for (di, deployment) in [Deployment::None, Deployment::Full].into_iter().enumerate() {
            let mut registry = RegistryVerifier::new();
            registry.register(prefix, valid.clone());
            let monitor = MoasMonitor::new(
                MoasConfig {
                    deployment: deployment.clone(),
                    ..MoasConfig::default()
                },
                registry,
            );
            let rels_for_run = if policy_on {
                rels.clone()
            } else {
                as_topology::AsRelationships::new()
            };
            let mut net = Network::with_monitor_and_jitter(
                &graph,
                ValleyFree::wrapping(rels_for_run, monitor),
                run_seed,
                4,
            );
            net.originate(victim, prefix, Some(valid.clone()));
            net.run().expect("converges");
            let attack = moas_core::FalseOriginAttack::new(ListForgery::IncludeSelf);
            for &attacker in &attackers {
                attack.launch(&mut net, attacker, prefix, &valid);
            }
            net.run().expect("converges");

            let attacker_set: std::collections::BTreeSet<Asn> = attackers.iter().copied().collect();
            let eligible = graph.len() - attackers.len();
            let fooled = graph
                .asns()
                .filter(|a| !attacker_set.contains(a))
                .filter(|&a| {
                    net.best_origin(a, prefix)
                        .is_some_and(|o| attacker_set.contains(&o))
                })
                .count();
            let pct = 100.0 * fooled as f64 / eligible as f64;
            match deployment {
                Deployment::Full => moas_pct = pct,
                _ => normal_pct = pct,
            }
            suppressed[di] = net.monitor().suppressed_count() as f64;
        }
        (normal_pct, moas_pct, suppressed)
    });

    let mut out = Vec::new();
    for policy_on in [false, true] {
        let offset = if policy_on { runs } else { 0 };
        let policy_cells = &cells[offset..offset + runs];
        let normal: Vec<f64> = policy_cells.iter().map(|c| c.0).collect();
        let moas: Vec<f64> = policy_cells.iter().map(|c| c.1).collect();
        // The serial loop pushed suppression counts per deployment within
        // each run; keep that interleaving for the fold.
        let suppressed: Vec<f64> = policy_cells.iter().flat_map(|c| c.2).collect();
        out.push(ValleyFreePoint {
            routing: if policy_on {
                "valley-free"
            } else {
                "policy-free"
            }
            .into(),
            normal_adoption_pct: mean(&normal),
            moas_adoption_pct: mean(&moas),
            mean_suppressed: mean(&suppressed),
        });
    }
    out
}

/// Outcome of the community-stripping ablation at one stripping fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct StrippingPoint {
    /// Fraction of ASes that drop community attributes on export.
    pub stripper_fraction: f64,
    /// Mean % of remaining ASes adopting the false route.
    pub mean_adoption_pct: f64,
    /// Mean false alarms per run (§4.3: stripped lists on valid routes).
    pub mean_false_alarms: f64,
    /// Mean confirmed alarms per run.
    pub mean_confirmed_alarms: f64,
}

json::impl_json_struct!(StrippingPoint {
    stripper_fraction,
    mean_adoption_pct,
    mean_false_alarms,
    mean_confirmed_alarms,
});

/// §4.3's community-dropping hazard, quantified: sweep the fraction of
/// stripper ASes and measure false alarms and protection. The paper's claim
/// ("dropping the MOAS community value... should not cause an invalid case
/// to be considered valid") shows up as adoption staying low while false
/// alarms rise.
#[must_use]
pub fn stripping_ablation(
    graph: &AsGraph,
    fractions: &[f64],
    runs: usize,
    seed: u64,
) -> Vec<StrippingPoint> {
    stripping_ablation_jobs(graph, fractions, runs, seed, 1)
}

/// [`stripping_ablation`] with its `fractions × runs` independent cells
/// fanned across up to `jobs` worker threads; per-fraction aggregates fold
/// in run order, bit-identical for every `jobs` value.
#[must_use]
pub fn stripping_ablation_jobs(
    graph: &AsGraph,
    fractions: &[f64],
    runs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<StrippingPoint> {
    // Cell i: fraction index fx = i / runs, run = i % runs.
    let cells = minipool::map_indexed(jobs, fractions.len() * runs, |i| {
        stripping_cell(graph, fractions, runs, seed, i, &mut NoopSink)
    });
    aggregate_stripping(fractions, runs, &cells)
}

/// [`stripping_ablation_jobs`] plus a merged metrics snapshot of every run
/// (network metrics under the `stripping.` prefix), merged in cell order so
/// the snapshot is bit-identical for every `jobs` value.
#[must_use]
pub fn stripping_ablation_metrics_jobs(
    graph: &AsGraph,
    fractions: &[f64],
    runs: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<StrippingPoint>, MetricsSnapshot) {
    let results = minipool::map_indexed(jobs, fractions.len() * runs, |i| {
        let mut sink = RecordingSink::new();
        let cell = stripping_cell(graph, fractions, runs, seed, i, &mut sink);
        (cell, sink.into_snapshot())
    });
    let cells: Vec<(f64, f64, f64)> = results.iter().map(|(c, _)| *c).collect();
    let mut snapshot = MetricsSnapshot::new();
    for (_, cell_snapshot) in &results {
        snapshot.merge(cell_snapshot);
    }
    (aggregate_stripping(fractions, runs, &cells), snapshot)
}

/// One `(fraction, run)` cell of the stripping ablation.
fn stripping_cell<S: MetricsSink>(
    graph: &AsGraph,
    fractions: &[f64],
    runs: usize,
    seed: u64,
    i: usize,
    sink: &mut S,
) -> (f64, f64, f64) {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let (fx, run) = (i / runs, i % runs);
    let fraction = fractions[fx];
    let run_seed = sim_engine::rng::derive_seed(seed, (fx * 1000 + run) as u64);
    let mut rng = sim_engine::rng::from_seed(run_seed);
    // Two origins so valid announcements carry a meaningful list.
    let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
    let candidates: Vec<Asn> = asns
        .iter()
        .copied()
        .filter(|a| !origins.contains(a))
        .collect();
    let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 2);
    let stripper_count = ((asns.len() as f64) * fraction).round() as usize;
    let strippers: BTreeSet<Asn> =
        sim_engine::rng::sample_distinct(&mut rng, &candidates, stripper_count)
            .into_iter()
            .collect();

    let trial = TrialConfig {
        strippers,
        seed: run_seed,
        ..TrialConfig::new(origins, attackers, Deployment::Full)
    };
    let outcome = run_trial_metrics(graph, &trial, &mut Scoped::new(sink, "stripping"))
        .expect("experiment networks always converge");
    (
        100.0 * outcome.adoption_fraction(),
        outcome.false_alarms as f64,
        outcome.confirmed_alarms as f64,
    )
}

/// Folds stripping cells into per-fraction points, in cell order.
fn aggregate_stripping(
    fractions: &[f64],
    runs: usize,
    cells: &[(f64, f64, f64)],
) -> Vec<StrippingPoint> {
    let mut out = Vec::with_capacity(fractions.len());
    for (fx, &fraction) in fractions.iter().enumerate() {
        let point_cells = &cells[fx * runs..(fx + 1) * runs];
        let adoption: Vec<f64> = point_cells.iter().map(|c| c.0).collect();
        let false_alarms: Vec<f64> = point_cells.iter().map(|c| c.1).collect();
        let confirmed: Vec<f64> = point_cells.iter().map(|c| c.2).collect();
        out.push(StrippingPoint {
            stripper_fraction: fraction,
            mean_adoption_pct: mean(&adoption),
            mean_false_alarms: mean(&false_alarms),
            mean_confirmed_alarms: mean(&confirmed),
        });
    }
    out
}

/// Outcome of the list-forgery ablation for one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ForgeryPoint {
    /// The strategy, as a display string.
    pub forgery: String,
    /// Mean % of remaining ASes adopting the false route (full deployment).
    pub mean_adoption_pct: f64,
    /// Mean alarms per run.
    pub mean_alarms: f64,
}

json::impl_json_struct!(ForgeryPoint {
    forgery,
    mean_adoption_pct,
    mean_alarms,
});

/// Compares attacker list-forgery strategies under full deployment: none of
/// them should beat the mechanism, but they trip different checks
/// (implicit-list mismatch, superset mismatch, origin-not-in-list).
#[must_use]
pub fn forgery_ablation(graph: &AsGraph, runs: usize, seed: u64) -> Vec<ForgeryPoint> {
    forgery_ablation_jobs(graph, runs, seed, 1)
}

/// The forgery strategies [`forgery_ablation`] compares, in output order.
const FORGERIES: [ListForgery; 3] = [
    ListForgery::None,
    ListForgery::IncludeSelf,
    ListForgery::CopyValid,
];

/// [`forgery_ablation`] with its `3 × runs` independent `(strategy, run)`
/// cells fanned across up to `jobs` worker threads; per-strategy aggregates
/// fold in run order, bit-identical for every `jobs` value.
#[must_use]
pub fn forgery_ablation_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<ForgeryPoint> {
    // Cell i: strategy index i / runs, run = i % runs. The run seed depends
    // only on the run, so every strategy faces the same parties.
    let cells = minipool::map_indexed(jobs, FORGERIES.len() * runs, |i| {
        forgery_cell(graph, runs, seed, i, &mut NoopSink)
    });
    aggregate_forgery(runs, &cells)
}

/// [`forgery_ablation_jobs`] plus a merged metrics snapshot of every run
/// (network metrics under the `forgery.` prefix), merged in cell order so
/// the snapshot is bit-identical for every `jobs` value.
#[must_use]
pub fn forgery_ablation_metrics_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<ForgeryPoint>, MetricsSnapshot) {
    let results = minipool::map_indexed(jobs, FORGERIES.len() * runs, |i| {
        let mut sink = RecordingSink::new();
        let cell = forgery_cell(graph, runs, seed, i, &mut sink);
        (cell, sink.into_snapshot())
    });
    let cells: Vec<(f64, f64)> = results.iter().map(|(c, _)| *c).collect();
    let mut snapshot = MetricsSnapshot::new();
    for (_, cell_snapshot) in &results {
        snapshot.merge(cell_snapshot);
    }
    (aggregate_forgery(runs, &cells), snapshot)
}

/// One `(strategy, run)` cell of the forgery ablation.
fn forgery_cell<S: MetricsSink>(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    i: usize,
    sink: &mut S,
) -> (f64, f64) {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let (forgery, run) = (FORGERIES[i / runs], i % runs);
    let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
    let mut rng = sim_engine::rng::from_seed(run_seed);
    let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
    let candidates: Vec<Asn> = asns
        .iter()
        .copied()
        .filter(|a| !origins.contains(a))
        .collect();
    let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 3);
    let trial = TrialConfig {
        forgery,
        seed: run_seed,
        ..TrialConfig::new(origins, attackers, Deployment::Full)
    };
    let outcome = run_trial_metrics(graph, &trial, &mut Scoped::new(sink, "forgery"))
        .expect("experiment networks always converge");
    (100.0 * outcome.adoption_fraction(), outcome.alarms as f64)
}

/// Folds forgery cells into per-strategy points, in cell order.
fn aggregate_forgery(runs: usize, cells: &[(f64, f64)]) -> Vec<ForgeryPoint> {
    FORGERIES
        .iter()
        .enumerate()
        .map(|(sx, forgery)| {
            let point_cells = &cells[sx * runs..(sx + 1) * runs];
            let adoption: Vec<f64> = point_cells.iter().map(|c| c.0).collect();
            let alarms: Vec<f64> = point_cells.iter().map(|c| c.1).collect();
            ForgeryPoint {
                forgery: forgery.to_string(),
                mean_adoption_pct: mean(&adoption),
                mean_alarms: mean(&alarms),
            }
        })
        .collect()
}

/// Compares the two unresolved-verification policies when the verifier is
/// empty (no `MOASRR` record published): conservative `Accept` keeps
/// reachability but loses protection; `RejectIncoming` keeps protection at
/// the risk of rejecting valid routes on false alarms.
#[must_use]
pub fn unresolved_policy_ablation(graph: &AsGraph, runs: usize, seed: u64) -> Vec<(String, f64)> {
    unresolved_policy_ablation_jobs(graph, runs, seed, 1)
}

/// [`unresolved_policy_ablation`] with its `2 × runs` independent
/// `(policy, run)` cells fanned across up to `jobs` worker threads;
/// per-policy aggregates fold in run order, bit-identical for every `jobs`
/// value.
#[must_use]
pub fn unresolved_policy_ablation_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<(String, f64)> {
    const POLICIES: [UnresolvedPolicy; 2] =
        [UnresolvedPolicy::Accept, UnresolvedPolicy::RejectIncoming];
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();

    // Cell i: policy index i / runs, run = i % runs. The run seed depends
    // only on the run, so both policies face the same parties.
    let cells = minipool::map_indexed(jobs, POLICIES.len() * runs, |i| {
        let (policy, run) = (POLICIES[i / runs], i % runs);
        let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
        let mut rng = sim_engine::rng::from_seed(run_seed);
        let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 1);
        let candidates: Vec<Asn> = asns
            .iter()
            .copied()
            .filter(|a| !origins.contains(a))
            .collect();
        let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 2);
        // Empty registry: every conflict is unresolved.
        let monitor = MoasMonitor::new(
            MoasConfig {
                deployment: Deployment::Full,
                on_unresolved: policy,
                ..MoasConfig::default()
            },
            RegistryVerifier::new(),
        );
        let prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX.parse().unwrap();
        let valid_list: MoasList = origins.iter().copied().collect();
        let mut net = Network::with_monitor_and_jitter(graph, monitor, run_seed, 4);
        for &origin in &origins {
            net.originate(origin, prefix, Some(valid_list.clone()));
        }
        let attack = moas_core::FalseOriginAttack::new(ListForgery::IncludeSelf);
        for &attacker in &attackers {
            attack.launch(&mut net, attacker, prefix, &valid_list);
        }
        net.run().expect("converges");
        let attacker_set: BTreeSet<Asn> = attackers.iter().copied().collect();
        let eligible = graph.len() - attackers.len();
        let fooled = graph
            .asns()
            .filter(|a| !attacker_set.contains(a))
            .filter(|&a| {
                net.best_origin(a, prefix)
                    .is_some_and(|o| attacker_set.contains(&o))
            })
            .count();
        100.0 * fooled as f64 / eligible as f64
    });

    POLICIES
        .iter()
        .enumerate()
        .map(|(px, policy)| {
            let label = match policy {
                UnresolvedPolicy::Accept => "accept-on-unresolved",
                UnresolvedPolicy::RejectIncoming => "reject-on-unresolved",
            };
            (label.to_string(), mean(&cells[px * runs..(px + 1) * runs]))
        })
        .collect()
}

/// Outcome of the community-policy ablation for one Krenc-style class.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunityPolicyPoint {
    /// The policy class every transit AS applied, as a display string.
    pub policy: String,
    /// Mean % of remaining ASes adopting the false route (full deployment).
    pub mean_adoption_pct: f64,
    /// Mean dropped-list false alarms per run.
    pub mean_false_alarms: f64,
    /// Mean verifier-confirmed alarms per run.
    pub mean_confirmed_alarms: f64,
}

json::impl_json_struct!(CommunityPolicyPoint {
    policy,
    mean_adoption_pct,
    mean_false_alarms,
    mean_confirmed_alarms,
});

/// Generalizes the binary stripping ablation to the Krenc et al. community
/// handling classes: every transit AS applies one [`CommunityPolicy`] class
/// on export (`propagate`, `strip-moas`, `strip-all`, `rewrite`), and each
/// class replays the same parties. Expect `propagate` to stay clean,
/// the stripping classes to trade false alarms for unchanged protection
/// (the §4.3 claim), and `rewrite` to behave like `strip-all` for MOAS
/// purposes — the marker community replaces the list.
#[must_use]
pub fn community_policy_ablation(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
) -> Vec<CommunityPolicyPoint> {
    community_policy_ablation_jobs(graph, runs, seed, 1)
}

/// [`community_policy_ablation`] with its `4 × runs` independent
/// `(class, run)` cells fanned across up to `jobs` worker threads;
/// per-class aggregates fold in run order, bit-identical for every `jobs`
/// value.
#[must_use]
pub fn community_policy_ablation_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> Vec<CommunityPolicyPoint> {
    let cells = minipool::map_indexed(jobs, CommunityPolicy::ALL.len() * runs, |i| {
        community_policy_cell(graph, runs, seed, i, &mut NoopSink)
    });
    aggregate_community_policy(runs, &cells)
}

/// [`community_policy_ablation_jobs`] plus a merged metrics snapshot of
/// every run (network metrics under the `community_policy.` prefix), merged
/// in cell order so the snapshot is bit-identical for every `jobs` value.
#[must_use]
pub fn community_policy_ablation_metrics_jobs(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    jobs: usize,
) -> (Vec<CommunityPolicyPoint>, MetricsSnapshot) {
    let results = minipool::map_indexed(jobs, CommunityPolicy::ALL.len() * runs, |i| {
        let mut sink = RecordingSink::new();
        let cell = community_policy_cell(graph, runs, seed, i, &mut sink);
        (cell, sink.into_snapshot())
    });
    let cells: Vec<(f64, f64, f64)> = results.iter().map(|(c, _)| *c).collect();
    let mut snapshot = MetricsSnapshot::new();
    for (_, cell_snapshot) in &results {
        snapshot.merge(cell_snapshot);
    }
    (aggregate_community_policy(runs, &cells), snapshot)
}

/// One `(class, run)` cell of the community-policy ablation. The run seed
/// depends only on the run index, so every class faces the same parties.
fn community_policy_cell<S: MetricsSink>(
    graph: &AsGraph,
    runs: usize,
    seed: u64,
    i: usize,
    sink: &mut S,
) -> (f64, f64, f64) {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let (policy, run) = (CommunityPolicy::ALL[i / runs], i % runs);
    let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
    let mut rng = sim_engine::rng::from_seed(run_seed);
    // Two origins so valid announcements carry a meaningful list.
    let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
    let candidates: Vec<Asn> = asns
        .iter()
        .copied()
        .filter(|a| !origins.contains(a))
        .collect();
    let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 2);
    let mut policies = CommunityPolicyMap::new();
    for transit in graph.transit_asns() {
        policies.set(transit, policy);
    }
    let trial = TrialConfig {
        policies,
        seed: run_seed,
        ..TrialConfig::new(origins, attackers, Deployment::Full)
    };
    let outcome = run_trial_metrics(graph, &trial, &mut Scoped::new(sink, "community_policy"))
        .expect("experiment networks always converge");
    (
        100.0 * outcome.adoption_fraction(),
        outcome.false_alarms as f64,
        outcome.confirmed_alarms as f64,
    )
}

/// Folds community-policy cells into per-class points, in cell order.
fn aggregate_community_policy(runs: usize, cells: &[(f64, f64, f64)]) -> Vec<CommunityPolicyPoint> {
    CommunityPolicy::ALL
        .iter()
        .enumerate()
        .map(|(px, policy)| {
            let point_cells = &cells[px * runs..(px + 1) * runs];
            let adoption: Vec<f64> = point_cells.iter().map(|c| c.0).collect();
            let false_alarms: Vec<f64> = point_cells.iter().map(|c| c.1).collect();
            let confirmed: Vec<f64> = point_cells.iter().map(|c| c.2).collect();
            CommunityPolicyPoint {
                policy: policy.to_string(),
                mean_adoption_pct: mean(&adoption),
                mean_false_alarms: mean(&false_alarms),
                mean_confirmed_alarms: mean(&confirmed),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::paper::PaperTopology;

    #[test]
    fn subprefix_hijack_beats_moas_but_exact_does_not() {
        let graph = PaperTopology::As25.graph();
        let result = subprefix_ablation(graph, 3, 11);
        assert_eq!(result.subprefix_alarms, 0.0, "no conflict is ever visible");
        assert!(
            result.subprefix_adoption_pct > 90.0,
            "hijack should win everywhere, got {:.1}%",
            result.subprefix_adoption_pct
        );
        assert!(
            result.exact_prefix_adoption_pct < result.subprefix_adoption_pct,
            "exact-prefix attack must fare worse under detection"
        );
    }

    #[test]
    fn stripping_increases_false_alarms_not_adoption() {
        let graph = PaperTopology::As25.graph();
        let points = stripping_ablation(graph, &[0.0, 0.4], 4, 13);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].mean_false_alarms, 0.0);
        assert!(
            points[1].mean_false_alarms > 0.0,
            "strippers must cause false alarms"
        );
        // §4.3: dropping lists must not make false routes accepted as valid.
        assert!(points[1].mean_adoption_pct <= points[0].mean_adoption_pct + 5.0);
    }

    #[test]
    fn every_forgery_is_contained() {
        let graph = PaperTopology::As25.graph();
        let points = forgery_ablation(graph, 3, 17);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.mean_alarms > 0.0, "{} raised no alarms", p.forgery);
            assert!(
                p.mean_adoption_pct < 20.0,
                "{} adoption {:.1}%",
                p.forgery,
                p.mean_adoption_pct
            );
        }
    }

    #[test]
    fn valley_free_policy_does_not_break_detection() {
        let points = valley_free_ablation(3, 23);
        assert_eq!(points.len(), 2);
        let policy_free = &points[0];
        let valley_free = &points[1];
        assert_eq!(policy_free.routing, "policy-free");
        assert_eq!(policy_free.mean_suppressed, 0.0);
        assert!(valley_free.mean_suppressed > 0.0, "policy must bite");
        // Detection keeps working under policy routing.
        assert!(
            valley_free.moas_adoption_pct < valley_free.normal_adoption_pct,
            "valley-free: {:.1}% !< {:.1}%",
            valley_free.moas_adoption_pct,
            valley_free.normal_adoption_pct
        );
        assert!(policy_free.moas_adoption_pct < policy_free.normal_adoption_pct);
    }

    #[test]
    fn subprefix_traffic_capture_exceeds_control_plane_view() {
        let graph = PaperTopology::As25.graph();
        let result = subprefix_ablation(graph, 3, 11);
        // The data plane confirms the §4.3 damage: traffic inside the
        // hijacked half is captured at (at least) the rate the control
        // plane shows for the sub-prefix itself.
        assert!(
            result.subprefix_traffic_capture_pct >= result.subprefix_adoption_pct - 5.0,
            "traffic {:.1}% vs control {:.1}%",
            result.subprefix_traffic_capture_pct,
            result.subprefix_adoption_pct
        );
        assert!(result.subprefix_traffic_capture_pct > 90.0);
    }

    #[test]
    fn community_policies_trade_false_alarms_not_protection() {
        let graph = PaperTopology::As25.graph();
        let points = community_policy_ablation(graph, 4, 29);
        assert_eq!(points.len(), 4);
        let propagate = &points[0];
        assert_eq!(propagate.policy, "propagate");
        assert_eq!(
            propagate.mean_false_alarms, 0.0,
            "transparent transit drops no lists"
        );
        for point in &points[1..] {
            // §4.3 generalized: any lossy class may cry wolf, but none may
            // let the false route through.
            assert!(
                point.mean_adoption_pct <= propagate.mean_adoption_pct + 5.0,
                "{}: adoption {:.1}%",
                point.policy,
                point.mean_adoption_pct
            );
            assert!(
                point.mean_confirmed_alarms > 0.0,
                "{}: the attack must still be confirmed",
                point.policy
            );
        }
    }

    #[test]
    fn community_policy_ablation_is_jobs_invariant() {
        let graph = PaperTopology::As25.graph();
        let serial = community_policy_ablation(graph, 2, 31);
        assert_eq!(community_policy_ablation_jobs(graph, 2, 31, 3), serial);
        let (points, snapshot) = community_policy_ablation_metrics_jobs(graph, 2, 31, 2);
        assert_eq!(points, serial);
        let (_, snapshot1) = community_policy_ablation_metrics_jobs(graph, 2, 31, 1);
        assert_eq!(snapshot, snapshot1);
    }

    #[test]
    fn reject_policy_protects_more_when_verifier_is_blind() {
        let graph = PaperTopology::As25.graph();
        let results = unresolved_policy_ablation(graph, 3, 19);
        let accept = results[0].1;
        let reject = results[1].1;
        assert!(reject <= accept, "reject {reject} !<= accept {accept}");
    }
}
