//! Ablations probing the §4.3 limitations and design choices.

use std::collections::BTreeSet;

use as_topology::{AsGraph, InternetModel};
use bgp_engine::{ForwardingPlane, Network, ValleyFree};
use bgp_types::{Asn, MoasList};
use moas_core::{
    Deployment, ListForgery, MoasConfig, MoasMonitor, RegistryVerifier, SubPrefixHijack,
    UnresolvedPolicy,
};

use crate::json;
use crate::stats::mean;
use crate::trial::{run_trial, TrialConfig};

/// Outcome of the sub-prefix hijack ablation on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPrefixAblation {
    /// Mean % of remaining ASes whose best route for the *hijacked
    /// sub-prefix* points at the attacker, under full MOAS deployment.
    pub subprefix_adoption_pct: f64,
    /// Mean % adopting the false route when the attacker instead announces
    /// the exact victim prefix (same runs, same full deployment).
    pub exact_prefix_adoption_pct: f64,
    /// Mean alarms raised during the sub-prefix runs (expected: 0 — the
    /// mechanism never sees a conflict).
    pub subprefix_alarms: f64,
    /// Mean % of ASes whose *data-plane traffic* to an address inside the
    /// hijacked half lands at the attacker (longest-match forwarding over
    /// the converged FIBs). This is the §4.3 damage the control-plane census
    /// cannot see.
    pub subprefix_traffic_capture_pct: f64,
}

json::impl_json_struct!(SubPrefixAblation {
    subprefix_adoption_pct,
    exact_prefix_adoption_pct,
    subprefix_alarms,
    subprefix_traffic_capture_pct,
});

/// The §4.3 boundary: full MOAS deployment against a more-specific-prefix
/// hijacker. Expected result — reproduced here — is that detection never
/// fires and the hijack succeeds everywhere, while the same attacker
/// announcing the exact prefix is caught.
#[must_use]
pub fn subprefix_ablation(graph: &AsGraph, runs: usize, seed: u64) -> SubPrefixAblation {
    let stubs = graph.stub_asns();
    let victim_prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");

    let mut sub_adoption = Vec::new();
    let mut sub_alarms = Vec::new();
    let mut exact_adoption = Vec::new();
    let mut traffic_capture = Vec::new();

    for run in 0..runs {
        let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
        let mut rng = sim_engine::rng::from_seed(run_seed);
        let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
        let (victim, attacker) = (picked[0], picked[1]);
        let valid_list = MoasList::implicit(victim);

        // Sub-prefix run: attacker announces the more-specific half.
        let mut registry = RegistryVerifier::new();
        registry.register(victim_prefix, valid_list.clone());
        let monitor = MoasMonitor::full(registry);
        let mut net = Network::with_monitor_and_jitter(graph, monitor, run_seed, 4);
        net.originate(victim, victim_prefix, Some(valid_list.clone()));
        let sub = SubPrefixHijack::new().launch(&mut net, attacker, victim_prefix);
        net.run().expect("ablation networks converge");

        let eligible = graph.len() - 1; // exclude the attacker
        let fooled = graph
            .asns()
            .filter(|&asn| asn != attacker)
            .filter(|&asn| net.best_origin(asn, sub) == Some(attacker))
            .count();
        sub_adoption.push(100.0 * fooled as f64 / eligible as f64);
        sub_alarms.push(net.monitor().alarms().len() as f64);

        // Data plane: where do packets addressed inside the hijacked half go?
        let plane = ForwardingPlane::snapshot(&net);
        let exclude: std::collections::BTreeSet<Asn> = [attacker].into_iter().collect();
        let (_, to_attacker_or_other, _) = plane.capture_census(sub.network(), victim, &exclude);
        traffic_capture.push(100.0 * to_attacker_or_other as f64 / eligible as f64);

        // Exact-prefix control run with the same parties.
        let control = TrialConfig {
            seed: run_seed,
            ..TrialConfig::new(vec![victim], vec![attacker], Deployment::Full)
        };
        let outcome = run_trial(graph, &control);
        exact_adoption.push(100.0 * outcome.adoption_fraction());
    }

    SubPrefixAblation {
        subprefix_adoption_pct: mean(&sub_adoption),
        exact_prefix_adoption_pct: mean(&exact_adoption),
        subprefix_alarms: mean(&sub_alarms),
        subprefix_traffic_capture_pct: mean(&traffic_capture),
    }
}

/// Outcome of the valley-free policy-routing ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct ValleyFreePoint {
    /// `"policy-free"` (the paper's model) or `"valley-free"`.
    pub routing: String,
    /// Mean % adoption under Normal BGP (no detection).
    pub normal_adoption_pct: f64,
    /// Mean % adoption under full MOAS detection.
    pub moas_adoption_pct: f64,
    /// Mean advertisements suppressed by the export policy per run.
    pub mean_suppressed: f64,
}

json::impl_json_struct!(ValleyFreePoint {
    routing,
    normal_adoption_pct,
    moas_adoption_pct,
    mean_suppressed,
});

/// Evaluates the MOAS mechanism under Gao-Rexford policy routing — the
/// realism the paper's simulation abstracts away. Valley-free export
/// restricts where both valid *and* false routes travel, so this measures
/// whether the paper's conclusions survive policy routing.
///
/// Runs on a fresh `InternetModel` ground-truth topology (policy routing
/// needs the relationship annotations, which the §5.1 sampling pipeline does
/// not preserve).
#[must_use]
pub fn valley_free_ablation(runs: usize, seed: u64) -> Vec<ValleyFreePoint> {
    let (graph, rels) = InternetModel::new()
        .transit_count(15)
        .stub_count(60)
        .build_with_relationships(seed);
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX.parse().expect("constant");

    let mut out = Vec::new();
    for policy_on in [false, true] {
        let mut normal = Vec::new();
        let mut moas = Vec::new();
        let mut suppressed = Vec::new();
        for run in 0..runs {
            let run_seed =
                sim_engine::rng::derive_seed(seed, (run * 2 + usize::from(policy_on)) as u64);
            let mut rng = sim_engine::rng::from_seed(run_seed);
            let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, 1);
            let victim = picked[0];
            let candidates: Vec<Asn> = asns.iter().copied().filter(|&a| a != victim).collect();
            let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 3);
            let valid = MoasList::implicit(victim);

            for deployment in [Deployment::None, Deployment::Full] {
                let mut registry = RegistryVerifier::new();
                registry.register(prefix, valid.clone());
                let monitor = MoasMonitor::new(
                    MoasConfig {
                        deployment: deployment.clone(),
                        ..MoasConfig::default()
                    },
                    registry,
                );
                let rels_for_run = if policy_on {
                    rels.clone()
                } else {
                    as_topology::AsRelationships::new()
                };
                let mut net = Network::with_monitor_and_jitter(
                    &graph,
                    ValleyFree::wrapping(rels_for_run, monitor),
                    run_seed,
                    4,
                );
                net.originate(victim, prefix, Some(valid.clone()));
                net.run().expect("converges");
                let attack = moas_core::FalseOriginAttack::new(ListForgery::IncludeSelf);
                for &attacker in &attackers {
                    attack.launch(&mut net, attacker, prefix, &valid);
                }
                net.run().expect("converges");

                let attacker_set: std::collections::BTreeSet<Asn> =
                    attackers.iter().copied().collect();
                let eligible = graph.len() - attackers.len();
                let fooled = graph
                    .asns()
                    .filter(|a| !attacker_set.contains(a))
                    .filter(|&a| {
                        net.best_origin(a, prefix)
                            .is_some_and(|o| attacker_set.contains(&o))
                    })
                    .count();
                let pct = 100.0 * fooled as f64 / eligible as f64;
                match deployment {
                    Deployment::Full => moas.push(pct),
                    _ => normal.push(pct),
                }
                suppressed.push(net.monitor().suppressed_count() as f64);
            }
        }
        out.push(ValleyFreePoint {
            routing: if policy_on {
                "valley-free"
            } else {
                "policy-free"
            }
            .into(),
            normal_adoption_pct: mean(&normal),
            moas_adoption_pct: mean(&moas),
            mean_suppressed: mean(&suppressed),
        });
    }
    out
}

/// Outcome of the community-stripping ablation at one stripping fraction.
#[derive(Debug, Clone, PartialEq)]
pub struct StrippingPoint {
    /// Fraction of ASes that drop community attributes on export.
    pub stripper_fraction: f64,
    /// Mean % of remaining ASes adopting the false route.
    pub mean_adoption_pct: f64,
    /// Mean false alarms per run (§4.3: stripped lists on valid routes).
    pub mean_false_alarms: f64,
    /// Mean confirmed alarms per run.
    pub mean_confirmed_alarms: f64,
}

json::impl_json_struct!(StrippingPoint {
    stripper_fraction,
    mean_adoption_pct,
    mean_false_alarms,
    mean_confirmed_alarms,
});

/// §4.3's community-dropping hazard, quantified: sweep the fraction of
/// stripper ASes and measure false alarms and protection. The paper's claim
/// ("dropping the MOAS community value... should not cause an invalid case
/// to be considered valid") shows up as adoption staying low while false
/// alarms rise.
#[must_use]
pub fn stripping_ablation(
    graph: &AsGraph,
    fractions: &[f64],
    runs: usize,
    seed: u64,
) -> Vec<StrippingPoint> {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let mut out = Vec::new();

    for (fx, &fraction) in fractions.iter().enumerate() {
        let mut adoption = Vec::new();
        let mut false_alarms = Vec::new();
        let mut confirmed = Vec::new();
        for run in 0..runs {
            let run_seed = sim_engine::rng::derive_seed(seed, (fx * 1000 + run) as u64);
            let mut rng = sim_engine::rng::from_seed(run_seed);
            // Two origins so valid announcements carry a meaningful list.
            let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
            let candidates: Vec<Asn> = asns
                .iter()
                .copied()
                .filter(|a| !origins.contains(a))
                .collect();
            let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 2);
            let stripper_count = ((asns.len() as f64) * fraction).round() as usize;
            let strippers: BTreeSet<Asn> =
                sim_engine::rng::sample_distinct(&mut rng, &candidates, stripper_count)
                    .into_iter()
                    .collect();

            let trial = TrialConfig {
                strippers,
                seed: run_seed,
                ..TrialConfig::new(origins, attackers, Deployment::Full)
            };
            let outcome = run_trial(graph, &trial);
            adoption.push(100.0 * outcome.adoption_fraction());
            false_alarms.push(outcome.false_alarms as f64);
            confirmed.push(outcome.confirmed_alarms as f64);
        }
        out.push(StrippingPoint {
            stripper_fraction: fraction,
            mean_adoption_pct: mean(&adoption),
            mean_false_alarms: mean(&false_alarms),
            mean_confirmed_alarms: mean(&confirmed),
        });
    }
    out
}

/// Outcome of the list-forgery ablation for one strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct ForgeryPoint {
    /// The strategy, as a display string.
    pub forgery: String,
    /// Mean % of remaining ASes adopting the false route (full deployment).
    pub mean_adoption_pct: f64,
    /// Mean alarms per run.
    pub mean_alarms: f64,
}

json::impl_json_struct!(ForgeryPoint {
    forgery,
    mean_adoption_pct,
    mean_alarms,
});

/// Compares attacker list-forgery strategies under full deployment: none of
/// them should beat the mechanism, but they trip different checks
/// (implicit-list mismatch, superset mismatch, origin-not-in-list).
#[must_use]
pub fn forgery_ablation(graph: &AsGraph, runs: usize, seed: u64) -> Vec<ForgeryPoint> {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let mut out = Vec::new();

    for forgery in [
        ListForgery::None,
        ListForgery::IncludeSelf,
        ListForgery::CopyValid,
    ] {
        let mut adoption = Vec::new();
        let mut alarms = Vec::new();
        for run in 0..runs {
            let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
            let mut rng = sim_engine::rng::from_seed(run_seed);
            let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 2);
            let candidates: Vec<Asn> = asns
                .iter()
                .copied()
                .filter(|a| !origins.contains(a))
                .collect();
            let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 3);
            let trial = TrialConfig {
                forgery,
                seed: run_seed,
                ..TrialConfig::new(origins, attackers, Deployment::Full)
            };
            let outcome = run_trial(graph, &trial);
            adoption.push(100.0 * outcome.adoption_fraction());
            alarms.push(outcome.alarms as f64);
        }
        out.push(ForgeryPoint {
            forgery: forgery.to_string(),
            mean_adoption_pct: mean(&adoption),
            mean_alarms: mean(&alarms),
        });
    }
    out
}

/// Compares the two unresolved-verification policies when the verifier is
/// empty (no `MOASRR` record published): conservative `Accept` keeps
/// reachability but loses protection; `RejectIncoming` keeps protection at
/// the risk of rejecting valid routes on false alarms.
#[must_use]
pub fn unresolved_policy_ablation(graph: &AsGraph, runs: usize, seed: u64) -> Vec<(String, f64)> {
    let stubs = graph.stub_asns();
    let asns: Vec<Asn> = graph.asns().collect();
    let mut out = Vec::new();
    for policy in [UnresolvedPolicy::Accept, UnresolvedPolicy::RejectIncoming] {
        let mut adoption = Vec::new();
        for run in 0..runs {
            let run_seed = sim_engine::rng::derive_seed(seed, run as u64);
            let mut rng = sim_engine::rng::from_seed(run_seed);
            let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, 1);
            let candidates: Vec<Asn> = asns
                .iter()
                .copied()
                .filter(|a| !origins.contains(a))
                .collect();
            let attackers = sim_engine::rng::sample_distinct(&mut rng, &candidates, 2);
            // Empty registry: every conflict is unresolved.
            let monitor = MoasMonitor::new(
                MoasConfig {
                    deployment: Deployment::Full,
                    on_unresolved: policy,
                    ..MoasConfig::default()
                },
                RegistryVerifier::new(),
            );
            let prefix: bgp_types::Ipv4Prefix = crate::VICTIM_PREFIX.parse().unwrap();
            let valid_list: MoasList = origins.iter().copied().collect();
            let mut net = Network::with_monitor_and_jitter(graph, monitor, run_seed, 4);
            for &origin in &origins {
                net.originate(origin, prefix, Some(valid_list.clone()));
            }
            let attack = moas_core::FalseOriginAttack::new(ListForgery::IncludeSelf);
            for &attacker in &attackers {
                attack.launch(&mut net, attacker, prefix, &valid_list);
            }
            net.run().expect("converges");
            let attacker_set: BTreeSet<Asn> = attackers.iter().copied().collect();
            let eligible = graph.len() - attackers.len();
            let fooled = graph
                .asns()
                .filter(|a| !attacker_set.contains(a))
                .filter(|&a| {
                    net.best_origin(a, prefix)
                        .is_some_and(|o| attacker_set.contains(&o))
                })
                .count();
            adoption.push(100.0 * fooled as f64 / eligible as f64);
        }
        let label = match policy {
            UnresolvedPolicy::Accept => "accept-on-unresolved",
            UnresolvedPolicy::RejectIncoming => "reject-on-unresolved",
        };
        out.push((label.to_string(), mean(&adoption)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::paper::PaperTopology;

    #[test]
    fn subprefix_hijack_beats_moas_but_exact_does_not() {
        let graph = PaperTopology::As25.graph();
        let result = subprefix_ablation(graph, 3, 11);
        assert_eq!(result.subprefix_alarms, 0.0, "no conflict is ever visible");
        assert!(
            result.subprefix_adoption_pct > 90.0,
            "hijack should win everywhere, got {:.1}%",
            result.subprefix_adoption_pct
        );
        assert!(
            result.exact_prefix_adoption_pct < result.subprefix_adoption_pct,
            "exact-prefix attack must fare worse under detection"
        );
    }

    #[test]
    fn stripping_increases_false_alarms_not_adoption() {
        let graph = PaperTopology::As25.graph();
        let points = stripping_ablation(graph, &[0.0, 0.4], 4, 13);
        assert_eq!(points.len(), 2);
        assert_eq!(points[0].mean_false_alarms, 0.0);
        assert!(
            points[1].mean_false_alarms > 0.0,
            "strippers must cause false alarms"
        );
        // §4.3: dropping lists must not make false routes accepted as valid.
        assert!(points[1].mean_adoption_pct <= points[0].mean_adoption_pct + 5.0);
    }

    #[test]
    fn every_forgery_is_contained() {
        let graph = PaperTopology::As25.graph();
        let points = forgery_ablation(graph, 3, 17);
        assert_eq!(points.len(), 3);
        for p in &points {
            assert!(p.mean_alarms > 0.0, "{} raised no alarms", p.forgery);
            assert!(
                p.mean_adoption_pct < 20.0,
                "{} adoption {:.1}%",
                p.forgery,
                p.mean_adoption_pct
            );
        }
    }

    #[test]
    fn valley_free_policy_does_not_break_detection() {
        let points = valley_free_ablation(3, 23);
        assert_eq!(points.len(), 2);
        let policy_free = &points[0];
        let valley_free = &points[1];
        assert_eq!(policy_free.routing, "policy-free");
        assert_eq!(policy_free.mean_suppressed, 0.0);
        assert!(valley_free.mean_suppressed > 0.0, "policy must bite");
        // Detection keeps working under policy routing.
        assert!(
            valley_free.moas_adoption_pct < valley_free.normal_adoption_pct,
            "valley-free: {:.1}% !< {:.1}%",
            valley_free.moas_adoption_pct,
            valley_free.normal_adoption_pct
        );
        assert!(policy_free.moas_adoption_pct < policy_free.normal_adoption_pct);
    }

    #[test]
    fn subprefix_traffic_capture_exceeds_control_plane_view() {
        let graph = PaperTopology::As25.graph();
        let result = subprefix_ablation(graph, 3, 11);
        // The data plane confirms the §4.3 damage: traffic inside the
        // hijacked half is captured at (at least) the rate the control
        // plane shows for the sub-prefix itself.
        assert!(
            result.subprefix_traffic_capture_pct >= result.subprefix_adoption_pct - 5.0,
            "traffic {:.1}% vs control {:.1}%",
            result.subprefix_traffic_capture_pct,
            result.subprefix_adoption_pct
        );
        assert!(result.subprefix_traffic_capture_pct > 90.0);
    }

    #[test]
    fn reject_policy_protects_more_when_verifier_is_blind() {
        let graph = PaperTopology::As25.graph();
        let results = unresolved_policy_ablation(graph, 3, 19);
        let accept = results[0].1;
        let reject = results[1].1;
        assert!(reject <= accept, "reject {reject} !<= accept {accept}");
    }
}
