//! One simulation run.

use std::collections::BTreeSet;

use as_topology::AsGraph;
use bgp_engine::{
    CommunityPolicies, CommunityPolicyMap, ConvergenceError, Network, ShardedNetwork,
};
use bgp_types::{Asn, Ipv4Prefix, MoasList};
use minimetrics::{MetricsSink, NoopSink};
use moas_core::{
    Deployment, FalseOriginAttack, ListForgery, MoasConfig, MoasMonitor, OriginVerifier,
    RegistryVerifier, UnresolvedPolicy,
};

/// Configuration of a single run: who originates, who attacks, who checks.
#[derive(Debug, Clone)]
pub struct TrialConfig {
    /// Legitimate origin ASes of the victim prefix (1 or 2 in the paper).
    pub origins: Vec<Asn>,
    /// Compromised ASes that each falsely originate the victim prefix.
    pub attackers: Vec<Asn>,
    /// Which ASes run MOAS checking.
    pub deployment: Deployment,
    /// The attackers' list-forgery strategy.
    pub forgery: ListForgery,
    /// ASes that strip community attributes on export (§4.3 hazard).
    pub strippers: BTreeSet<Asn>,
    /// Per-AS community-handling classes applied on export (Krenc-style),
    /// layered on top of `strippers`' list-dropping. Empty = everyone
    /// propagates unchanged.
    pub policies: CommunityPolicyMap,
    /// Behaviour when the verifier cannot adjudicate.
    pub unresolved: UnresolvedPolicy,
    /// Maximum per-link message delay (jitter explores propagation races).
    pub max_link_delay: u64,
    /// RNG seed for link delays.
    pub seed: u64,
    /// The disputed prefix.
    pub prefix: Ipv4Prefix,
}

impl TrialConfig {
    /// A trial with the given parties and defaults matching §5.2: full
    /// detection semantics are governed by `deployment`; attackers attach the
    /// forged list including themselves (the strongest §4.1 adversary).
    #[must_use]
    pub fn new(origins: Vec<Asn>, attackers: Vec<Asn>, deployment: Deployment) -> Self {
        TrialConfig {
            origins,
            attackers,
            deployment,
            forgery: ListForgery::IncludeSelf,
            strippers: BTreeSet::new(),
            policies: CommunityPolicyMap::new(),
            unresolved: UnresolvedPolicy::Accept,
            max_link_delay: 4,
            seed: 0,
            prefix: crate::VICTIM_PREFIX
                .parse()
                .expect("victim prefix constant"),
        }
    }
}

/// What happened in one run, as counted after quiescence.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrialOutcome {
    /// Non-attacker ASes (the paper's "remaining ASes").
    pub eligible: usize,
    /// Of those, how many ended with a best route originated by an attacker.
    pub adopted_false: usize,
    /// Total alarms raised.
    pub alarms: usize,
    /// Alarms the verifier confirmed as real false origins.
    pub confirmed_alarms: usize,
    /// Alarms that turned out to be dropped-list false positives.
    pub false_alarms: usize,
    /// Verifier lookups performed (§4.4 argues this stays small).
    pub verifier_queries: u64,
    /// BGP update messages delivered.
    pub messages: u64,
}

impl TrialOutcome {
    /// Fraction of remaining ASes that adopted a false route — the Y axis of
    /// Figures 9-11.
    #[must_use]
    pub fn adoption_fraction(&self) -> f64 {
        if self.eligible == 0 {
            0.0
        } else {
            self.adopted_false as f64 / self.eligible as f64
        }
    }
}

/// Runs one trial: originate the victim prefix (with its MOAS list) from
/// every legitimate origin and run BGP to quiescence; then inject every
/// attacker's false announcement into the converged network (the paper's
/// attack model), run to quiescence again, and census who adopted which
/// origin.
///
/// # Panics
///
/// Panics if any origin or attacker is not in `graph`, or if the simulation
/// exceeds its (enormous) event budget. Use [`run_trial_checked`] when the
/// configuration comes from user input rather than a driver's own plan.
#[must_use]
pub fn run_trial(graph: &AsGraph, config: &TrialConfig) -> TrialOutcome {
    run_trial_checked(graph, config).expect("experiment networks always converge")
}

/// [`run_trial`] with the convergence failure surfaced as a typed error
/// instead of a panic — static experiment topologies always converge, but a
/// caller replaying arbitrary user-supplied configurations should not trust
/// that.
///
/// # Panics
///
/// Still panics if any origin or attacker is not in `graph` (that is a
/// planning bug, not a runtime condition).
pub fn run_trial_checked(
    graph: &AsGraph,
    config: &TrialConfig,
) -> Result<TrialOutcome, ConvergenceError> {
    run_trial_metrics(graph, config, &mut NoopSink)
}

/// [`run_trial_checked`] with observability: the trial's network metrics
/// (see `Network::export_metrics`) plus per-phase convergence-time
/// histograms (`trial.convergence_ticks.{origin,attack}`, in virtual ticks)
/// are emitted into `sink`. With [`NoopSink`] this is exactly
/// [`run_trial_checked`] — the instrumentation compiles away.
///
/// # Panics
///
/// Panics if any origin or attacker is not in `graph` (a planning bug).
pub fn run_trial_metrics<S: MetricsSink>(
    graph: &AsGraph,
    config: &TrialConfig,
    sink: &mut S,
) -> Result<TrialOutcome, ConvergenceError> {
    let valid_list: MoasList = config.origins.iter().copied().collect();

    // §4.4: the verifier knows the true origin set (oracle registry, as the
    // paper's experiments assume for "checking with DNS").
    let mut registry = RegistryVerifier::new();
    registry.register(config.prefix, valid_list.clone());

    // The per-AS community policies wrap the MOAS monitor; with an empty map
    // every export forwards untouched, so the wrapper is a strict no-op for
    // legacy configurations.
    let monitor = CommunityPolicies::wrapping(
        config.policies.clone(),
        MoasMonitor::new(
            MoasConfig {
                deployment: config.deployment.clone(),
                strippers: config.strippers.clone(),
                on_unresolved: config.unresolved,
            },
            registry,
        ),
    );

    let mut net =
        Network::with_monitor_and_jitter(graph, monitor, config.seed, config.max_link_delay);

    // The paper's attack model: false announcements are injected into a
    // running network, so the valid routes converge first and the attackers
    // must displace them.
    for &origin in &config.origins {
        net.originate(origin, config.prefix, Some(valid_list.clone()));
    }
    let origin_converged = net.run()?;
    if S::ENABLED {
        sink.record("trial.convergence_ticks.origin", origin_converged.ticks());
    }
    let attack = FalseOriginAttack::new(config.forgery);
    for &attacker in &config.attackers {
        attack.launch(&mut net, attacker, config.prefix, &valid_list);
    }
    let attack_converged = net.run()?;
    if S::ENABLED {
        sink.record(
            "trial.convergence_ticks.attack",
            attack_converged
                .ticks()
                .saturating_sub(origin_converged.ticks()),
        );
        net.export_metrics(sink);
        sink.counter_add("trial.count", 1);
    }

    let attacker_set: BTreeSet<Asn> = config.attackers.iter().copied().collect();
    let mut eligible = 0usize;
    let mut adopted_false = 0usize;
    for asn in graph.asns() {
        if attacker_set.contains(&asn) {
            continue;
        }
        eligible += 1;
        if let Some(origin) = net.best_origin(asn, config.prefix) {
            if attacker_set.contains(&origin) {
                adopted_false += 1;
            }
        }
    }

    let alarms = net.monitor().inner().alarms();
    Ok(TrialOutcome {
        eligible,
        adopted_false,
        alarms: alarms.len(),
        confirmed_alarms: alarms.confirmed_count(),
        false_alarms: alarms.false_alarm_count(),
        verifier_queries: net.monitor().inner().verifier().query_count(),
        messages: net.stats().total_messages(),
    })
}

/// [`run_trial_checked`], but executed on the deterministic sharded engine
/// ([`ShardedNetwork`]): the AS graph is partitioned into `shards` engines
/// and driven in lockstep rounds, optionally on `jobs` worker threads.
///
/// The outcome is **bit-identical for every `(shards, jobs)`** — that
/// invariance is pinned by the `shard_determinism` differential test. It is
/// *not* guaranteed to be bit-identical to [`run_trial_checked`]'s classic
/// engine, whose same-timestamp event order is arrival-based rather than
/// intrinsic; the two agree semantically but may break same-tick ties
/// differently.
///
/// # Errors
///
/// Returns [`ConvergenceError`] when the simulation fails to converge.
///
/// # Panics
///
/// Panics if any origin or attacker is not in `graph` (a planning bug).
pub fn run_trial_sharded(
    graph: &AsGraph,
    config: &TrialConfig,
    shards: usize,
    jobs: usize,
) -> Result<TrialOutcome, ConvergenceError> {
    run_trial_sharded_metrics(graph, config, shards, jobs, &mut NoopSink)
}

/// [`run_trial_sharded`] with observability: emits the same
/// `trial.convergence_ticks.*` histograms and the shard-count-invariant
/// network metrics subset (see `ShardedNetwork::export_metrics`).
///
/// # Errors
///
/// Returns [`ConvergenceError`] when the simulation fails to converge.
///
/// # Panics
///
/// Panics if any origin or attacker is not in `graph` (a planning bug).
pub fn run_trial_sharded_metrics<S: MetricsSink>(
    graph: &AsGraph,
    config: &TrialConfig,
    shards: usize,
    jobs: usize,
    sink: &mut S,
) -> Result<TrialOutcome, ConvergenceError> {
    let valid_list: MoasList = config.origins.iter().copied().collect();

    // Each shard gets its own monitor instance; alarms and verifier queries
    // are observer-scoped, so summing the per-shard logs reproduces the
    // single-monitor totals for any partition of the observers.
    let monitor = || {
        let mut registry = RegistryVerifier::new();
        registry.register(config.prefix, valid_list.clone());
        CommunityPolicies::wrapping(
            config.policies.clone(),
            MoasMonitor::new(
                MoasConfig {
                    deployment: config.deployment.clone(),
                    strippers: config.strippers.clone(),
                    on_unresolved: config.unresolved,
                },
                registry,
            ),
        )
    };
    let mut net = ShardedNetwork::with_monitor_and_jitter(
        graph,
        shards,
        jobs,
        config.seed,
        config.max_link_delay,
        monitor,
    );

    for &origin in &config.origins {
        net.originate(origin, config.prefix, Some(valid_list.clone()));
    }
    let origin_converged = net.run()?;
    if S::ENABLED {
        sink.record("trial.convergence_ticks.origin", origin_converged.ticks());
    }
    let attack = FalseOriginAttack::new(config.forgery);
    for &attacker in &config.attackers {
        net.originate_route(
            attacker,
            attack.forged_route(config.prefix, attacker, &valid_list),
        );
    }
    let attack_converged = net.run()?;
    if S::ENABLED {
        sink.record(
            "trial.convergence_ticks.attack",
            attack_converged
                .ticks()
                .saturating_sub(origin_converged.ticks()),
        );
        net.export_metrics(sink);
        sink.counter_add("trial.count", 1);
    }

    let attacker_set: BTreeSet<Asn> = config.attackers.iter().copied().collect();
    let mut eligible = 0usize;
    let mut adopted_false = 0usize;
    for asn in graph.asns() {
        if attacker_set.contains(&asn) {
            continue;
        }
        eligible += 1;
        if let Some(origin) = net.best_origin(asn, config.prefix) {
            if attacker_set.contains(&origin) {
                adopted_false += 1;
            }
        }
    }

    let mut outcome = TrialOutcome {
        eligible,
        adopted_false,
        messages: net.stats().total_messages(),
        ..TrialOutcome::default()
    };
    for monitor in net.monitors() {
        let alarms = monitor.inner().alarms();
        outcome.alarms += alarms.len();
        outcome.confirmed_alarms += alarms.confirmed_count();
        outcome.false_alarms += alarms.false_alarm_count();
        outcome.verifier_queries += monitor.inner().verifier().query_count();
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::paper::PaperTopology;
    use as_topology::InternetModel;

    fn graph() -> AsGraph {
        InternetModel::new()
            .transit_count(10)
            .stub_count(40)
            .build(5)
    }

    fn pick(graph: &AsGraph, seed: u64, origins: usize, attackers: usize) -> (Vec<Asn>, Vec<Asn>) {
        let mut rng = sim_engine::rng::from_seed(seed);
        let stubs = graph.stub_asns();
        let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, origins);
        let all: Vec<Asn> = graph.asns().filter(|a| !origins.contains(a)).collect();
        let attackers = sim_engine::rng::sample_distinct(&mut rng, &all, attackers);
        (origins, attackers)
    }

    #[test]
    fn no_attackers_means_no_adoption_and_no_alarms() {
        let g = graph();
        let (origins, _) = pick(&g, 1, 2, 0);
        let outcome = run_trial(&g, &TrialConfig::new(origins, vec![], Deployment::Full));
        assert_eq!(outcome.adopted_false, 0);
        assert_eq!(outcome.alarms, 0);
        assert_eq!(outcome.verifier_queries, 0);
        assert_eq!(outcome.eligible, g.len());
        assert!(outcome.messages > 0);
    }

    #[test]
    fn normal_bgp_lets_false_routes_spread() {
        let g = graph();
        let (origins, attackers) = pick(&g, 2, 1, 5);
        let outcome = run_trial(&g, &TrialConfig::new(origins, attackers, Deployment::None));
        assert!(outcome.adopted_false > 0, "some ASes must be fooled");
        assert_eq!(outcome.alarms, 0, "nobody checks under Normal BGP");
    }

    #[test]
    fn full_deployment_suppresses_adoption() {
        let g = graph();
        let (origins, attackers) = pick(&g, 2, 1, 5);
        let normal = run_trial(
            &g,
            &TrialConfig::new(origins.clone(), attackers.clone(), Deployment::None),
        );
        let protected = run_trial(&g, &TrialConfig::new(origins, attackers, Deployment::Full));
        assert!(
            protected.adopted_false < normal.adopted_false,
            "protected {} !< normal {}",
            protected.adopted_false,
            normal.adopted_false
        );
        assert!(protected.confirmed_alarms > 0);
    }

    #[test]
    fn full_deployment_with_oracle_protects_connected_ases() {
        // With full deployment, every AS that still hears the valid route
        // rejects/evicts the false one. Attackers are stubs here, so they
        // cannot cut anyone off: adoption must drop to zero.
        let g = graph();
        let mut rng = sim_engine::rng::from_seed(7);
        let stubs = g.stub_asns();
        let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, 4);
        let origins = vec![picked[0]];
        let attackers = picked[1..].to_vec();
        let outcome = run_trial(&g, &TrialConfig::new(origins, attackers, Deployment::Full));
        assert_eq!(outcome.adopted_false, 0);
    }

    #[test]
    fn trials_are_deterministic() {
        let g = PaperTopology::As25.graph();
        let (origins, attackers) = pick(g, 3, 1, 3);
        let config = TrialConfig::new(origins, attackers, Deployment::Full);
        assert_eq!(run_trial(g, &config), run_trial(g, &config));
    }

    #[test]
    fn adoption_fraction_bounds() {
        let outcome = TrialOutcome {
            eligible: 40,
            adopted_false: 10,
            ..TrialOutcome::default()
        };
        assert!((outcome.adoption_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(TrialOutcome::default().adoption_fraction(), 0.0);
    }

    #[test]
    fn eligible_excludes_attackers() {
        let g = graph();
        let (origins, attackers) = pick(&g, 4, 1, 6);
        let outcome = run_trial(&g, &TrialConfig::new(origins, attackers, Deployment::None));
        assert_eq!(outcome.eligible, g.len() - 6);
    }
}
