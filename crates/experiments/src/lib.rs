//! The paper's simulation study (§5), as a reusable experiment harness.
//!
//! §5.1's protocol: origin ASes are drawn from the stub ASes, attackers from
//! all ASes; each data point averages 15 runs — 3 origin sets × 5 attacker
//! sets; the metric is the percentage of remaining (non-attacker) ASes that
//! adopt a false route. This crate implements:
//!
//! * [`run_trial`] — one simulation run on any topology/deployment;
//! * [`run_sweep`] — the 15-run averaged sweep over attacker fractions;
//! * [`experiment1`], [`experiment2`], [`experiment3`] — Figures 9, 10 and
//!   11 exactly as the paper frames them;
//! * [`subprefix_ablation`], [`stripping_ablation`], [`forgery_ablation`] —
//!   the §4.3 limitation studies;
//! * [`FigureReport`] — plain-text tables and JSON for EXPERIMENTS.md.
//!
//! Every driver also has a `_jobs` variant ([`run_sweep_jobs`],
//! [`experiment1_jobs`], [`forgery_ablation_jobs`], ...) that fans its
//! independent trials across a vendored scoped thread pool (`minipool`).
//! Trials are *planned* sequentially (so no RNG draw order changes), *run*
//! into index-addressed slots, and *aggregated* in planning order — the
//! output is bit-identical to the serial path for every `jobs` value.
//!
//! The main drivers additionally have `_metrics_jobs` variants
//! ([`run_sweep_metrics_jobs`], [`experiment1_metrics_jobs`],
//! [`run_chaos_metrics_jobs`], ...) that return a merged
//! [`minimetrics::MetricsSnapshot`] alongside the report: each trial records
//! into its own sink and the per-trial snapshots merge in plan order, so the
//! snapshot — like the report — is bit-identical for every `jobs` value.
//! Snapshots serialize through [`json`] (see the [`metrics`] module docs
//! for the shape) and render via [`render_metrics_summary`].
//!
//! # Example
//!
//! ```
//! use as_topology::paper::PaperTopology;
//! use experiments::{run_sweep, SweepConfig};
//! use moas_core::Deployment;
//!
//! let mut config = SweepConfig::quick(); // reduced runs for examples/tests
//! config.attacker_fractions = vec![0.1];
//! let graph = PaperTopology::As25.graph();
//!
//! let normal = run_sweep(graph, &config.clone().deployment_fraction(0.0));
//! let full = run_sweep(graph, &config.deployment_fraction(1.0));
//! assert!(full[0].mean_adoption_pct <= normal[0].mean_adoption_pct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod chaos;
mod ensemble;
mod figures;
pub mod json;
pub mod metrics;
mod overhead;
mod report;
pub mod session_chaos;
mod stats;
mod sweep;
mod trial;

pub use ablation::{
    community_policy_ablation, community_policy_ablation_jobs,
    community_policy_ablation_metrics_jobs, forgery_ablation, forgery_ablation_jobs,
    forgery_ablation_metrics_jobs, stripping_ablation, stripping_ablation_jobs,
    stripping_ablation_metrics_jobs, subprefix_ablation, subprefix_ablation_jobs,
    unresolved_policy_ablation, unresolved_policy_ablation_jobs, valley_free_ablation,
    valley_free_ablation_jobs, CommunityPolicyPoint, ForgeryPoint, StrippingPoint,
    SubPrefixAblation, ValleyFreePoint,
};
pub use chaos::{
    run_chaos, run_chaos_deployment_jobs, run_chaos_jobs, run_chaos_metrics_jobs,
    run_chaos_sharded, run_chaos_sharded_metrics, run_deployment_sweep_jobs, ChaosConfig,
    ChaosReport, ChaosScenario, DeploymentSweep, DeploymentSweepPoint, UnknownScenario,
    DEPLOYMENT_SWEEP_FRACTIONS,
};
pub use ensemble::{
    run_ensemble, run_ensemble_jobs, run_ensemble_metrics_jobs, DetectorReport, EnsembleConfig,
    EnsembleDeploymentPoint, EnsembleReport, EnsembleWorkload, UnknownWorkload, WorkloadReport,
    ENSEMBLE_DEPLOYMENT_FRACTIONS,
};
pub use figures::{
    experiment1, experiment1_jobs, experiment1_metrics_jobs, experiment1_sharded, experiment2,
    experiment2_jobs, experiment2_metrics_jobs, experiment2_sharded, experiment3, experiment3_jobs,
    experiment3_metrics_jobs, experiment3_sharded,
};
pub use metrics::{overhead_metrics, render_metrics_summary};
pub use overhead::{
    measure_moas_list_overhead, measure_moas_list_overhead_jobs, moas_list_overhead,
    OverheadReport, WireModel, MRT_FRAMING_BYTES,
};
pub use report::{FigureReport, SeriesReport};
pub use session_chaos::{
    run_session_chaos, run_session_chaos_jobs, SessionChaosConfig, SessionChaosReport,
    SessionChaosScenario, UnknownSessionScenario,
};
pub use stats::{mean, stddev};
pub use sweep::{
    attacker_count_for, run_sweep, run_sweep_jobs, run_sweep_metrics_jobs, run_sweep_sharded,
    run_sweep_sharded_metrics, SweepConfig, SweepPoint,
};
pub use trial::{
    run_trial, run_trial_checked, run_trial_metrics, run_trial_sharded, run_trial_sharded_metrics,
    TrialConfig, TrialOutcome,
};

/// The prefix under attack in every experiment (Figure 1's example prefix).
pub const VICTIM_PREFIX: &str = "208.8.0.0/16";
