//! The paper's simulation study (§5), as a reusable experiment harness.
//!
//! §5.1's protocol: origin ASes are drawn from the stub ASes, attackers from
//! all ASes; each data point averages 15 runs — 3 origin sets × 5 attacker
//! sets; the metric is the percentage of remaining (non-attacker) ASes that
//! adopt a false route. This crate implements:
//!
//! * [`run_trial`] — one simulation run on any topology/deployment;
//! * [`run_sweep`] — the 15-run averaged sweep over attacker fractions;
//! * [`experiment1`], [`experiment2`], [`experiment3`] — Figures 9, 10 and
//!   11 exactly as the paper frames them;
//! * [`subprefix_ablation`], [`stripping_ablation`], [`forgery_ablation`] —
//!   the §4.3 limitation studies;
//! * [`FigureReport`] — plain-text tables and JSON for EXPERIMENTS.md.
//!
//! # Example
//!
//! ```
//! use as_topology::paper::PaperTopology;
//! use experiments::{run_sweep, SweepConfig};
//! use moas_core::Deployment;
//!
//! let mut config = SweepConfig::quick(); // reduced runs for examples/tests
//! config.attacker_fractions = vec![0.1];
//! let graph = PaperTopology::As25.graph();
//!
//! let normal = run_sweep(graph, &config.clone().deployment_fraction(0.0));
//! let full = run_sweep(graph, &config.deployment_fraction(1.0));
//! assert!(full[0].mean_adoption_pct <= normal[0].mean_adoption_pct);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
mod figures;
pub mod json;
mod overhead;
mod report;
mod stats;
mod sweep;
mod trial;

pub use ablation::{
    forgery_ablation, stripping_ablation, subprefix_ablation, unresolved_policy_ablation,
    valley_free_ablation, ForgeryPoint, StrippingPoint, SubPrefixAblation, ValleyFreePoint,
};
pub use figures::{experiment1, experiment2, experiment3};
pub use overhead::{
    measure_moas_list_overhead, moas_list_overhead, OverheadReport, WireModel, MRT_FRAMING_BYTES,
};
pub use report::{FigureReport, SeriesReport};
pub use stats::{mean, stddev};
pub use sweep::{run_sweep, SweepConfig, SweepPoint};
pub use trial::{run_trial, TrialConfig, TrialOutcome};

/// The prefix under attack in every experiment (Figure 1's example prefix).
pub const VICTIM_PREFIX: &str = "208.8.0.0/16";
