//! Session-level chaos: seeded fault campaigns against live BGP FSM pairs.
//!
//! The network-level scenarios ([`crate::ChaosScenario`]) stress the MOAS detector
//! through routing churn; the scenarios here stress the *session layer*
//! underneath it — the RFC 4271 FSM pairs that would carry those routes in
//! deployment. Each trial wires two [`bgp_session::Session`]s back to back
//! in the in-memory [`SessionSim`] harness, injects a seeded schedule of
//! faults (hold-timer starvation, NOTIFICATION storms, capability
//! mismatches, TCP resets, byte corruption), and measures whether the pair
//! recovers and keeps delivering UPDATEs.
//!
//! Determinism follows the same discipline as the network scenarios:
//! per-trial seeds are derived serially from `(config.seed, trial index)`,
//! trials execute into index-addressed slots via [`minipool::map_indexed`],
//! and aggregation runs in planning order — so every report is
//! byte-identical for any `--jobs N`.

use std::str::FromStr;

use bgp_session::{Session, SessionConfig, SessionStats};
use bgp_session::{SessionSim, SimConfig};
use bgp_types::{AsPath, Asn, Ipv4Prefix, RouteOrigin};
use bgp_wire::bgp::{PathAttributes, UpdateMessage};
use bgp_wire::msg::{encode_keepalive, NotificationMessage, OpenMessage};
use rand::Rng;

use crate::json::{self, FromJson, Json, JsonError, ToJson};

/// The session-fault families `moas-lab chaos` can replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionChaosScenario {
    /// The passive peer silently stops refreshing the hold timer
    /// (keepalives are dropped on the floor); the active side must expire
    /// the hold timer, NOTIFY, and reconnect.
    HoldExpiry,
    /// Bursts of unsolicited CEASE NOTIFICATIONs land on the active peer
    /// mid-session.
    NotificationStorm,
    /// A peer that negotiates no 4-octet-AS capability keeps dialing a
    /// listener that requires it; every attempt must be refused with an
    /// OPEN error before a conforming peer finally establishes.
    CapabilityMismatch,
    /// The TCP connection is torn down (RST) at seeded instants.
    TcpReset,
    /// Bytes are flipped in flight, so frames stop parsing mid-stream.
    Corruption,
}

impl SessionChaosScenario {
    /// Every scenario, in canonical order.
    pub const ALL: [SessionChaosScenario; 5] = [
        SessionChaosScenario::HoldExpiry,
        SessionChaosScenario::NotificationStorm,
        SessionChaosScenario::CapabilityMismatch,
        SessionChaosScenario::TcpReset,
        SessionChaosScenario::Corruption,
    ];

    /// The CLI / report name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            SessionChaosScenario::HoldExpiry => "session-hold-expiry",
            SessionChaosScenario::NotificationStorm => "session-notification-storm",
            SessionChaosScenario::CapabilityMismatch => "session-capability-mismatch",
            SessionChaosScenario::TcpReset => "session-tcp-reset",
            SessionChaosScenario::Corruption => "session-corruption",
        }
    }
}

/// Parse error for [`SessionChaosScenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownSessionScenario(String);

impl std::fmt::Display for UnknownSessionScenario {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown session scenario '{}' (expected one of: {})",
            self.0,
            SessionChaosScenario::ALL
                .map(SessionChaosScenario::name)
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownSessionScenario {}

impl FromStr for SessionChaosScenario {
    type Err = UnknownSessionScenario;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SessionChaosScenario::ALL
            .into_iter()
            .find(|scenario| scenario.name() == s)
            .ok_or_else(|| UnknownSessionScenario(s.to_string()))
    }
}

impl ToJson for SessionChaosScenario {
    fn to_json_value(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for SessionChaosScenario {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => s.parse().map_err(|e: UnknownSessionScenario| JsonError {
                message: e.to_string(),
                offset: 0,
            }),
            _ => Err(JsonError {
                message: "expected a session scenario name string".to_string(),
                offset: 0,
            }),
        }
    }
}

/// Configuration of a session-chaos run.
#[derive(Debug, Clone)]
pub struct SessionChaosConfig {
    /// The fault family to replay.
    pub scenario: SessionChaosScenario,
    /// Number of trials (independent FSM pairs).
    pub trials: usize,
    /// Master seed; each trial's fault schedule derives from it.
    pub seed: u64,
    /// Faults injected per trial.
    pub faults_per_trial: usize,
    /// UPDATEs the passive peer streams per trial, split evenly across the
    /// calm windows between faults.
    pub updates_per_trial: usize,
}

json::impl_json_struct!(SessionChaosConfig {
    scenario,
    trials,
    seed,
    faults_per_trial,
    updates_per_trial,
});

impl SessionChaosConfig {
    /// Default protocol: 30 pairs, 4 faults and 24 updates each.
    #[must_use]
    pub fn new(scenario: SessionChaosScenario) -> Self {
        SessionChaosConfig {
            scenario,
            trials: 30,
            seed: 0x005E_5510,
            faults_per_trial: 4,
            updates_per_trial: 24,
        }
    }

    /// A reduced protocol for tests and smoke runs.
    #[must_use]
    pub fn quick(scenario: SessionChaosScenario) -> Self {
        SessionChaosConfig {
            trials: 6,
            faults_per_trial: 2,
            updates_per_trial: 8,
            ..SessionChaosConfig::new(scenario)
        }
    }

    /// Serializes to pretty JSON (for report provenance).
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// What one trial produced.
#[derive(Debug, Clone, Copy, Default)]
struct TrialResult {
    /// The pair reached `Established` before any fault.
    established_first: bool,
    /// The pair was `Established` again after the last fault.
    recovered_last: bool,
    /// Faults actually injected.
    faults: u64,
    /// Faults followed by a successful re-establishment.
    recoveries: u64,
    /// UPDATEs the passive application offered.
    updates_sent: u64,
    /// UPDATEs the active application received.
    updates_delivered: u64,
    /// Virtual ms the trial covered.
    virtual_ms: u64,
    /// The active side's final counters.
    stats: SessionStats,
}

/// Aggregated accuracy of a session-chaos run.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionChaosReport {
    /// Scenario replayed.
    pub scenario: SessionChaosScenario,
    /// Trials run.
    pub trials: usize,
    /// Master seed.
    pub seed: u64,
    /// Trials whose pair established before any fault was injected.
    pub established_trials: usize,
    /// Trials whose pair was established again after the final fault.
    pub recovered_trials: usize,
    /// Faults injected across all trials.
    pub total_faults: u64,
    /// Fraction of faults followed by a successful re-establishment.
    pub recovery_rate: f64,
    /// Fraction of offered UPDATEs that reached the far application.
    pub delivery_rate: f64,
    /// Mean times the active FSM reached `Established` per trial (1.0
    /// means no fault ever forced a reconnect).
    pub mean_establishments: f64,
    /// Mean NOTIFICATIONs sent by the active side per trial.
    pub mean_notifications_sent: f64,
    /// Mean NOTIFICATIONs received by the active side per trial.
    pub mean_notifications_received: f64,
    /// Mean hold-timer expirations per trial.
    pub mean_hold_expirations: f64,
    /// Mean wire-decode errors per trial.
    pub mean_decode_errors: f64,
    /// Mean virtual milliseconds simulated per trial.
    pub mean_virtual_ms: f64,
}

json::impl_json_struct!(SessionChaosReport {
    scenario,
    trials,
    seed,
    established_trials,
    recovered_trials,
    total_faults,
    recovery_rate,
    delivery_rate,
    mean_establishments,
    mean_notifications_sent,
    mean_notifications_received,
    mean_hold_expirations,
    mean_decode_errors,
    mean_virtual_ms,
});

impl SessionChaosReport {
    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// [`run_session_chaos_jobs`] with `jobs = 1`.
#[must_use]
pub fn run_session_chaos(config: &SessionChaosConfig) -> SessionChaosReport {
    run_session_chaos_jobs(config, 1)
}

/// Runs a session-chaos scenario with trial-level parallelism,
/// bit-identical to the serial path for every `jobs` value: per-trial
/// seeds are derived from `(config.seed, trial index)` up front, trials
/// execute into index-addressed slots, and aggregation runs in index
/// order.
#[must_use]
pub fn run_session_chaos_jobs(config: &SessionChaosConfig, jobs: usize) -> SessionChaosReport {
    let seeds: Vec<u64> = (0..config.trials)
        .map(|i| sim_engine::rng::derive_seed(config.seed, i as u64))
        .collect();
    let results: Vec<TrialResult> =
        minipool::map_indexed(jobs, seeds.len(), |i| run_trial(config, seeds[i]));
    aggregate(config, &results)
}

fn aggregate(config: &SessionChaosConfig, results: &[TrialResult]) -> SessionChaosReport {
    let trials = results.len();
    let n = trials.max(1) as f64;
    let total_faults: u64 = results.iter().map(|r| r.faults).sum();
    let recoveries: u64 = results.iter().map(|r| r.recoveries).sum();
    let sent: u64 = results.iter().map(|r| r.updates_sent).sum();
    let delivered: u64 = results.iter().map(|r| r.updates_delivered).sum();
    let mean = |f: &dyn Fn(&TrialResult) -> u64| results.iter().map(f).sum::<u64>() as f64 / n;
    SessionChaosReport {
        scenario: config.scenario,
        trials,
        seed: config.seed,
        established_trials: results.iter().filter(|r| r.established_first).count(),
        recovered_trials: results.iter().filter(|r| r.recovered_last).count(),
        total_faults,
        recovery_rate: if total_faults == 0 {
            1.0
        } else {
            recoveries as f64 / total_faults as f64
        },
        delivery_rate: if sent == 0 {
            1.0
        } else {
            delivered as f64 / sent as f64
        },
        mean_establishments: mean(&|r| r.stats.established),
        mean_notifications_sent: mean(&|r| r.stats.notifications_sent),
        mean_notifications_received: mean(&|r| r.stats.notifications_received),
        mean_hold_expirations: mean(&|r| r.stats.hold_expirations),
        mean_decode_errors: mean(&|r| r.stats.decode_errors),
        mean_virtual_ms: mean(&|r| r.virtual_ms),
    }
}

/// The active/passive pair every sim-based trial uses. Short retry ladder:
/// chaos trials measure recovery, not patience.
fn pair(hold_time: u16, seed: u64) -> SessionSim {
    let mut a = SessionConfig::new(Asn(64_512), 0x0A00_0001);
    a.hold_time = hold_time;
    a.retry_base_ms = 50;
    a.retry_max_ms = 1_000;
    a.seed = seed;
    let mut b = SessionConfig::new(Asn(70_000), 0x0A00_0002);
    b.hold_time = hold_time;
    SessionSim::new(SimConfig { a, b })
}

/// A deterministic UPDATE stream: each sequence number announces its own
/// `/24` under 10.0.0.0/8 from a distinct origin.
fn nth_update(n: u64) -> UpdateMessage {
    let as_path = AsPath::from_sequence([Asn(70_000), Asn(65_000 + (n % 512) as u32)]);
    UpdateMessage {
        withdrawn: Vec::new(),
        attrs: Some(PathAttributes {
            origin: RouteOrigin::Igp,
            next_hop: 0x0A00_0002,
            as_path,
            local_pref: None,
            communities: Vec::new(),
            mp_reach: None,
            mp_unreach: None,
        }),
        nlri: vec![Ipv4Prefix::new(0x0A00_0000 | ((n as u32) << 8), 24)],
    }
}

fn run_trial(config: &SessionChaosConfig, seed: u64) -> TrialResult {
    match config.scenario {
        SessionChaosScenario::CapabilityMismatch => run_capability_trial(config, seed),
        _ => run_sim_trial(config, seed),
    }
}

/// The sim-based scenarios: establish, then alternate calm windows (update
/// bursts) with injected faults, requiring re-establishment after each.
fn run_sim_trial(config: &SessionChaosConfig, seed: u64) -> TrialResult {
    let hold_time = match config.scenario {
        // Hold expiry needs the minimum hold so starving it stays cheap in
        // virtual time; everything else runs the workspace default window.
        SessionChaosScenario::HoldExpiry => 3,
        _ => 30,
    };
    let mut rng = sim_engine::rng::from_seed(seed);
    let mut sim = pair(hold_time, seed);
    let mut result = TrialResult {
        established_first: sim.run_until_established(60_000),
        ..TrialResult::default()
    };

    let faults = config.faults_per_trial.max(1);
    let per_window = config.updates_per_trial / faults;
    let mut sequence: u64 = 0;
    for _ in 0..faults {
        // Calm window: stream a burst of UPDATEs, then let them land.
        for _ in 0..per_window {
            if sim.send_update(bgp_session::sim::Peer::B, &nth_update(sequence)) {
                result.updates_sent += 1;
            }
            sequence += 1;
        }
        let calm: u64 = rng.gen_range(200..2_000);
        sim.run_until(sim.now() + calm);

        // The fault itself.
        result.faults += 1;
        match config.scenario {
            SessionChaosScenario::HoldExpiry => {
                sim.set_drop_keepalives(bgp_session::sim::Peer::B, true);
                // Starve past the negotiated hold plus slack.
                sim.run_until(sim.now() + u64::from(hold_time) * 1_000 + 2_000);
                sim.set_drop_keepalives(bgp_session::sim::Peer::B, false);
            }
            SessionChaosScenario::NotificationStorm => {
                let burst = rng.gen_range(1..=4);
                for _ in 0..burst {
                    let notif = NotificationMessage::cease()
                        .encode()
                        .expect("static NOTIFICATION encodes");
                    sim.inject(bgp_session::sim::Peer::A, notif);
                }
                sim.run_until(sim.now() + 10);
            }
            SessionChaosScenario::TcpReset => {
                sim.reset_tcp();
            }
            SessionChaosScenario::Corruption => {
                sim.corrupt_next(bgp_session::sim::Peer::A);
                sim.send_update(bgp_session::sim::Peer::B, &nth_update(sequence));
                sequence += 1;
                sim.run_until(sim.now() + 10);
            }
            SessionChaosScenario::CapabilityMismatch => unreachable!("handled separately"),
        }

        if sim.run_until_established(sim.now() + 60_000) {
            result.recoveries += 1;
        }
    }

    // Final calm window so late bursts can drain.
    sim.run_until(sim.now() + 3_000);
    result.recovered_last = sim.established();
    result.updates_delivered = sim.delivered(bgp_session::sim::Peer::A).len() as u64;
    result.virtual_ms = sim.now();
    result.stats = *sim.a.stats();
    result
}

/// The capability-mismatch scenario runs against a bare passive FSM: a
/// peer without the 4-octet-AS capability dials a listener that requires
/// it `faults_per_trial` times (each refused with an OPEN error), then a
/// conforming peer establishes and streams the update budget.
fn run_capability_trial(config: &SessionChaosConfig, seed: u64) -> TrialResult {
    use bgp_session::Event;

    let mut rng = sim_engine::rng::from_seed(seed);
    let mut result = TrialResult::default();
    let mut listener_cfg = SessionConfig::new(Asn(64_512), 0x0A00_0001);
    listener_cfg.passive = true;
    listener_cfg.require_four_octet = true;

    let mut now: u64 = 0;
    let mut stats = SessionStats::default();
    for _ in 0..config.faults_per_trial.max(1) {
        // Each refused dial gets a fresh accepted connection, like a real
        // listener would hand out.
        let mut session = Session::new(listener_cfg.clone());
        let mut actions = Vec::new();
        session.handle(now, &Event::ManualStart, &mut actions);
        session.handle(now, &Event::Connected, &mut actions);
        let mut bare = OpenMessage::new(Asn(65_001), 30, 0x0A00_0002);
        bare.capabilities.clear();
        let bytes = bare.encode().expect("static OPEN encodes");
        session.handle(now, &Event::Bytes(&bytes), &mut actions);
        result.faults += 1;
        stats.notifications_sent += session.stats().notifications_sent;
        stats.opens_received += session.stats().opens_received;
        if session.stats().notifications_sent > 0 {
            // Refusal is the *correct* outcome here; count it as the
            // session layer recovering its invariant.
            result.recoveries += 1;
        }
        now += rng.gen_range(200..2_000);
    }

    // A conforming peer finally shows up.
    let mut session = Session::new(listener_cfg);
    let mut actions = Vec::new();
    session.handle(now, &Event::ManualStart, &mut actions);
    session.handle(now, &Event::Connected, &mut actions);
    let good = OpenMessage::new(Asn(70_000), 30, 0x0A00_0003)
        .encode()
        .expect("static OPEN encodes");
    session.handle(now, &Event::Bytes(&good), &mut actions);
    session.handle(now, &Event::Bytes(&encode_keepalive()), &mut actions);
    result.established_first = false;
    result.recovered_last = session.state() == bgp_session::State::Established;
    if result.recovered_last {
        let encoding = if session.peer().is_some_and(|p| p.four_octet) {
            bgp_wire::bgp::AsnEncoding::FourOctet
        } else {
            bgp_wire::bgp::AsnEncoding::TwoOctet
        };
        for n in 0..config.updates_per_trial as u64 {
            let bytes = nth_update(n)
                .encode(encoding)
                .expect("static UPDATE encodes");
            let mut actions = Vec::new();
            session.handle(now, &Event::Bytes(&bytes), &mut actions);
            result.updates_sent += 1;
            result.updates_delivered += actions
                .iter()
                .filter(|a| matches!(a, bgp_session::SessionAction::Deliver(_)))
                .count() as u64;
        }
    }
    result.virtual_ms = now;
    stats.established = session.stats().established;
    stats.notifications_sent += session.stats().notifications_sent;
    stats.updates_received = session.stats().updates_received;
    result.stats = stats;
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_runs_and_recovers() {
        for scenario in SessionChaosScenario::ALL {
            let config = SessionChaosConfig::quick(scenario);
            let report = run_session_chaos(&config);
            assert_eq!(report.trials, config.trials, "{scenario:?}");
            assert_eq!(
                report.recovered_trials, report.trials,
                "{scenario:?} pairs did not all recover: {report:?}"
            );
            assert!(
                report.recovery_rate > 0.99,
                "{scenario:?} recovery rate {}",
                report.recovery_rate
            );
            assert!(report.total_faults > 0, "{scenario:?}");
        }
    }

    #[test]
    fn parallel_runs_are_bit_identical_to_serial() {
        for scenario in SessionChaosScenario::ALL {
            let config = SessionChaosConfig::quick(scenario);
            let serial = run_session_chaos_jobs(&config, 1);
            for jobs in [2, 4, 7] {
                let parallel = run_session_chaos_jobs(&config, jobs);
                assert_eq!(
                    serial.to_json(),
                    parallel.to_json(),
                    "{scenario:?} diverged at jobs={jobs}"
                );
            }
        }
    }

    #[test]
    fn hold_expiry_trips_the_hold_timer() {
        let config = SessionChaosConfig::quick(SessionChaosScenario::HoldExpiry);
        let report = run_session_chaos(&config);
        assert!(report.mean_hold_expirations >= 1.0, "{report:?}");
        assert!(report.mean_establishments > 1.0);
    }

    #[test]
    fn corruption_registers_decode_errors() {
        let config = SessionChaosConfig::quick(SessionChaosScenario::Corruption);
        let report = run_session_chaos(&config);
        assert!(report.mean_decode_errors >= 1.0, "{report:?}");
    }

    #[test]
    fn report_round_trips_through_json() {
        let config = SessionChaosConfig::quick(SessionChaosScenario::TcpReset);
        let report = run_session_chaos(&config);
        let parsed =
            SessionChaosReport::from_json_value(&Json::parse(&report.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn scenario_names_round_trip() {
        for scenario in SessionChaosScenario::ALL {
            assert_eq!(scenario.name().parse(), Ok(scenario));
        }
        assert!("session-zap".parse::<SessionChaosScenario>().is_err());
    }
}
