//! The paper's three experiments, one function per figure.

use as_topology::paper::PaperTopology;
use minimetrics::MetricsSnapshot;

use crate::report::{FigureReport, SeriesReport};
use crate::sweep::{run_sweep_metrics_jobs, run_sweep_sharded, SweepConfig};

/// Experiment 1 (Figure 9): effectiveness of the MOAS list on the 46-AS
/// topology, comparing Normal BGP against Full MOAS Detection, with
/// `origin_count` ∈ {1, 2}.
///
/// Pass [`SweepConfig::paper`] for the full 15-runs-per-point protocol or
/// [`SweepConfig::quick`] for a fast smoke version; `origin_count`,
/// `deployment_fraction` and `forgery` in the passed config are overridden
/// per the experiment's definition.
#[must_use]
pub fn experiment1(origin_count: usize, base: &SweepConfig) -> FigureReport {
    experiment1_jobs(origin_count, base, 1)
}

/// [`experiment1`] with each sweep's trials fanned across up to `jobs`
/// worker threads (same figure, byte for byte — see [`run_sweep_jobs`](crate::run_sweep_jobs)).
#[must_use]
pub fn experiment1_jobs(origin_count: usize, base: &SweepConfig, jobs: usize) -> FigureReport {
    experiment1_metrics_jobs(origin_count, base, jobs).0
}

/// [`experiment1_jobs`] plus the merged metrics snapshot of both sweeps
/// (Normal BGP first, Full MOAS Detection second — merge order is the
/// series order, so the snapshot is identical for every `jobs` value).
#[must_use]
pub fn experiment1_metrics_jobs(
    origin_count: usize,
    base: &SweepConfig,
    jobs: usize,
) -> (FigureReport, MetricsSnapshot) {
    let graph = PaperTopology::As46.graph();
    let (normal, normal_metrics) = run_sweep_metrics_jobs(
        graph,
        &base
            .clone()
            .origin_count(origin_count)
            .deployment_fraction(0.0),
        jobs,
    );
    let (full, full_metrics) = run_sweep_metrics_jobs(
        graph,
        &base
            .clone()
            .origin_count(origin_count)
            .deployment_fraction(1.0),
        jobs,
    );
    let mut metrics = normal_metrics;
    metrics.merge(&full_metrics);
    let report = FigureReport::new(
        format!("fig9{}", if origin_count == 1 { "a" } else { "b" }),
        format!(
            "Spoof-resilience of the MOAS scheme in the 46-AS topology ({origin_count} origin AS{})",
            if origin_count == 1 { "" } else { "es" }
        ),
        vec![
            SeriesReport {
                label: "Normal BGP".into(),
                points: normal,
            },
            SeriesReport {
                label: "Full MOAS Detection".into(),
                points: full,
            },
        ],
    );
    (report, metrics)
}

/// [`experiment1`] through the deterministic sharded engine: each sweep's
/// trials run one at a time, fanned over `shards` partition engines on up to
/// `jobs` worker threads. Bit-identical for every `(shards, jobs)` pair (see
/// [`run_sweep_sharded`]); not guaranteed byte-identical to the classic
/// engine's figure, whose same-tick tie-breaks differ.
#[must_use]
pub fn experiment1_sharded(
    origin_count: usize,
    base: &SweepConfig,
    shards: usize,
    jobs: usize,
) -> FigureReport {
    let graph = PaperTopology::As46.graph();
    let normal = run_sweep_sharded(
        graph,
        &base
            .clone()
            .origin_count(origin_count)
            .deployment_fraction(0.0),
        shards,
        jobs,
    );
    let full = run_sweep_sharded(
        graph,
        &base
            .clone()
            .origin_count(origin_count)
            .deployment_fraction(1.0),
        shards,
        jobs,
    );
    FigureReport::new(
        format!("fig9{}", if origin_count == 1 { "a" } else { "b" }),
        format!(
            "Spoof-resilience of the MOAS scheme in the 46-AS topology ({origin_count} origin AS{})",
            if origin_count == 1 { "" } else { "es" }
        ),
        vec![
            SeriesReport {
                label: "Normal BGP".into(),
                points: normal,
            },
            SeriesReport {
                label: "Full MOAS Detection".into(),
                points: full,
            },
        ],
    )
}

/// Experiment 2 (Figure 10): topology-size comparison — 25, 46 and 63 AS
/// topologies, Normal BGP vs Full MOAS Detection, for `origin_count` ∈ {1, 2}.
#[must_use]
pub fn experiment2(origin_count: usize, base: &SweepConfig) -> FigureReport {
    experiment2_jobs(origin_count, base, 1)
}

/// [`experiment2`] with each sweep's trials fanned across up to `jobs`
/// worker threads (same figure, byte for byte — see [`run_sweep_jobs`](crate::run_sweep_jobs)).
#[must_use]
pub fn experiment2_jobs(origin_count: usize, base: &SweepConfig, jobs: usize) -> FigureReport {
    experiment2_metrics_jobs(origin_count, base, jobs).0
}

/// [`experiment2_jobs`] plus the merged metrics snapshot of all six sweeps
/// (merged in series order, so the snapshot is identical for every `jobs`
/// value).
#[must_use]
pub fn experiment2_metrics_jobs(
    origin_count: usize,
    base: &SweepConfig,
    jobs: usize,
) -> (FigureReport, MetricsSnapshot) {
    let mut series = Vec::new();
    let mut metrics = MetricsSnapshot::new();
    for deployment in [0.0, 1.0] {
        for topology in PaperTopology::ALL {
            let (points, sweep_metrics) = run_sweep_metrics_jobs(
                topology.graph(),
                &base
                    .clone()
                    .origin_count(origin_count)
                    .deployment_fraction(deployment),
                jobs,
            );
            metrics.merge(&sweep_metrics);
            let mode = if deployment == 0.0 {
                "Normal BGP"
            } else {
                "Full MOAS Detection"
            };
            series.push(SeriesReport {
                label: format!("{topology} {mode}"),
                points,
            });
        }
    }
    let report = FigureReport::new(
        format!("fig10{}", if origin_count == 1 { "a" } else { "b" }),
        format!(
            "Comparison between 25-AS, 46-AS and 63-AS topologies ({origin_count} origin AS{})",
            if origin_count == 1 { "" } else { "es" }
        ),
        series,
    );
    (report, metrics)
}

/// [`experiment2`] through the deterministic sharded engine (see
/// [`experiment1_sharded`] for the execution model and determinism contract).
#[must_use]
pub fn experiment2_sharded(
    origin_count: usize,
    base: &SweepConfig,
    shards: usize,
    jobs: usize,
) -> FigureReport {
    let mut series = Vec::new();
    for deployment in [0.0, 1.0] {
        for topology in PaperTopology::ALL {
            let points = run_sweep_sharded(
                topology.graph(),
                &base
                    .clone()
                    .origin_count(origin_count)
                    .deployment_fraction(deployment),
                shards,
                jobs,
            );
            let mode = if deployment == 0.0 {
                "Normal BGP"
            } else {
                "Full MOAS Detection"
            };
            series.push(SeriesReport {
                label: format!("{topology} {mode}"),
                points,
            });
        }
    }
    FigureReport::new(
        format!("fig10{}", if origin_count == 1 { "a" } else { "b" }),
        format!(
            "Comparison between 25-AS, 46-AS and 63-AS topologies ({origin_count} origin AS{})",
            if origin_count == 1 { "" } else { "es" }
        ),
        series,
    )
}

/// Experiment 3 (Figure 11): partial deployment — none / half / full MOAS
/// detection on one of the paper's topologies (the paper shows 46-AS and
/// 63-AS panels).
#[must_use]
pub fn experiment3(topology: PaperTopology, base: &SweepConfig) -> FigureReport {
    experiment3_jobs(topology, base, 1)
}

/// [`experiment3`] with each sweep's trials fanned across up to `jobs`
/// worker threads (same figure, byte for byte — see [`run_sweep_jobs`](crate::run_sweep_jobs)).
#[must_use]
pub fn experiment3_jobs(topology: PaperTopology, base: &SweepConfig, jobs: usize) -> FigureReport {
    experiment3_metrics_jobs(topology, base, jobs).0
}

/// [`experiment3_jobs`] plus the merged metrics snapshot of its three sweeps
/// (merged in series order — none, half, full deployment — so the snapshot
/// is identical for every `jobs` value).
#[must_use]
pub fn experiment3_metrics_jobs(
    topology: PaperTopology,
    base: &SweepConfig,
    jobs: usize,
) -> (FigureReport, MetricsSnapshot) {
    let graph = topology.graph();
    let mut series = Vec::new();
    let mut metrics = MetricsSnapshot::new();
    for (fraction, label) in [
        (0.0, "Normal BGP"),
        (0.5, "Half MOAS Detection"),
        (1.0, "Full MOAS Detection"),
    ] {
        let (points, sweep_metrics) =
            run_sweep_metrics_jobs(graph, &base.clone().deployment_fraction(fraction), jobs);
        metrics.merge(&sweep_metrics);
        series.push(SeriesReport {
            label: label.into(),
            points,
        });
    }
    let report = FigureReport::new(
        format!("fig11-{}", topology.size()),
        format!("Partial vs complete deployment of MOAS detection ({topology} topology)"),
        series,
    );
    (report, metrics)
}

/// [`experiment3`] through the deterministic sharded engine (see
/// [`experiment1_sharded`] for the execution model and determinism contract).
#[must_use]
pub fn experiment3_sharded(
    topology: PaperTopology,
    base: &SweepConfig,
    shards: usize,
    jobs: usize,
) -> FigureReport {
    let graph = topology.graph();
    let mut series = Vec::new();
    for (fraction, label) in [
        (0.0, "Normal BGP"),
        (0.5, "Half MOAS Detection"),
        (1.0, "Full MOAS Detection"),
    ] {
        let points = run_sweep_sharded(
            graph,
            &base.clone().deployment_fraction(fraction),
            shards,
            jobs,
        );
        series.push(SeriesReport {
            label: label.into(),
            points,
        });
    }
    FigureReport::new(
        format!("fig11-{}", topology.size()),
        format!("Partial vs complete deployment of MOAS detection ({topology} topology)"),
        series,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        let mut c = SweepConfig::quick();
        c.attacker_fractions = vec![0.1, 0.3];
        c.origin_set_count = 1;
        c.attacker_set_count = 2;
        c
    }

    #[test]
    fn experiment1_structure_and_ordering() {
        let fig = experiment1(1, &tiny());
        assert_eq!(fig.id, "fig9a");
        assert_eq!(fig.series.len(), 2);
        let normal = &fig.series[0];
        let full = &fig.series[1];
        assert_eq!(normal.points.len(), 2);
        // The mechanism must not make things worse at any point.
        for (n, f) in normal.points.iter().zip(&full.points) {
            assert!(f.mean_adoption_pct <= n.mean_adoption_pct + 1e-9);
        }
    }

    #[test]
    fn experiment1_two_origins_id() {
        let fig = experiment1(2, &tiny());
        assert_eq!(fig.id, "fig9b");
        assert!(fig.title.contains("2 origin ASes"));
    }

    #[test]
    fn experiment2_has_six_series() {
        let fig = experiment2(1, &tiny());
        assert_eq!(fig.series.len(), 6);
        assert!(fig.series.iter().any(|s| s.label == "25-AS Normal BGP"));
        assert!(fig
            .series
            .iter()
            .any(|s| s.label == "63-AS Full MOAS Detection"));
    }

    #[test]
    fn experiment3_has_three_deployment_levels() {
        let fig = experiment3(PaperTopology::As25, &tiny());
        assert_eq!(fig.id, "fig11-25");
        assert_eq!(fig.series.len(), 3);
        // Half deployment sits between none and full (within noise we only
        // require it to be no worse than Normal BGP).
        let normal = &fig.series[0].points;
        let half = &fig.series[1].points;
        for (n, h) in normal.iter().zip(half) {
            assert!(h.mean_adoption_pct <= n.mean_adoption_pct + 1e-9);
        }
    }
}
