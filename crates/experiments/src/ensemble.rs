//! The detector-ensemble driver: three detectors, one set of trial streams.
//!
//! CommunityWatch-style evaluation asks how *families* of cheap detectors
//! compare on identical input. This driver records each trial's route
//! observations exactly once — a passive [`TapMonitor`] taps every import and
//! withdraw while the network runs — and then replays the recorded stream
//! through each detector offline:
//!
//! * **moas-list** — the paper's §4.2 consistency check
//!   ([`MoasListDetector`]);
//! * **flap-damping** — the RFC 2439 penalty baseline
//!   ([`FlapDampingDetector`]);
//! * **communities-anomaly** — the learned community-baseline check
//!   ([`CommunitiesAnomalyDetector`]).
//!
//! Because the detectors are passive, every one of them sees byte-identical
//! input, so their false-alarm / latency / miss numbers are directly
//! comparable — no detector's interventions perturb another's view.
//!
//! Workloads cover three chaos scenarios (failover, origin-flap,
//! session-reset — the same casts and fault plans as `moas-lab chaos`) plus a
//! **long-lived legitimate MOAS** workload modeled on modern measurement
//! (Sediqi et al.): anycast origin groups announcing a shared explicit list,
//! sibling-AS pairs co-originating with implicit lists, and CDN-style
//! handoff churn where one member drops out of and rejoins the origin set
//! every `dwell_ticks`. A deployment sweep replays the recorded failover
//! streams filtered to seeded observer subsets — replay is cheap, so partial
//! deployment costs no extra simulation.
//!
//! Per-AS community handling follows the Krenc et al. classes
//! ([`CommunityPolicy`]): `EnsembleConfig::policy` assigns one class to every
//! transit AS (scenario-specific strippers keep their `strip-moas`
//! behaviour), shaping what the observation points — and therefore all three
//! detectors — get to see.

use std::collections::BTreeSet;

use as_topology::{AsGraph, OrgAnnotations};
use bgp_engine::{
    CommunityPolicy, CommunityPolicyMap, ExportAction, FaultEvent, ImportContext, ImportDecision,
    NetFaultPlan, Network, RouteMonitor,
};
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use minimetrics::{MetricsSink, MetricsSnapshot, NoopSink, RecordingSink, Scoped};
use moas_core::{Deployment, FalseOriginAttack, ListForgery};
use rand::Rng;
use route_measurement::{
    CommunitiesAnomalyDetector, CommunitiesConfig, Detector, DetectorAlarm, FlapDampingDetector,
    MoasListDetector, ObservationKind, RouteObservation,
};
use sim_engine::SimTime;

use crate::chaos::{
    build_scenario, chaos_graph, plan_casts, ChaosConfig, ChaosScenario, TrialPlan, T_ATTACK,
    T_CHURN,
};
use crate::json::{self, FromJson, Json, JsonError, ToJson};
use crate::stats::mean;

use std::fmt;
use std::str::FromStr;

/// One workload class of the ensemble run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnsembleWorkload {
    /// The chaos failover scenario: provider link dies, backup origin comes
    /// online with an implicit list, link heals.
    Failover,
    /// The chaos origin-flap scenario: a backup origin toggles six times
    /// under MRAI.
    OriginFlap,
    /// The chaos session-reset scenario: the victim's (list-stripping)
    /// provider session resets repeatedly.
    SessionReset,
    /// Long-lived legitimate MOAS: anycast groups, sibling pairs, CDN
    /// handoff churn.
    LongLivedMoas,
}

impl EnsembleWorkload {
    /// All workloads, in report order.
    #[must_use]
    pub fn all() -> [EnsembleWorkload; 4] {
        [
            EnsembleWorkload::Failover,
            EnsembleWorkload::OriginFlap,
            EnsembleWorkload::SessionReset,
            EnsembleWorkload::LongLivedMoas,
        ]
    }

    /// The CLI/JSON name of the workload.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EnsembleWorkload::Failover => "failover",
            EnsembleWorkload::OriginFlap => "origin-flap",
            EnsembleWorkload::SessionReset => "session-reset",
            EnsembleWorkload::LongLivedMoas => "long-lived-moas",
        }
    }

    /// The chaos scenario this workload replays, when it is a chaos one.
    fn chaos_scenario(self) -> Option<ChaosScenario> {
        match self {
            EnsembleWorkload::Failover => Some(ChaosScenario::Failover),
            EnsembleWorkload::OriginFlap => Some(ChaosScenario::OriginFlap),
            EnsembleWorkload::SessionReset => Some(ChaosScenario::SessionReset),
            EnsembleWorkload::LongLivedMoas => None,
        }
    }
}

impl fmt::Display for EnsembleWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Parse error for [`EnsembleWorkload`], naming the valid workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownWorkload(String);

impl fmt::Display for UnknownWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown workload '{}' (expected one of: failover, origin-flap, session-reset, long-lived-moas)",
            self.0
        )
    }
}

impl std::error::Error for UnknownWorkload {}

impl FromStr for EnsembleWorkload {
    type Err = UnknownWorkload;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        EnsembleWorkload::all()
            .into_iter()
            .find(|w| w.name() == s)
            .ok_or_else(|| UnknownWorkload(s.to_string()))
    }
}

impl ToJson for EnsembleWorkload {
    fn to_json_value(&self) -> Json {
        Json::Str(self.name().to_string())
    }
}

impl FromJson for EnsembleWorkload {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) => s.parse().map_err(|e: UnknownWorkload| JsonError {
                message: e.to_string(),
                offset: 0,
            }),
            _ => Err(JsonError {
                message: "expected a workload name string".to_string(),
                offset: 0,
            }),
        }
    }
}

/// Configuration of an ensemble run.
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Monte-Carlo trials per workload.
    pub trials: usize,
    /// Master seed: topology, casts, fault streams and deployment samples
    /// all derive from it.
    pub seed: u64,
    /// Transit AS count of the generated topology.
    pub transit_count: usize,
    /// Stub AS count of the generated topology.
    pub stub_count: usize,
    /// Maximum per-link delay jitter.
    pub max_link_delay: u64,
    /// Handoff period of the long-lived-MOAS workload: one origin-set member
    /// drops out and rejoins every `dwell_ticks` (clamped to at least 1).
    pub dwell_ticks: u64,
    /// Probability that a long-lived-MOAS trial uses a sibling-AS pair
    /// (implicit lists) instead of an anycast group (shared explicit list).
    pub sibling_fraction: f64,
    /// Community-handling class every transit AS applies on export
    /// (Krenc-style). Scenario strippers keep their `strip-moas` behaviour
    /// regardless.
    pub policy: CommunityPolicy,
}

impl EnsembleConfig {
    /// Default protocol: 20 trials per workload on the chaos-sized topology.
    #[must_use]
    pub fn new() -> Self {
        EnsembleConfig {
            trials: 20,
            seed: 0xE5B1,
            transit_count: 8,
            stub_count: 24,
            max_link_delay: 4,
            dwell_ticks: 40,
            sibling_fraction: 0.5,
            policy: CommunityPolicy::Propagate,
        }
    }

    /// A reduced protocol for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        EnsembleConfig {
            trials: 4,
            transit_count: 6,
            stub_count: 16,
            ..EnsembleConfig::new()
        }
    }

    /// The chaos configuration one chaos workload runs under: same seed and
    /// topology parameters, so all workloads share one graph and one set of
    /// casts.
    fn chaos_config(&self, scenario: ChaosScenario) -> ChaosConfig {
        ChaosConfig {
            scenario,
            trials: self.trials,
            seed: self.seed,
            transit_count: self.transit_count,
            stub_count: self.stub_count,
            max_link_delay: self.max_link_delay,
        }
    }
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig::new()
    }
}

/// The deployment fractions the sweep section of the report covers.
pub const ENSEMBLE_DEPLOYMENT_FRACTIONS: [f64; 3] = [0.0, 0.5, 1.0];

/// One detector's accuracy over one workload (or one deployment point).
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorReport {
    /// The detector's stable name.
    pub detector: String,
    /// Fraction of churn-only trials with at least one alarm.
    pub false_alarm_rate: f64,
    /// Mean alarms per churn-only trial.
    pub mean_false_alarms: f64,
    /// Fraction of attack trials where no alarm implicated the attacker's
    /// origin at or after the injection tick.
    pub missed_detection_rate: f64,
    /// Mean ticks from injection to the first attacker-implicating alarm,
    /// over detected trials (0 when nothing was detected).
    pub mean_detection_latency_ticks: f64,
    /// Attack trials with a detection.
    pub detected_trials: usize,
}

json::impl_json_struct!(DetectorReport {
    detector,
    false_alarm_rate,
    mean_false_alarms,
    missed_detection_rate,
    mean_detection_latency_ticks,
    detected_trials,
});

/// All detectors' accuracy over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadReport {
    /// The workload.
    pub workload: EnsembleWorkload,
    /// One report per detector, in catalog order.
    pub detectors: Vec<DetectorReport>,
}

json::impl_json_struct!(WorkloadReport {
    workload,
    detectors,
});

/// All detectors' accuracy at one deployment fraction (failover streams,
/// observers filtered to a seeded subset).
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleDeploymentPoint {
    /// Fraction of ASes whose observation points feed the detectors.
    pub deployment_fraction: f64,
    /// One report per detector, in catalog order.
    pub detectors: Vec<DetectorReport>,
}

json::impl_json_struct!(EnsembleDeploymentPoint {
    deployment_fraction,
    detectors,
});

/// The full ensemble report — the `BENCH_ensemble.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct EnsembleReport {
    /// Trials per workload.
    pub trials: usize,
    /// The master seed the run derived from.
    pub seed: u64,
    /// The community-handling class transit ASes applied, by name.
    pub policy: String,
    /// Per-workload comparisons, in workload catalog order.
    pub workloads: Vec<WorkloadReport>,
    /// The deployment sweep over the failover streams.
    pub deployment: Vec<EnsembleDeploymentPoint>,
}

json::impl_json_struct!(EnsembleReport {
    trials,
    seed,
    policy,
    workloads,
    deployment,
});

impl EnsembleReport {
    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

/// The detector catalog, by construction index. Fresh instances are built
/// per replayed stream so no state leaks between trials or runs.
const DETECTOR_COUNT: usize = 3;

fn make_detector(index: usize) -> Box<dyn Detector> {
    match index {
        0 => Box::new(MoasListDetector::new()),
        1 => Box::new(FlapDampingDetector::default()),
        _ => Box::new(CommunitiesAnomalyDetector::new(CommunitiesConfig {
            // Baselines are learned from the pre-churn convergence only, so
            // scripted churn and the attack both count as post-learning.
            learning_window: T_CHURN,
        })),
    }
}

fn detector_name(index: usize) -> &'static str {
    match index {
        0 => "moas-list",
        1 => "flap-damping",
        _ => "communities-anomaly",
    }
}

/// The passive tap: accepts every route (plain-BGP import), applies the
/// per-AS community policy on export, and records announces/withdraws as
/// [`RouteObservation`]s stamped with the simulation clock.
struct TapMonitor {
    now: u64,
    policies: CommunityPolicyMap,
    observations: Vec<RouteObservation>,
}

impl TapMonitor {
    fn new(policies: CommunityPolicyMap) -> Self {
        TapMonitor {
            now: 0,
            policies,
            observations: Vec::new(),
        }
    }
}

impl RouteMonitor for TapMonitor {
    fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
        if let Some(origin) = ctx.route.origin_as() {
            self.observations.push(RouteObservation {
                time: self.now,
                observer: ctx.local,
                from_peer: Some(ctx.from_peer),
                prefix: ctx.route.prefix(),
                kind: ObservationKind::Announce {
                    origin,
                    moas_list: ctx.route.moas_list().map(|l| l.iter().collect()),
                    communities: ctx.route.communities().to_vec(),
                },
            });
        }
        ImportDecision::accept()
    }

    fn on_export(
        &mut self,
        local: Asn,
        _to_peer: Asn,
        _learned_from: Option<Asn>,
        route: &Route,
    ) -> ExportAction {
        match self.policies.policy_of(local).apply(local, route) {
            None => ExportAction::Forward,
            Some(modified) => ExportAction::Replace(modified),
        }
    }

    fn on_withdraw(&mut self, local: Asn, from_peer: Asn, prefix: Ipv4Prefix) {
        self.observations.push(RouteObservation {
            time: self.now,
            observer: local,
            from_peer: Some(from_peer),
            prefix,
            kind: ObservationKind::Withdraw,
        });
    }

    fn on_clock(&mut self, now: SimTime) {
        self.now = now.ticks();
    }
}

/// The recorded streams of one trial: the same fault plan run twice, without
/// and with the attack injection.
struct TrialStreams {
    attacker: Asn,
    /// Per-trial seed, reused to sample deployment subsets during replay.
    seed: u64,
    churn: Vec<RouteObservation>,
    attack: Vec<RouteObservation>,
}

/// One planned cell: `(workload, trial)`.
enum CellPlan {
    Chaos {
        scenario: ChaosScenario,
        cast: TrialPlan,
    },
    LongLived(LongLivedPlan),
}

impl CellPlan {
    fn seed(&self) -> u64 {
        match self {
            CellPlan::Chaos { cast, .. } => cast.seed,
            CellPlan::LongLived(plan) => plan.seed,
        }
    }
}

/// The cast of one long-lived-MOAS trial.
struct LongLivedPlan {
    /// The legitimate co-originating ASes (sibling pair or anycast group).
    origins: Vec<Asn>,
    /// Whether the origins publish the shared explicit list (anycast) or
    /// announce bare (sibling registrations, the common real-world case).
    explicit_list: bool,
    /// The member whose origination toggles every dwell window (CDN
    /// handoff).
    toggler: Asn,
    /// The forged-origin attacker of the attack run.
    attacker: Asn,
    /// Per-trial seed.
    seed: u64,
}

/// Plans the long-lived-MOAS casts serially. Sibling pairs and anycast
/// groups come from a seeded [`OrgAnnotations`] sample over the graph's
/// stubs; each trial flips a seeded coin to choose between them.
fn plan_long_lived(graph: &AsGraph, config: &EnsembleConfig) -> Vec<LongLivedPlan> {
    let orgs = OrgAnnotations::sample(
        graph,
        2,
        1,
        3,
        sim_engine::rng::derive_seed(config.seed, 0x0096),
    );
    let stubs = graph.stub_asns();
    (0..config.trials)
        .map(|t| {
            let seed = sim_engine::rng::derive_seed(config.seed, 0x1000 + t as u64);
            let mut rng = sim_engine::rng::from_seed(seed);
            let use_sibling = !orgs.sibling_pairs().is_empty()
                && config.sibling_fraction > 0.0
                && rng.gen::<f64>() < config.sibling_fraction;
            let origins: Vec<Asn> = if use_sibling {
                let pairs = orgs.sibling_pairs();
                let (a, b) = pairs[t % pairs.len()];
                vec![a, b]
            } else if let Some(group) = orgs.anycast_groups().first() {
                group.clone()
            } else {
                // Degenerate graph with no annotatable stubs: fall back to
                // two sampled stubs acting as an ad-hoc pair.
                sim_engine::rng::sample_distinct(&mut rng, &stubs, 2)
            };
            let toggler = *origins.last().expect("origin sets are non-empty");
            let candidates: Vec<Asn> = graph.asns().filter(|a| !origins.contains(a)).collect();
            let attacker = sim_engine::rng::sample_distinct(&mut rng, &candidates, 1)[0];
            LongLivedPlan {
                origins,
                explicit_list: !use_sibling,
                toggler,
                attacker,
                seed,
            }
        })
        .collect()
}

/// Phase 1: plans every `(workload, trial)` cell serially, in workload
/// catalog order. Chaos workloads share one cast list (the per-trial seeds
/// depend only on `(config.seed, trial)`), so all three replay the same
/// victims, partners and attackers — the streams differ only in the fault
/// plan.
fn plan_cells(graph: &AsGraph, config: &EnsembleConfig) -> Vec<CellPlan> {
    let mut cells = Vec::with_capacity(EnsembleWorkload::all().len() * config.trials);
    for workload in EnsembleWorkload::all() {
        match workload.chaos_scenario() {
            Some(scenario) => {
                let chaos = config.chaos_config(scenario);
                for cast in plan_casts(graph, &chaos) {
                    cells.push(CellPlan::Chaos { scenario, cast });
                }
            }
            None => cells.extend(
                plan_long_lived(graph, config)
                    .into_iter()
                    .map(CellPlan::LongLived),
            ),
        }
    }
    cells
}

/// The per-AS community-handling assignment of one run: the configured class
/// on every transit AS, with scenario strippers forced to `strip-moas` on
/// top (the §4.3 behaviour those scenarios are about).
fn policy_map(
    graph: &AsGraph,
    strippers: &BTreeSet<Asn>,
    policy: CommunityPolicy,
) -> CommunityPolicyMap {
    let mut map = CommunityPolicyMap::new();
    if policy != CommunityPolicy::Propagate {
        for asn in graph.transit_asns() {
            map.set(asn, policy);
        }
    }
    for &stripper in strippers {
        map.set(stripper, CommunityPolicy::StripMoas);
    }
    map
}

/// Everything one recorded run needs: who originates what, the fault
/// timeline, and the export-time community handling.
struct RunSpec {
    origins: Vec<(Asn, Option<MoasList>)>,
    plan: NetFaultPlan,
    mrai: u64,
    policies: CommunityPolicyMap,
    seed: u64,
    max_link_delay: u64,
}

/// Runs one network under the tap and returns the recorded observations.
/// Network metrics land in `sink` (no-op with [`NoopSink`]).
fn record_run<S: MetricsSink>(
    graph: &AsGraph,
    spec: &RunSpec,
    attack: Option<FaultEvent>,
    sink: &mut S,
    scope: &str,
) -> Vec<RouteObservation> {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let monitor = TapMonitor::new(spec.policies.clone());
    let mut net = Network::with_monitor_and_jitter(graph, monitor, spec.seed, spec.max_link_delay);
    net.set_mrai(spec.mrai);

    let mut plan = spec.plan.clone();
    if let Some(event) = attack {
        plan.at(T_ATTACK, event);
    }
    net.set_fault_plan(plan).expect("planned casts are valid");

    for (origin, list) in &spec.origins {
        net.originate(*origin, prefix, list.clone());
    }
    net.run().expect("ensemble scenarios converge");
    if S::ENABLED {
        net.export_metrics(&mut Scoped::new(sink, scope));
    }
    std::mem::take(&mut net.monitor_mut().observations)
}

/// Phase 2 (per cell): records the churn-only and churn+attack streams of
/// one trial. The attack is always the §4.1 strongest adversary — a forged
/// announcement whose list includes the attacker.
fn record_cell<S: MetricsSink>(
    graph: &AsGraph,
    config: &EnsembleConfig,
    cell: &CellPlan,
    sink: &mut S,
) -> TrialStreams {
    let prefix: Ipv4Prefix = crate::VICTIM_PREFIX
        .parse()
        .expect("victim prefix constant");
    let (spec, valid_list, attacker) = match cell {
        CellPlan::Chaos { scenario, cast } => {
            let chaos = config.chaos_config(*scenario);
            let scenario = build_scenario(graph, &chaos, cast);
            assert!(
                !scenario.expect_oscillation,
                "ensemble workloads must converge"
            );
            let valid_list: MoasList = [cast.victim, cast.partner].into_iter().collect();
            let mut origins = vec![(cast.victim, scenario.origin_list.clone())];
            if scenario.partner_originates {
                origins.push((cast.partner, scenario.origin_list.clone()));
            }
            (
                RunSpec {
                    origins,
                    plan: scenario.plan,
                    mrai: scenario.mrai,
                    policies: policy_map(graph, &scenario.strippers, config.policy),
                    seed: cast.seed,
                    max_link_delay: config.max_link_delay,
                },
                valid_list,
                cast.attacker,
            )
        }
        CellPlan::LongLived(plan) => {
            let valid_list: MoasList = plan.origins.iter().copied().collect();
            let origin_list = plan.explicit_list.then(|| valid_list.clone());
            let mut toggle_route = Route::new(prefix, AsPath::new());
            if let Some(list) = &origin_list {
                toggle_route.set_moas_list(Some(list));
            }
            // CDN-style handoff: the toggling member leaves the origin set
            // and rejoins every dwell window, four edges in total, so the
            // run stays bounded and converges after the last edge.
            let mut fault_plan = NetFaultPlan::new(sim_engine::rng::derive_seed(plan.seed, 0xFA17));
            fault_plan.every(
                T_CHURN,
                config.dwell_ticks.max(1),
                Some(4),
                FaultEvent::ToggleOrigin {
                    asn: plan.toggler,
                    route: toggle_route,
                },
            );
            (
                RunSpec {
                    origins: plan
                        .origins
                        .iter()
                        .map(|&o| (o, origin_list.clone()))
                        .collect(),
                    plan: fault_plan,
                    mrai: 0,
                    policies: policy_map(graph, &BTreeSet::new(), config.policy),
                    seed: plan.seed,
                    max_link_delay: config.max_link_delay,
                },
                valid_list,
                plan.attacker,
            )
        }
    };

    let churn = record_run(graph, &spec, None, sink, "churn");
    let forged = FalseOriginAttack::new(ListForgery::IncludeSelf).forged_route(
        prefix,
        attacker,
        &valid_list,
    );
    let attack = record_run(
        graph,
        &spec,
        Some(FaultEvent::Announce {
            asn: attacker,
            route: forged,
        }),
        sink,
        "attack",
    );
    if S::ENABLED {
        sink.counter_add("ensemble.trials", 1);
        sink.counter_add("ensemble.observations", (churn.len() + attack.len()) as u64);
    }
    TrialStreams {
        attacker,
        seed: cell.seed(),
        churn,
        attack,
    }
}

/// What one detector produced on one trial's pair of streams.
#[derive(Debug, Clone, Copy)]
struct DetectorTrial {
    churn_alarms: u64,
    latency: Option<u64>,
}

/// Replays a stream through a fresh detector, optionally filtered to the
/// observers a partial deployment actually taps.
fn replay(
    stream: &[RouteObservation],
    detector_index: usize,
    deployment: &Deployment,
) -> Vec<DetectorAlarm> {
    let mut detector = make_detector(detector_index);
    let mut alarms = Vec::new();
    for obs in stream {
        if deployment.is_capable(obs.observer) {
            detector.observe(obs, &mut alarms);
        }
    }
    alarms
}

/// Detection criterion: the first alarm implicating the attacker's origin at
/// or after the injection tick, as latency from injection.
fn detection_latency(alarms: &[DetectorAlarm], attacker: Asn) -> Option<u64> {
    alarms
        .iter()
        .filter(|a| a.origin == Some(attacker) && a.time >= T_ATTACK)
        .map(|a| a.time)
        .min()
        .map(|t| t - T_ATTACK)
}

/// Replays one trial's streams through one detector at one deployment.
fn evaluate_trial(
    streams: &TrialStreams,
    detector_index: usize,
    deployment: &Deployment,
) -> DetectorTrial {
    let churn_alarms = replay(&streams.churn, detector_index, deployment).len() as u64;
    let attack_alarms = replay(&streams.attack, detector_index, deployment);
    DetectorTrial {
        churn_alarms,
        latency: detection_latency(&attack_alarms, streams.attacker),
    }
}

/// Folds per-trial detector outcomes into one report row.
fn aggregate_detector(detector_index: usize, trials: &[DetectorTrial]) -> DetectorReport {
    let noisy = trials.iter().filter(|t| t.churn_alarms > 0).count();
    let false_alarms: Vec<f64> = trials.iter().map(|t| t.churn_alarms as f64).collect();
    let latencies: Vec<f64> = trials
        .iter()
        .filter_map(|t| t.latency)
        .map(|l| l as f64)
        .collect();
    let total = trials.len();
    let missed = total.saturating_sub(latencies.len());
    DetectorReport {
        detector: detector_name(detector_index).to_string(),
        false_alarm_rate: ratio(noisy, total),
        mean_false_alarms: mean(&false_alarms),
        missed_detection_rate: ratio(missed, total),
        mean_detection_latency_ticks: mean(&latencies),
        detected_trials: latencies.len(),
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Phase 3: replays every recorded stream through every detector (serially,
/// in plan order — replay is cheap) and folds the outcomes into the report.
fn aggregate_ensemble(
    graph: &AsGraph,
    config: &EnsembleConfig,
    streams: &[TrialStreams],
) -> EnsembleReport {
    let asns: Vec<Asn> = graph.asns().collect();
    let workloads = EnsembleWorkload::all()
        .into_iter()
        .enumerate()
        .map(|(wx, workload)| {
            let slice = &streams[wx * config.trials..(wx + 1) * config.trials];
            let detectors = (0..DETECTOR_COUNT)
                .map(|dx| {
                    let trials: Vec<DetectorTrial> = slice
                        .iter()
                        .map(|s| evaluate_trial(s, dx, &Deployment::Full))
                        .collect();
                    aggregate_detector(dx, &trials)
                })
                .collect();
            WorkloadReport {
                workload,
                detectors,
            }
        })
        .collect();

    // Deployment sweep over the failover streams (workload index 0): replay
    // costs no extra simulation, so partial deployment is pure filtering.
    let failover = &streams[0..config.trials];
    let deployment = ENSEMBLE_DEPLOYMENT_FRACTIONS
        .iter()
        .map(|&fraction| {
            let detectors = (0..DETECTOR_COUNT)
                .map(|dx| {
                    let trials: Vec<DetectorTrial> = failover
                        .iter()
                        .map(|s| {
                            let deployment = Deployment::sample(
                                &asns,
                                fraction,
                                sim_engine::rng::derive_seed(s.seed, 0xDE91),
                            );
                            evaluate_trial(s, dx, &deployment)
                        })
                        .collect();
                    aggregate_detector(dx, &trials)
                })
                .collect();
            EnsembleDeploymentPoint {
                deployment_fraction: fraction,
                detectors,
            }
        })
        .collect();

    EnsembleReport {
        trials: config.trials,
        seed: config.seed,
        policy: config.policy.to_string(),
        workloads,
        deployment,
    }
}

/// Runs the ensemble serially. Equivalent to [`run_ensemble_jobs`] with
/// `jobs = 1`.
///
/// # Panics
///
/// Panics if the generated topology has no stub with two providers (cannot
/// happen with the default configurations).
#[must_use]
pub fn run_ensemble(config: &EnsembleConfig) -> EnsembleReport {
    run_ensemble_jobs(config, 1)
}

/// Runs the ensemble with trial-level parallelism, bit-identical to the
/// serial path for every `jobs` value: cells are planned sequentially
/// (per-trial seeds derive from `(config.seed, trial index)`), the expensive
/// stream recording fans out into index-addressed slots, and the cheap
/// detector replay and aggregation happen serially in plan order.
///
/// # Panics
///
/// Panics if the generated topology has no stub with two providers (cannot
/// happen with the default configurations).
#[must_use]
pub fn run_ensemble_jobs(config: &EnsembleConfig, jobs: usize) -> EnsembleReport {
    let graph = ensemble_graph(config);
    let cells = plan_cells(&graph, config);
    let streams: Vec<TrialStreams> = minipool::map_indexed(jobs, cells.len(), |i| {
        record_cell(&graph, config, &cells[i], &mut NoopSink)
    });
    aggregate_ensemble(&graph, config, &streams)
}

/// [`run_ensemble_jobs`] with observability: each cell records its two runs'
/// network metrics (prefixes `churn.` / `attack.`) plus `ensemble.*` cell
/// counters into a per-cell [`RecordingSink`]; snapshots merge **in plan
/// order**, and the per-detector verdict counters
/// (`ensemble.<workload>.<detector>.{detections,missed,churn_alarms}`) are
/// appended after the serial replay — so report and snapshot are both
/// bit-identical for every `jobs` value.
///
/// # Panics
///
/// Same conditions as [`run_ensemble_jobs`].
#[must_use]
pub fn run_ensemble_metrics_jobs(
    config: &EnsembleConfig,
    jobs: usize,
) -> (EnsembleReport, MetricsSnapshot) {
    let graph = ensemble_graph(config);
    let cells = plan_cells(&graph, config);
    let results: Vec<(TrialStreams, MetricsSnapshot)> =
        minipool::map_indexed(jobs, cells.len(), |i| {
            let mut sink = RecordingSink::new();
            let streams = record_cell(&graph, config, &cells[i], &mut sink);
            (streams, sink.into_snapshot())
        });
    let mut snapshot = MetricsSnapshot::new();
    for (_, cell_snapshot) in &results {
        snapshot.merge(cell_snapshot);
    }
    let streams: Vec<TrialStreams> = results.into_iter().map(|(s, _)| s).collect();
    let report = aggregate_ensemble(&graph, config, &streams);

    let mut verdicts = RecordingSink::new();
    for workload in &report.workloads {
        for detector in &workload.detectors {
            let key = |metric: &str| {
                format!(
                    "ensemble.{}.{}.{metric}",
                    workload.workload.name(),
                    detector.detector
                )
            };
            verdicts.counter_add(&key("detections"), detector.detected_trials as u64);
            verdicts.counter_add(
                &key("missed"),
                (report.trials - detector.detected_trials) as u64,
            );
            #[allow(clippy::cast_sign_loss)]
            verdicts.counter_add(
                &key("churn_alarms"),
                (detector.mean_false_alarms * report.trials as f64).round() as u64,
            );
        }
    }
    snapshot.merge(&verdicts.into_snapshot());
    (report, snapshot)
}

/// The shared topology every workload plays out on (identical to the chaos
/// driver's graph for the same seed and size parameters).
fn ensemble_graph(config: &EnsembleConfig) -> AsGraph {
    chaos_graph(&config.chaos_config(ChaosScenario::Failover))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> EnsembleConfig {
        EnsembleConfig::quick()
    }

    #[test]
    fn workload_names_round_trip() {
        for workload in EnsembleWorkload::all() {
            let parsed: EnsembleWorkload = workload.name().parse().unwrap();
            assert_eq!(parsed, workload);
        }
        let err = "tsunami".parse::<EnsembleWorkload>().unwrap_err();
        assert!(err.to_string().contains("tsunami"));
        assert!(err.to_string().contains("long-lived-moas"));
    }

    #[test]
    fn report_covers_every_workload_and_detector() {
        let report = run_ensemble(&quick());
        assert_eq!(report.workloads.len(), 4);
        for workload in &report.workloads {
            assert_eq!(workload.detectors.len(), DETECTOR_COUNT);
            for (dx, detector) in workload.detectors.iter().enumerate() {
                assert_eq!(detector.detector, detector_name(dx));
            }
        }
        assert_eq!(report.deployment.len(), ENSEMBLE_DEPLOYMENT_FRACTIONS.len());
    }

    #[test]
    fn moas_list_detects_what_flap_damping_misses() {
        let report = run_ensemble(&quick());
        let failover = &report.workloads[0];
        let moas = &failover.detectors[0];
        let flap = &failover.detectors[1];
        // The paper's check sees the forged announcement immediately.
        assert!(moas.detected_trials > 0, "moas-list must detect attacks");
        // A one-shot hijack announcement never accumulates flap penalty:
        // route-history detectors are structurally blind to it.
        assert!(
            flap.detected_trials <= moas.detected_trials,
            "flap damping cannot beat the consistency check here"
        );
        assert!(
            flap.missed_detection_rate > 0.5,
            "one-shot hijacks should mostly evade flap damping, got {}",
            flap.missed_detection_rate
        );
    }

    #[test]
    fn sibling_pairs_raise_moas_false_alarms() {
        let mut config = quick();
        config.sibling_fraction = 1.0;
        let report = run_ensemble(&config);
        let long_lived = &report.workloads[3];
        assert_eq!(long_lived.workload, EnsembleWorkload::LongLivedMoas);
        let moas = &long_lived.detectors[0];
        // Sibling registrations announce without published lists: the §4.2
        // check must cry wolf on legitimate long-lived MOAS.
        assert!(
            moas.false_alarm_rate > 0.0,
            "implicit sibling MOAS must trip the consistency check"
        );
    }

    #[test]
    fn anycast_groups_with_shared_lists_stay_quiet() {
        let mut config = quick();
        config.sibling_fraction = 0.0; // every trial uses the anycast group
        let report = run_ensemble(&config);
        let moas = &report.workloads[3].detectors[0];
        assert_eq!(
            moas.mean_false_alarms, 0.0,
            "a shared explicit list sanctions every member origin"
        );
        assert!(moas.detected_trials > 0, "the attack is still caught");
    }

    #[test]
    fn zero_deployment_sees_nothing() {
        let report = run_ensemble(&quick());
        let nobody = &report.deployment[0];
        assert_eq!(nobody.deployment_fraction, 0.0);
        for detector in &nobody.detectors {
            assert_eq!(detector.detected_trials, 0);
            assert_eq!(detector.mean_false_alarms, 0.0);
            assert_eq!(detector.missed_detection_rate, 1.0);
        }
        let everyone = &report.deployment[2];
        assert_eq!(everyone.deployment_fraction, 1.0);
        // Full-deployment sweep point equals the failover workload row.
        assert_eq!(everyone.detectors, report.workloads[0].detectors);
    }

    #[test]
    fn strip_all_policy_blinds_the_communities_detector() {
        let mut config = quick();
        config.policy = CommunityPolicy::StripAll;
        let stripped = run_ensemble(&config);
        let baseline = run_ensemble(&quick());
        let communities_stripped = &stripped.workloads[0].detectors[2];
        let communities_baseline = &baseline.workloads[0].detectors[2];
        assert!(
            communities_stripped.detected_trials <= communities_baseline.detected_trials,
            "stripping every community cannot help a community detector"
        );
    }

    #[test]
    fn ensemble_runs_are_deterministic() {
        let config = quick();
        assert_eq!(run_ensemble(&config), run_ensemble(&config));
    }

    #[test]
    fn parallel_ensemble_is_bit_identical_to_serial() {
        let config = quick();
        let serial = run_ensemble(&config);
        for jobs in [2, 4] {
            assert_eq!(run_ensemble_jobs(&config, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn metrics_snapshot_is_jobs_invariant_and_counts_verdicts() {
        let config = quick();
        let (report1, snap1) = run_ensemble_metrics_jobs(&config, 1);
        let (report2, snap2) = run_ensemble_metrics_jobs(&config, 2);
        assert_eq!(report1, report2);
        assert_eq!(snap1, snap2);
        assert_eq!(report1, run_ensemble(&config));
        let rendered = crate::metrics::render_metrics_summary(&snap1);
        assert!(rendered.contains("ensemble.failover.moas-list.detections"));
    }

    #[test]
    fn report_json_round_trips() {
        let report = run_ensemble(&quick());
        let back: EnsembleReport = crate::json::from_str(&report.to_json()).unwrap();
        assert_eq!(back, report);
    }
}
