//! Small statistics helpers for experiment aggregation.

/// Arithmetic mean (0 for an empty sample).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Sample standard deviation (0 for samples of length < 2).
#[must_use]
pub fn stddev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0]), 2.0);
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }

    #[test]
    fn stddev_basic() {
        assert_eq!(stddev(&[]), 0.0);
        assert_eq!(stddev(&[5.0]), 0.0);
        // Sample stddev of {2, 4}: sqrt(((2-3)^2 + (4-3)^2) / 1) = sqrt(2).
        assert!((stddev(&[2.0, 4.0]) - 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn stddev_of_constant_sample_is_zero() {
        assert_eq!(stddev(&[3.0, 3.0, 3.0]), 0.0);
    }
}
