//! Attacker-fraction sweeps with the paper's 15-run averaging protocol.

use std::collections::BTreeSet;

use as_topology::AsGraph;
use bgp_types::Asn;
use moas_core::{Deployment, ListForgery, UnresolvedPolicy};

use minimetrics::{MetricsSnapshot, RecordingSink};

use crate::json::{self, FromJson, Json, JsonError, ToJson};
use crate::stats::{mean, stddev};
use crate::trial::{
    run_trial, run_trial_metrics, run_trial_sharded, run_trial_sharded_metrics, TrialConfig,
    TrialOutcome,
};

/// Configuration of one sweep (one curve of a figure).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Number of legitimate origin ASes (the paper uses 1 and 2; it does not
    /// simulate more because 96.14% of real MOAS cases involve two ASes).
    pub origin_count: usize,
    /// Fraction of ASes that deploy MOAS checking: 0.0 = Normal BGP,
    /// 1.0 = Full MOAS Detection, 0.5 = the §5.4 partial deployment.
    pub deployment_fraction: f64,
    /// Attacker list-forgery strategy.
    pub forgery: ListForgery,
    /// X axis: attacker counts as fractions of the topology size. `0.0`
    /// runs a no-attack baseline point (zero attackers); positive fractions
    /// round to whole ASes with a floor of one — see [`attacker_count_for`].
    pub attacker_fractions: Vec<f64>,
    /// "we first select 3 sets of origin ASes from the stub ASes" (§5.2).
    pub origin_set_count: usize,
    /// "Then we select 5 sets of attackers for each set of origin ASes."
    pub attacker_set_count: usize,
    /// Maximum per-link delay jitter.
    pub max_link_delay: u64,
    /// Master seed; all trial seeds derive from it.
    pub seed: u64,
}

// ListForgery lives in moas-core without JSON support; encode it here as a
// variant-name string.
impl ToJson for ListForgery {
    fn to_json_value(&self) -> Json {
        Json::Str(
            match self {
                ListForgery::None => "None",
                ListForgery::IncludeSelf => "IncludeSelf",
                ListForgery::CopyValid => "CopyValid",
            }
            .to_string(),
        )
    }
}

impl FromJson for ListForgery {
    fn from_json_value(value: &Json) -> Result<Self, JsonError> {
        match value {
            Json::Str(s) if s == "None" => Ok(ListForgery::None),
            Json::Str(s) if s == "IncludeSelf" => Ok(ListForgery::IncludeSelf),
            Json::Str(s) if s == "CopyValid" => Ok(ListForgery::CopyValid),
            _ => Err(JsonError {
                message: "expected a ListForgery variant name".to_string(),
                offset: 0,
            }),
        }
    }
}

json::impl_json_struct!(SweepConfig {
    origin_count,
    deployment_fraction,
    forgery,
    attacker_fractions,
    origin_set_count,
    attacker_set_count,
    max_link_delay,
    seed,
});

impl SweepConfig {
    /// The paper's protocol: 15 runs per point (3 origin sets × 5 attacker
    /// sets), attacker fractions up to 40%, one origin AS, full deployment.
    #[must_use]
    pub fn paper() -> Self {
        SweepConfig {
            origin_count: 1,
            deployment_fraction: 1.0,
            forgery: ListForgery::IncludeSelf,
            attacker_fractions: vec![0.02, 0.04, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.35, 0.40],
            origin_set_count: 3,
            attacker_set_count: 5,
            max_link_delay: 4,
            seed: 0x5EED,
        }
    }

    /// A reduced protocol (2×2 runs, 3 fractions) for tests and doc examples.
    #[must_use]
    pub fn quick() -> Self {
        SweepConfig {
            origin_set_count: 2,
            attacker_set_count: 2,
            attacker_fractions: vec![0.05, 0.15, 0.30],
            ..SweepConfig::paper()
        }
    }

    /// Sets the origin count (builder style).
    #[must_use]
    pub fn origin_count(mut self, n: usize) -> Self {
        self.origin_count = n;
        self
    }

    /// Sets the deployment fraction (builder style).
    #[must_use]
    pub fn deployment_fraction(mut self, fraction: f64) -> Self {
        self.deployment_fraction = fraction;
        self
    }

    /// Sets the forgery strategy (builder style).
    #[must_use]
    pub fn forgery(mut self, forgery: ListForgery) -> Self {
        self.forgery = forgery;
        self
    }

    /// Total runs per data point.
    #[must_use]
    pub fn runs_per_point(&self) -> usize {
        self.origin_set_count * self.attacker_set_count
    }
}

/// Number of attacker ASes a fraction maps to on an `n`-AS topology.
///
/// `0.0` (and anything non-positive) means **zero attackers** — a clean
/// no-attack baseline point. Any positive fraction rounds to whole ASes
/// with a floor of one, so sub-resolution fractions (e.g. `0.01` of 46
/// ASes) still inject an attacker rather than silently measuring nothing.
/// Used by both the trial planner and the point aggregator, which must
/// agree on the count for every fraction.
#[must_use]
pub fn attacker_count_for(n: usize, fraction: f64) -> usize {
    if fraction <= 0.0 {
        0
    } else {
        (((n as f64) * fraction).round() as usize).max(1)
    }
}

/// One averaged data point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The attacker fraction this point was requested at (the sweep's X
    /// coordinate; `attacker_count` is this fraction rounded to whole ASes).
    pub requested_fraction: f64,
    /// Number of attacker ASes injected.
    pub attacker_count: usize,
    /// Attackers as a percentage of all ASes (the X axis of Figures 9-11).
    pub attacker_pct: f64,
    /// Mean percentage of remaining ASes adopting a false route (Y axis).
    pub mean_adoption_pct: f64,
    /// Sample standard deviation of the adoption percentage.
    pub stddev_adoption_pct: f64,
    /// Mean alarms per run.
    pub mean_alarms: f64,
    /// Mean verifier queries per run.
    pub mean_queries: f64,
    /// Mean BGP messages per run.
    pub mean_messages: f64,
}

/// Runs a full sweep on `graph`: for every attacker fraction, the 15-run
/// protocol of §5.2, returning one averaged point per fraction.
///
/// Origins are drawn from stub ASes and attackers from all remaining ASes,
/// exactly as §5.1 prescribes; every random draw derives deterministically
/// from `config.seed`.
///
/// Equivalent to [`run_sweep_jobs`] with `jobs = 1` — the sequential
/// reference path.
#[must_use]
pub fn run_sweep(graph: &AsGraph, config: &SweepConfig) -> Vec<SweepPoint> {
    run_sweep_jobs(graph, config, 1)
}

/// [`run_sweep`] with trial-level parallelism: independent trials fan out
/// across up to `jobs` worker threads.
///
/// The sweep is split into three phases so that the result is bit-identical
/// for every `jobs` value:
///
/// 1. **Plan.** Every trial's origins, attackers, deployment and seed are
///    drawn sequentially, in exactly the order the historical single-threaded
///    loop drew them — each draw seeds its own RNG from `config.seed` and the
///    trial's `(fraction, origin set, attacker set)` coordinates, so planning
///    consumes no shared RNG state.
/// 2. **Run.** [`minipool::map_indexed`] executes the trials; slot `i` always
///    holds trial `i`'s outcome regardless of which worker ran it or when it
///    finished.
/// 3. **Aggregate.** Outcomes are folded per fraction in the original
///    `(fraction, origin set, attacker set)` order, so every floating-point
///    sum sees its terms in the same sequence as the serial path.
#[must_use]
pub fn run_sweep_jobs(graph: &AsGraph, config: &SweepConfig, jobs: usize) -> Vec<SweepPoint> {
    // Phase 1: plan every trial.
    let trials = plan_trials(graph, config);

    // Phase 2: run the trials, index-addressed.
    let outcomes: Vec<TrialOutcome> =
        minipool::map_indexed(jobs, trials.len(), |i| run_trial(graph, &trials[i]));

    // Phase 3: aggregate per fraction in planning order.
    aggregate_points(graph.len(), config, &outcomes)
}

/// [`run_sweep_jobs`] with observability: every trial additionally records
/// its network metrics into a per-trial [`RecordingSink`], and the per-trial
/// snapshots are merged **in plan order** after all trials finish — so both
/// the points and the returned [`MetricsSnapshot`] are bit-identical for
/// every `jobs` value.
#[must_use]
pub fn run_sweep_metrics_jobs(
    graph: &AsGraph,
    config: &SweepConfig,
    jobs: usize,
) -> (Vec<SweepPoint>, MetricsSnapshot) {
    let trials = plan_trials(graph, config);

    let results: Vec<(TrialOutcome, MetricsSnapshot)> =
        minipool::map_indexed(jobs, trials.len(), |i| {
            let mut sink = RecordingSink::new();
            let outcome = run_trial_metrics(graph, &trials[i], &mut sink)
                .expect("experiment networks always converge");
            (outcome, sink.into_snapshot())
        });

    let outcomes: Vec<TrialOutcome> = results.iter().map(|(o, _)| *o).collect();
    let mut snapshot = MetricsSnapshot::new();
    for (_, trial_snapshot) in &results {
        snapshot.merge(trial_snapshot);
    }
    (aggregate_points(graph.len(), config, &outcomes), snapshot)
}

/// [`run_sweep`] through the deterministic sharded engine: trials run one at
/// a time, but each trial's AS graph is partitioned into `shards` engines
/// driven in lockstep on up to `jobs` worker threads (intra-trial
/// parallelism, where [`run_sweep_jobs`] is inter-trial).
///
/// Planning and aggregation are shared with the classic path, so the points
/// are bit-identical for every `(shards, jobs)` pair — pinned by the
/// `shard_determinism` differential test.
///
/// # Panics
///
/// Panics if the topology has too few stubs for the configured origin count,
/// or if a trial fails to converge.
#[must_use]
pub fn run_sweep_sharded(
    graph: &AsGraph,
    config: &SweepConfig,
    shards: usize,
    jobs: usize,
) -> Vec<SweepPoint> {
    let trials = plan_trials(graph, config);
    let outcomes: Vec<TrialOutcome> = trials
        .iter()
        .map(|trial| {
            run_trial_sharded(graph, trial, shards, jobs)
                .expect("experiment networks always converge")
        })
        .collect();
    aggregate_points(graph.len(), config, &outcomes)
}

/// [`run_sweep_sharded`] with observability: per-trial [`RecordingSink`]
/// snapshots merged in plan order, exactly as [`run_sweep_metrics_jobs`]
/// does. The snapshot only contains the shard-count-invariant metrics subset
/// the sharded engine exports.
///
/// # Panics
///
/// Panics if the topology has too few stubs for the configured origin count,
/// or if a trial fails to converge.
#[must_use]
pub fn run_sweep_sharded_metrics(
    graph: &AsGraph,
    config: &SweepConfig,
    shards: usize,
    jobs: usize,
) -> (Vec<SweepPoint>, MetricsSnapshot) {
    let trials = plan_trials(graph, config);
    let mut outcomes: Vec<TrialOutcome> = Vec::with_capacity(trials.len());
    let mut snapshot = MetricsSnapshot::new();
    for trial in &trials {
        let mut sink = RecordingSink::new();
        let outcome = run_trial_sharded_metrics(graph, trial, shards, jobs, &mut sink)
            .expect("experiment networks always converge");
        outcomes.push(outcome);
        snapshot.merge(&sink.into_snapshot());
    }
    (aggregate_points(graph.len(), config, &outcomes), snapshot)
}

/// Phase 1 of a sweep: draws every trial's origins, attackers, deployment
/// and seed sequentially, in exactly the order the historical
/// single-threaded loop drew them. Each draw seeds its own RNG from
/// `config.seed` and the trial's `(fraction, origin set, attacker set)`
/// coordinates, so planning consumes no shared RNG state.
fn plan_trials(graph: &AsGraph, config: &SweepConfig) -> Vec<TrialConfig> {
    let stubs = graph.stub_asns();
    let n = graph.len();
    assert!(
        stubs.len() >= config.origin_count,
        "topology has too few stubs for {} origins",
        config.origin_count
    );

    let asns: Vec<Asn> = graph.asns().collect();
    let runs_per_point = config.runs_per_point();
    let mut trials: Vec<TrialConfig> =
        Vec::with_capacity(config.attacker_fractions.len() * runs_per_point);
    // One candidate buffer for the whole sweep, refilled per origin set.
    let mut candidates: Vec<Asn> = Vec::with_capacity(n);
    for (fx, &fraction) in config.attacker_fractions.iter().enumerate() {
        let attacker_count = attacker_count_for(n, fraction);

        for oi in 0..config.origin_set_count {
            let origin_seed = sim_engine::rng::derive_seed(config.seed, (fx * 100 + oi) as u64);
            let mut rng = sim_engine::rng::from_seed(origin_seed);
            let origins = sim_engine::rng::sample_distinct(&mut rng, &stubs, config.origin_count);
            let origin_set: BTreeSet<Asn> = origins.iter().copied().collect();
            candidates.clear();
            candidates.extend(asns.iter().copied().filter(|a| !origin_set.contains(a)));

            for ai in 0..config.attacker_set_count {
                let trial_seed = sim_engine::rng::derive_seed(
                    config.seed,
                    ((fx * 100 + oi) * 100 + ai + 7) as u64,
                );
                let mut rng = sim_engine::rng::from_seed(trial_seed);
                let attackers =
                    sim_engine::rng::sample_distinct(&mut rng, &candidates, attacker_count);
                let deployment =
                    Deployment::sample(&asns, config.deployment_fraction, trial_seed ^ 0xDE9107);

                trials.push(TrialConfig {
                    forgery: config.forgery,
                    strippers: BTreeSet::new(),
                    unresolved: UnresolvedPolicy::Accept,
                    max_link_delay: config.max_link_delay,
                    seed: trial_seed,
                    ..TrialConfig::new(origins.clone(), attackers, deployment)
                });
            }
        }
    }
    trials
}

/// Phase 3 of a sweep: folds index-addressed outcomes into one point per
/// fraction, every floating-point sum seeing its terms in plan order.
fn aggregate_points(n: usize, config: &SweepConfig, outcomes: &[TrialOutcome]) -> Vec<SweepPoint> {
    let runs_per_point = config.runs_per_point();
    let mut points = Vec::with_capacity(config.attacker_fractions.len());
    for (fx, &fraction) in config.attacker_fractions.iter().enumerate() {
        let attacker_count = attacker_count_for(n, fraction);
        let runs = &outcomes[fx * runs_per_point..(fx + 1) * runs_per_point];

        let mut adoption = Vec::with_capacity(runs_per_point);
        let mut alarms = Vec::with_capacity(runs_per_point);
        let mut queries = Vec::with_capacity(runs_per_point);
        let mut messages = Vec::with_capacity(runs_per_point);
        for outcome in runs {
            adoption.push(100.0 * outcome.adoption_fraction());
            alarms.push(outcome.alarms as f64);
            queries.push(outcome.verifier_queries as f64);
            messages.push(outcome.messages as f64);
        }

        points.push(SweepPoint {
            requested_fraction: fraction,
            attacker_count,
            attacker_pct: 100.0 * attacker_count as f64 / n as f64,
            mean_adoption_pct: mean(&adoption),
            stddev_adoption_pct: stddev(&adoption),
            mean_alarms: mean(&alarms),
            mean_queries: mean(&queries),
            mean_messages: mean(&messages),
        });
    }
    points
}

json::impl_json_struct!(SweepPoint {
    requested_fraction,
    attacker_count,
    attacker_pct,
    mean_adoption_pct,
    stddev_adoption_pct,
    mean_alarms,
    mean_queries,
    mean_messages,
});

impl SweepConfig {
    /// Serializes to pretty JSON (for EXPERIMENTS.md provenance).
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::paper::PaperTopology;

    #[test]
    fn paper_protocol_is_15_runs() {
        assert_eq!(SweepConfig::paper().runs_per_point(), 15);
    }

    #[test]
    fn zero_fraction_means_zero_attackers() {
        assert_eq!(attacker_count_for(46, 0.0), 0);
        assert_eq!(attacker_count_for(46, -1.0), 0);
        // Positive fractions keep the floor of one attacker.
        assert_eq!(attacker_count_for(46, 0.001), 1);
        assert_eq!(attacker_count_for(46, 0.5), 23);

        let graph = PaperTopology::As25.graph();
        let mut config = SweepConfig::quick();
        config.attacker_fractions = vec![0.0, 0.15];
        let points = run_sweep(graph, &config);
        assert_eq!(points[0].attacker_count, 0, "0.0 is a no-attack baseline");
        assert_eq!(points[0].attacker_pct, 0.0);
        assert_eq!(points[0].mean_adoption_pct, 0.0);
        assert_eq!(points[0].mean_alarms, 0.0);
        assert!(points[1].attacker_count >= 1);
    }

    #[test]
    fn sweep_has_one_point_per_fraction() {
        let graph = PaperTopology::As25.graph();
        let config = SweepConfig::quick();
        let points = run_sweep(graph, &config);
        assert_eq!(points.len(), config.attacker_fractions.len());
        for p in &points {
            assert!(p.attacker_count >= 1);
            assert!(p.mean_adoption_pct >= 0.0);
            assert!(p.mean_adoption_pct <= 100.0);
        }
    }

    #[test]
    fn sweeps_are_deterministic() {
        let graph = PaperTopology::As25.graph();
        let config = SweepConfig::quick();
        assert_eq!(run_sweep(graph, &config), run_sweep(graph, &config));
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let graph = PaperTopology::As25.graph();
        let config = SweepConfig::quick();
        let serial = run_sweep(graph, &config);
        for jobs in [1, 2, 4] {
            assert_eq!(run_sweep_jobs(graph, &config, jobs), serial, "jobs={jobs}");
        }
    }

    #[test]
    fn metrics_sweep_matches_plain_and_is_jobs_invariant() {
        let graph = PaperTopology::As25.graph();
        let config = SweepConfig::quick();
        let plain = run_sweep_jobs(graph, &config, 1);
        let (points1, snap1) = run_sweep_metrics_jobs(graph, &config, 1);
        let (points4, snap4) = run_sweep_metrics_jobs(graph, &config, 4);
        assert_eq!(points1, plain, "recording sink must not change results");
        assert_eq!(points4, plain);
        assert_eq!(snap1, snap4, "snapshot must not depend on jobs");
        assert_eq!(
            snap1.counters["trial.count"],
            (config.attacker_fractions.len() * config.runs_per_point()) as u64
        );
        assert!(snap1.histograms["trial.convergence_ticks.origin"].count() > 0);
    }

    #[test]
    fn more_attackers_fool_more_ases_under_normal_bgp() {
        let graph = PaperTopology::As46.graph();
        let mut config = SweepConfig::quick().deployment_fraction(0.0);
        config.attacker_fractions = vec![0.04, 0.40];
        let points = run_sweep(graph, &config);
        assert!(
            points[1].mean_adoption_pct > points[0].mean_adoption_pct,
            "{} !> {}",
            points[1].mean_adoption_pct,
            points[0].mean_adoption_pct
        );
    }

    #[test]
    fn full_deployment_raises_alarms_and_queries() {
        let graph = PaperTopology::As25.graph();
        let mut config = SweepConfig::quick();
        config.attacker_fractions = vec![0.2];
        let points = run_sweep(graph, &config);
        assert!(points[0].mean_alarms > 0.0);
        assert!(points[0].mean_queries > 0.0);
    }

    #[test]
    fn config_json_round_trips() {
        let config = SweepConfig::paper();
        let json = config.to_json();
        let back: SweepConfig = crate::json::from_str(&json).unwrap();
        assert_eq!(back.origin_count, config.origin_count);
        assert_eq!(back.attacker_fractions, config.attacker_fractions);
    }

    #[test]
    #[should_panic(expected = "too few stubs")]
    fn sweep_panics_without_enough_stubs() {
        let mut g = AsGraph::new();
        g.add_as(Asn(1), as_topology::AsRole::Transit);
        g.add_as(Asn(2), as_topology::AsRole::Transit);
        g.add_link(Asn(1), Asn(2));
        let _ = run_sweep(&g, &SweepConfig::quick());
    }
}
