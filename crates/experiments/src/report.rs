//! Figure reports: plain-text tables and JSON.

use std::fmt;

use crate::json;
use crate::sweep::SweepPoint;

/// One curve of a figure, e.g. "46-AS Normal BGP".
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesReport {
    /// Human-readable curve label, matching the paper's legends.
    pub label: String,
    /// The averaged data points.
    pub points: Vec<SweepPoint>,
}

json::impl_json_struct!(SeriesReport { label, points });

/// A reproduced figure: several curves over the same X axis.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// Identifier, e.g. `"fig9a"`.
    pub id: String,
    /// Title, e.g. the paper's caption.
    pub title: String,
    /// The curves.
    pub series: Vec<SeriesReport>,
}

json::impl_json_struct!(FigureReport { id, title, series });

impl FigureReport {
    /// Creates a figure report.
    #[must_use]
    pub fn new(id: impl Into<String>, title: impl Into<String>, series: Vec<SeriesReport>) -> Self {
        FigureReport {
            id: id.into(),
            title: title.into(),
            series,
        }
    }

    /// Renders the figure as an aligned text table: one row per attacker
    /// fraction, one adoption column per curve. This is the "same
    /// rows/series the paper reports" output used by the benches and
    /// EXPERIMENTS.md.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("## {} — {}\n", self.id, self.title));
        out.push_str(&format!("{:>12}", "attackers%"));
        for s in &self.series {
            out.push_str(&format!(" | {:>28}", s.label));
        }
        out.push('\n');

        let rows = self
            .series
            .iter()
            .map(|s| s.points.len())
            .max()
            .unwrap_or(0);
        for row in 0..rows {
            let x = self
                .series
                .iter()
                .find_map(|s| s.points.get(row))
                .map_or(0.0, |p| 100.0 * p.requested_fraction);
            out.push_str(&format!("{x:>11.1}%"));
            for s in &self.series {
                match s.points.get(row) {
                    Some(p) => out.push_str(&format!(
                        " | {:>17.2}% (sd {:>5.2})",
                        p.mean_adoption_pct, p.stddev_adoption_pct
                    )),
                    None => out.push_str(&format!(" | {:>28}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the full figure to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        json::to_string_pretty(self)
    }
}

impl fmt::Display for FigureReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(pct: f64, adoption: f64) -> SweepPoint {
        SweepPoint {
            requested_fraction: pct / 100.0,
            attacker_count: 1,
            attacker_pct: pct,
            mean_adoption_pct: adoption,
            stddev_adoption_pct: 0.5,
            mean_alarms: 1.0,
            mean_queries: 1.0,
            mean_messages: 100.0,
        }
    }

    fn figure() -> FigureReport {
        FigureReport::new(
            "fig9a",
            "Spoof-resilience, 1 origin AS",
            vec![
                SeriesReport {
                    label: "Normal BGP".into(),
                    points: vec![point(4.0, 36.0), point(30.0, 51.0)],
                },
                SeriesReport {
                    label: "Full MOAS Detection".into(),
                    points: vec![point(4.0, 0.15)],
                },
            ],
        )
    }

    #[test]
    fn table_contains_labels_and_rows() {
        let table = figure().render_table();
        assert!(table.contains("fig9a"));
        assert!(table.contains("Normal BGP"));
        assert!(table.contains("Full MOAS Detection"));
        assert!(table.contains("36.00%"));
        // Row 2 has no point for the second series: dash.
        assert!(table.contains('-'));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn json_round_trips() {
        let fig = figure();
        let back: FigureReport = crate::json::from_str(&fig.to_json()).unwrap();
        assert_eq!(back, fig);
    }

    #[test]
    fn display_matches_table() {
        let fig = figure();
        assert_eq!(fig.to_string(), fig.render_table());
    }
}
