//! AS-level topology model for the MOAS reproduction.
//!
//! The paper derives its simulation topologies from real BGP tables collected
//! at the Oregon Route Views server (§5.1): it infers BGP peering relations
//! from AS-path adjacency, classifies ASes as *transit* or *stub*, randomly
//! selects a fraction of the stub ASes together with their ISP peers,
//! iteratively prunes transit ASes left with at most one peer, and verifies
//! the result is connected.
//!
//! We cannot ship the 1997-2001 Route Views archives, so this crate supplies
//! the closest synthetic equivalent (per the reproduction's substitution
//! rule): an Internet-like ground-truth generator ([`InternetModel`]) and a
//! Route Views-style table synthesizer ([`RouteTable::synthesize`]) feeding
//! the *same* derivation pipeline the paper used ([`fn@derive`]). The pipeline
//! code is exactly the paper's procedure and would run unchanged on a real
//! table dump.
//!
//! # Example
//!
//! ```
//! use as_topology::{InternetModel, RouteTable, derive, infer_graph};
//!
//! // Ground truth: a synthetic Internet with a transit core and stub edges.
//! let truth = InternetModel::new().transit_count(20).stub_count(80).build(42);
//!
//! // What Route Views would see: tables from a few vantage points.
//! let table = RouteTable::synthesize(&truth, &[5], 42);
//!
//! // The paper's §5.1 pipeline: infer peering, sample stubs, prune, check.
//! let inferred = infer_graph(table.entries());
//! let topology = derive(&inferred, 0.3, 7).unwrap();
//! assert!(topology.is_connected());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod derive;
mod gen;
mod graph;
mod infer;
mod metrics;
mod orgs;
pub mod paper;
mod partition;
mod relationships;
mod table;

pub use derive::{derive, derive_strict, DeriveError};
pub use gen::{InternetModel, ScaleFreeModel};
pub use graph::{AsGraph, AsRole};
pub use infer::infer_graph;
pub use metrics::GraphMetrics;
pub use orgs::OrgAnnotations;
pub use partition::Partition;
pub use relationships::{infer_relationships, AsRelationships, LinkKind, Relationship};
pub use table::{prefix_for_asn, RouteTable, RouteTableEntry};
