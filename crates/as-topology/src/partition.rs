//! Balanced edge-cut graph partitioning for the sharded simulation engine.
//!
//! The distributed-BGP-simulation feasibility study (Coudert et al., see
//! PAPERS.md) observes that the two quantities governing parallel simulation
//! efficiency are the **cut size** (cross-partition links, each of which
//! turns an intra-shard event into a cross-shard message) and **load
//! balance** (the largest partition bounds the critical path). This module
//! implements the classic one-pass greedy that trades the two directly:
//! nodes are placed in descending degree order, each onto the shard holding
//! most of its already-placed neighbors, subject to a hard balance cap.
//!
//! Everything here is deterministic — node order, tie-breaks, and shard
//! choice depend only on the graph — so a partition is a pure function of
//! `(graph, shard_count)` and sharded simulation results are reproducible.

use std::cmp::Reverse;

use bgp_types::Asn;

use crate::AsGraph;

/// A deterministic assignment of every AS to exactly one shard.
///
/// # Example
///
/// ```
/// use as_topology::{InternetModel, Partition};
///
/// let g = InternetModel::new().transit_count(10).stub_count(40).build(1);
/// let p = Partition::new(&g, 4);
/// assert_eq!(p.shard_count(), 4);
/// assert_eq!(p.shard_sizes().iter().sum::<usize>(), g.len());
/// // Balance cap: no shard exceeds ceil(n / k).
/// assert!(p.shard_sizes().iter().all(|&s| s <= g.len().div_ceil(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Sorted ASNs; position = dense node index (same interning order as
    /// the engine's).
    asn_index: Vec<Asn>,
    /// Per dense node index: the shard holding that AS.
    assignment: Vec<u32>,
    shard_count: usize,
    /// Undirected links whose endpoints landed on different shards.
    cut_links: usize,
}

impl Partition {
    /// Partitions `graph` into `shards` balanced parts (values below 1 are
    /// clamped to 1).
    ///
    /// Greedy placement: nodes in descending degree order (ties toward the
    /// lower ASN) go to the shard already holding most of their neighbors,
    /// among shards still under the cap `ceil(n / shards)`; score ties break
    /// toward the lowest shard id. High-degree hubs therefore seed the
    /// shards, and the long tail of stubs sticks to whichever shard owns
    /// their provider — exactly the locality a customer-provider hierarchy
    /// offers.
    #[must_use]
    pub fn new(graph: &AsGraph, shards: usize) -> Self {
        let shards = shards.max(1);
        let asn_index: Vec<Asn> = graph.asns().collect();
        let n = asn_index.len();

        // Flatten the adjacency once (CSR): the greedy pass then only does
        // array walks, which matters at 70k nodes.
        let mut start = Vec::with_capacity(n + 1);
        start.push(0usize);
        let mut adj: Vec<u32> = Vec::new();
        for &asn in &asn_index {
            for peer in graph.neighbors(asn) {
                let j = asn_index
                    .binary_search(&peer)
                    .expect("graph links only name graph ASes");
                adj.push(j as u32);
            }
            start.push(adj.len());
        }

        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| (Reverse(start[i + 1] - start[i]), i));

        let cap = if n == 0 { 1 } else { n.div_ceil(shards) };
        let mut assignment = vec![u32::MAX; n];
        let mut sizes = vec![0usize; shards];
        let mut score = vec![0usize; shards];
        for &i in &order {
            score.fill(0);
            for &j in &adj[start[i]..start[i + 1]] {
                let s = assignment[j as usize];
                if s != u32::MAX {
                    score[s as usize] += 1;
                }
            }
            let mut chosen = None;
            for s in 0..shards {
                if sizes[s] >= cap {
                    continue;
                }
                match chosen {
                    None => chosen = Some(s),
                    Some(best) if score[s] > score[best] => chosen = Some(s),
                    Some(_) => {}
                }
            }
            let s = chosen.expect("cap * shards >= n, so a shard has room");
            assignment[i] = s as u32;
            sizes[s] += 1;
        }

        let mut cut_links = 0usize;
        for i in 0..n {
            for &j in &adj[start[i]..start[i + 1]] {
                if (j as usize) > i && assignment[i] != assignment[j as usize] {
                    cut_links += 1;
                }
            }
        }

        Partition {
            asn_index,
            assignment,
            shard_count: shards,
            cut_links,
        }
    }

    /// Number of shards (always ≥ 1).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shard_count
    }

    /// The shard holding `asn`, or `None` if the AS is not in the graph.
    #[must_use]
    pub fn shard_of(&self, asn: Asn) -> Option<usize> {
        self.asn_index
            .binary_search(&asn)
            .ok()
            .map(|i| self.assignment[i] as usize)
    }

    /// Per dense node index (ascending ASN order): the assigned shard.
    #[must_use]
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The ASes of one shard, ascending.
    #[must_use]
    pub fn members(&self, shard: usize) -> Vec<Asn> {
        self.asn_index
            .iter()
            .zip(&self.assignment)
            .filter(|&(_, &s)| s as usize == shard)
            .map(|(&asn, _)| asn)
            .collect()
    }

    /// Number of ASes per shard.
    #[must_use]
    pub fn shard_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.shard_count];
        for &s in &self.assignment {
            sizes[s as usize] += 1;
        }
        sizes
    }

    /// Undirected links whose endpoints sit on different shards — each one
    /// costs a cross-shard message exchange per update that traverses it.
    #[must_use]
    pub fn cut_links(&self) -> usize {
        self.cut_links
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsRole, InternetModel};

    fn sample() -> AsGraph {
        InternetModel::new()
            .transit_count(12)
            .stub_count(60)
            .build(3)
    }

    #[test]
    fn every_as_lands_in_exactly_one_shard() {
        let g = sample();
        let p = Partition::new(&g, 4);
        let mut seen = 0;
        for shard in 0..p.shard_count() {
            seen += p.members(shard).len();
        }
        assert_eq!(seen, g.len());
        for asn in g.asns() {
            let s = p.shard_of(asn).unwrap();
            assert!(p.members(s).contains(&asn));
        }
    }

    #[test]
    fn balance_cap_holds() {
        let g = sample();
        for shards in [1, 2, 3, 4, 7] {
            let p = Partition::new(&g, shards);
            let cap = g.len().div_ceil(shards);
            assert!(
                p.shard_sizes().iter().all(|&s| s <= cap),
                "shards={shards} sizes={:?} cap={cap}",
                p.shard_sizes()
            );
        }
    }

    #[test]
    fn single_shard_has_no_cut() {
        let g = sample();
        let p = Partition::new(&g, 1);
        assert_eq!(p.cut_links(), 0);
        assert_eq!(p.shard_sizes(), vec![g.len()]);
    }

    #[test]
    fn partition_is_deterministic() {
        let g = sample();
        assert_eq!(Partition::new(&g, 4), Partition::new(&g, 4));
    }

    #[test]
    fn cut_count_matches_link_census() {
        let g = sample();
        let p = Partition::new(&g, 3);
        let by_links = g
            .links()
            .iter()
            .filter(|&&(a, b)| p.shard_of(a) != p.shard_of(b))
            .count();
        assert_eq!(p.cut_links(), by_links);
    }

    #[test]
    fn greedy_beats_round_robin_on_cut_size() {
        // The locality heuristic must do meaningfully better than ignoring
        // the adjacency entirely.
        let g = InternetModel::new()
            .transit_count(20)
            .stub_count(200)
            .build(9);
        let p = Partition::new(&g, 4);
        let asns: Vec<_> = g.asns().collect();
        let round_robin_cut = g
            .links()
            .iter()
            .filter(|&&(a, b)| {
                let ia = asns.binary_search(&a).unwrap();
                let ib = asns.binary_search(&b).unwrap();
                ia % 4 != ib % 4
            })
            .count();
        assert!(
            p.cut_links() < round_robin_cut,
            "greedy {} !< round-robin {round_robin_cut}",
            p.cut_links()
        );
    }

    #[test]
    fn more_shards_than_nodes_is_fine() {
        let mut g = AsGraph::new();
        g.add_as(Asn(1), AsRole::Stub);
        g.add_as(Asn(2), AsRole::Stub);
        g.add_link(Asn(1), Asn(2));
        let p = Partition::new(&g, 8);
        assert_eq!(p.shard_sizes().iter().sum::<usize>(), 2);
        assert!(p.shard_of(Asn(3)).is_none());
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let g = sample();
        let p = Partition::new(&g, 0);
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.cut_links(), 0);
    }

    #[test]
    fn empty_graph() {
        let p = Partition::new(&AsGraph::new(), 3);
        assert_eq!(p.shard_sizes(), vec![0, 0, 0]);
        assert_eq!(p.cut_links(), 0);
    }
}
