//! The AS-level graph.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

use bgp_types::Asn;

/// The role of an AS in the topology (§5.1).
///
/// "Transit ASes represent ISPs (e.g. AS 1239 is Sprint), while stub ASes are
/// networks at the edges of the Internet such as commercial companies and
/// universities."
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AsRole {
    /// Carries traffic between other ASes (appears mid-path).
    Transit,
    /// Edge network; only ever an endpoint of AS paths.
    Stub,
}

impl fmt::Display for AsRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AsRole::Transit => "transit",
            AsRole::Stub => "stub",
        })
    }
}

/// An undirected AS-level topology: nodes are ASes, links are BGP peering
/// sessions ("a link between two nodes represents a BGP peering connection",
/// §5.1).
///
/// # Example
///
/// ```
/// use as_topology::{AsGraph, AsRole};
/// use bgp_types::Asn;
///
/// let mut g = AsGraph::new();
/// g.add_as(Asn(1), AsRole::Transit);
/// g.add_as(Asn(2), AsRole::Stub);
/// g.add_link(Asn(1), Asn(2));
/// assert_eq!(g.degree(Asn(1)), 1);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AsGraph {
    adjacency: BTreeMap<Asn, BTreeSet<Asn>>,
    roles: BTreeMap<Asn, AsRole>,
}

impl AsGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        AsGraph::default()
    }

    /// Adds an AS with the given role (no-op on the adjacency if it already
    /// exists; the role is updated).
    pub fn add_as(&mut self, asn: Asn, role: AsRole) {
        self.adjacency.entry(asn).or_default();
        self.roles.insert(asn, role);
    }

    /// Adds an undirected peering link, inserting missing endpoints as stubs.
    ///
    /// Self-loops are ignored: an AS does not peer with itself.
    pub fn add_link(&mut self, a: Asn, b: Asn) {
        if a == b {
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
        self.roles.entry(a).or_insert(AsRole::Stub);
        self.roles.entry(b).or_insert(AsRole::Stub);
    }

    /// Removes a peering link if present.
    pub fn remove_link(&mut self, a: Asn, b: Asn) {
        if let Some(peers) = self.adjacency.get_mut(&a) {
            peers.remove(&b);
        }
        if let Some(peers) = self.adjacency.get_mut(&b) {
            peers.remove(&a);
        }
    }

    /// Removes an AS and all its links.
    pub fn remove_as(&mut self, asn: Asn) {
        if let Some(peers) = self.adjacency.remove(&asn) {
            for peer in peers {
                if let Some(back) = self.adjacency.get_mut(&peer) {
                    back.remove(&asn);
                }
            }
        }
        self.roles.remove(&asn);
    }

    /// Returns `true` if the AS is present.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.adjacency.contains_key(&asn)
    }

    /// Returns `true` if `a` and `b` peer.
    #[must_use]
    pub fn has_link(&self, a: Asn, b: Asn) -> bool {
        self.adjacency.get(&a).is_some_and(|p| p.contains(&b))
    }

    /// The peers of an AS (empty if absent).
    pub fn neighbors(&self, asn: Asn) -> impl Iterator<Item = Asn> + '_ {
        self.adjacency
            .get(&asn)
            .into_iter()
            .flat_map(|peers| peers.iter().copied())
    }

    /// Number of peers of an AS.
    #[must_use]
    pub fn degree(&self, asn: Asn) -> usize {
        self.adjacency.get(&asn).map_or(0, BTreeSet::len)
    }

    /// The role of an AS, if present.
    #[must_use]
    pub fn role(&self, asn: Asn) -> Option<AsRole> {
        self.roles.get(&asn).copied()
    }

    /// Reclassifies an existing AS. No-op if the AS is absent.
    pub fn set_role(&mut self, asn: Asn, role: AsRole) {
        if self.adjacency.contains_key(&asn) {
            self.roles.insert(asn, role);
        }
    }

    /// All ASes, in ascending ASN order.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.adjacency.keys().copied()
    }

    /// ASes with a given role, in ascending ASN order.
    pub fn asns_with_role(&self, role: AsRole) -> impl Iterator<Item = Asn> + '_ {
        self.roles
            .iter()
            .filter(move |(_, &r)| r == role)
            .map(|(&asn, _)| asn)
    }

    /// All transit ASes.
    #[must_use]
    pub fn transit_asns(&self) -> Vec<Asn> {
        self.asns_with_role(AsRole::Transit).collect()
    }

    /// All stub ASes.
    #[must_use]
    pub fn stub_asns(&self) -> Vec<Asn> {
        self.asns_with_role(AsRole::Stub).collect()
    }

    /// Number of ASes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Returns `true` if the graph has no ASes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Number of undirected links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.adjacency.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// All undirected links as `(low, high)` pairs, in deterministic order.
    #[must_use]
    pub fn links(&self) -> Vec<(Asn, Asn)> {
        let mut out = Vec::with_capacity(self.link_count());
        for (&a, peers) in &self.adjacency {
            for &b in peers {
                if a < b {
                    out.push((a, b));
                }
            }
        }
        out
    }

    /// Returns `true` if every AS can reach every other AS (the paper's final
    /// pipeline check: "we inspect the topology to make sure that it is a
    /// connected graph"). The empty graph is trivially connected.
    #[must_use]
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.adjacency.keys().next() else {
            return true;
        };
        self.reachable_from(start).len() == self.len()
    }

    /// The set of ASes reachable from `start` (including `start` itself, if
    /// present).
    #[must_use]
    pub fn reachable_from(&self, start: Asn) -> BTreeSet<Asn> {
        let mut seen = BTreeSet::new();
        if !self.contains(start) {
            return seen;
        }
        let mut queue = VecDeque::from([start]);
        seen.insert(start);
        while let Some(asn) = queue.pop_front() {
            for peer in self.neighbors(asn) {
                if seen.insert(peer) {
                    queue.push_back(peer);
                }
            }
        }
        seen
    }

    /// Breadth-first shortest path (in AS hops) from `from` to `to`.
    ///
    /// Returns the full path including both endpoints, or `None` when
    /// unreachable. Ties are broken toward lower ASNs, deterministically.
    #[must_use]
    pub fn shortest_path(&self, from: Asn, to: Asn) -> Option<Vec<Asn>> {
        if !self.contains(from) || !self.contains(to) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut parent: BTreeMap<Asn, Asn> = BTreeMap::new();
        let mut queue = VecDeque::from([from]);
        while let Some(asn) = queue.pop_front() {
            for peer in self.neighbors(asn) {
                if peer != from && !parent.contains_key(&peer) {
                    parent.insert(peer, asn);
                    if peer == to {
                        let mut path = vec![to];
                        let mut cur = to;
                        while cur != from {
                            cur = parent[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(peer);
                }
            }
        }
        None
    }

    /// Retains only the ASes in `keep` (and links among them).
    #[must_use]
    pub fn induced_subgraph(&self, keep: &BTreeSet<Asn>) -> AsGraph {
        let mut out = AsGraph::new();
        for &asn in keep {
            if let Some(role) = self.role(asn) {
                out.add_as(asn, role);
            }
        }
        for (a, b) in self.links() {
            if keep.contains(&a) && keep.contains(&b) {
                out.add_link(a, b);
            }
        }
        out
    }
}

impl fmt::Display for AsGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AsGraph({} ASes, {} links, {} transit / {} stub)",
            self.len(),
            self.link_count(),
            self.transit_asns().len(),
            self.stub_asns().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u32) -> AsGraph {
        let mut g = AsGraph::new();
        for i in 1..=n {
            g.add_as(Asn(i), AsRole::Transit);
        }
        for i in 1..n {
            g.add_link(Asn(i), Asn(i + 1));
        }
        g
    }

    #[test]
    fn add_link_inserts_endpoints_as_stubs() {
        let mut g = AsGraph::new();
        g.add_link(Asn(1), Asn(2));
        assert_eq!(g.role(Asn(1)), Some(AsRole::Stub));
        assert!(g.has_link(Asn(2), Asn(1)));
        assert_eq!(g.link_count(), 1);
    }

    #[test]
    fn add_as_then_link_keeps_role() {
        let mut g = AsGraph::new();
        g.add_as(Asn(1), AsRole::Transit);
        g.add_link(Asn(1), Asn(2));
        assert_eq!(g.role(Asn(1)), Some(AsRole::Transit));
        assert_eq!(g.role(Asn(2)), Some(AsRole::Stub));
    }

    #[test]
    fn self_loops_are_ignored() {
        let mut g = AsGraph::new();
        g.add_link(Asn(1), Asn(1));
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.degree(Asn(1)), 0);
    }

    #[test]
    fn remove_as_removes_back_edges() {
        let mut g = line(3);
        g.remove_as(Asn(2));
        assert!(!g.contains(Asn(2)));
        assert_eq!(g.degree(Asn(1)), 0);
        assert_eq!(g.degree(Asn(3)), 0);
        assert!(!g.is_connected());
    }

    #[test]
    fn remove_link_is_symmetric() {
        let mut g = line(2);
        g.remove_link(Asn(2), Asn(1));
        assert!(!g.has_link(Asn(1), Asn(2)));
        assert!(g.contains(Asn(1)));
    }

    #[test]
    fn connectivity() {
        assert!(AsGraph::new().is_connected());
        assert!(line(5).is_connected());
        let mut g = line(5);
        g.add_as(Asn(99), AsRole::Stub);
        assert!(!g.is_connected());
    }

    #[test]
    fn reachable_from_absent_is_empty() {
        assert!(line(3).reachable_from(Asn(42)).is_empty());
    }

    #[test]
    fn shortest_path_on_line() {
        let g = line(4);
        assert_eq!(
            g.shortest_path(Asn(1), Asn(4)).unwrap(),
            vec![Asn(1), Asn(2), Asn(3), Asn(4)]
        );
        assert_eq!(g.shortest_path(Asn(2), Asn(2)).unwrap(), vec![Asn(2)]);
        assert!(g.shortest_path(Asn(1), Asn(99)).is_none());
    }

    #[test]
    fn shortest_path_prefers_fewer_hops() {
        let mut g = line(4);
        g.add_link(Asn(1), Asn(4));
        assert_eq!(
            g.shortest_path(Asn(1), Asn(4)).unwrap(),
            vec![Asn(1), Asn(4)]
        );
    }

    #[test]
    fn induced_subgraph_keeps_roles_and_internal_links() {
        let g = line(4);
        let keep: BTreeSet<Asn> = [Asn(1), Asn(2), Asn(4)].into_iter().collect();
        let sub = g.induced_subgraph(&keep);
        assert_eq!(sub.len(), 3);
        assert!(sub.has_link(Asn(1), Asn(2)));
        assert!(!sub.has_link(Asn(3), Asn(4)));
        assert_eq!(sub.role(Asn(4)), Some(AsRole::Transit));
    }

    #[test]
    fn links_are_deterministic_and_deduplicated() {
        let mut g = AsGraph::new();
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(1), Asn(2));
        g.add_link(Asn(3), Asn(1));
        assert_eq!(g.links(), vec![(Asn(1), Asn(2)), (Asn(1), Asn(3))]);
    }

    #[test]
    fn role_queries() {
        let mut g = AsGraph::new();
        g.add_as(Asn(1), AsRole::Transit);
        g.add_as(Asn(2), AsRole::Stub);
        g.add_as(Asn(3), AsRole::Stub);
        assert_eq!(g.transit_asns(), vec![Asn(1)]);
        assert_eq!(g.stub_asns(), vec![Asn(2), Asn(3)]);
        g.set_role(Asn(2), AsRole::Transit);
        assert_eq!(g.transit_asns(), vec![Asn(1), Asn(2)]);
        g.set_role(Asn(42), AsRole::Transit); // absent: no-op
        assert!(!g.contains(Asn(42)));
    }

    #[test]
    fn display_summarizes() {
        let g = line(3);
        let s = g.to_string();
        assert!(s.contains("3 ASes"));
        assert!(s.contains("2 links"));
    }
}
