//! Route Views-style routing tables.

use std::collections::BTreeMap;
use std::fmt;

use bgp_types::{AsPath, Asn, Ipv4Prefix};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::AsGraph;

/// One `(prefix, AS path)` row of a BGP routing table, as archived by the
/// Oregon Route Views server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteTableEntry {
    /// The destination prefix.
    pub prefix: Ipv4Prefix,
    /// The AS path the collector observed, neighbor-first.
    pub path: AsPath,
}

impl fmt::Display for RouteTableEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.prefix, self.path)
    }
}

/// A full BGP routing table: the input to the paper's topology-derivation
/// pipeline and to the MOAS measurement study.
///
/// # Example
///
/// ```
/// use as_topology::{InternetModel, RouteTable};
///
/// let truth = InternetModel::new().transit_count(10).stub_count(30).build(1);
/// let table = RouteTable::synthesize(&truth, &[0], 1);
/// assert!(!table.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RouteTable {
    entries: Vec<RouteTableEntry>,
}

impl RouteTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        RouteTable::default()
    }

    /// Builds a table from entries.
    #[must_use]
    pub fn from_entries<I: IntoIterator<Item = RouteTableEntry>>(entries: I) -> Self {
        RouteTable {
            entries: entries.into_iter().collect(),
        }
    }

    /// Adds one row.
    pub fn push(&mut self, entry: RouteTableEntry) {
        self.entries.push(entry);
    }

    /// The rows of the table.
    #[must_use]
    pub fn entries(&self) -> &[RouteTableEntry] {
        &self.entries
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the table has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Groups origins seen per prefix — the raw material of MOAS detection.
    /// Returns, for each prefix, the distinct origin ASes observed across all
    /// rows for that prefix.
    #[must_use]
    pub fn origins_by_prefix(&self) -> BTreeMap<Ipv4Prefix, Vec<Asn>> {
        let mut map: BTreeMap<Ipv4Prefix, Vec<Asn>> = BTreeMap::new();
        for entry in &self.entries {
            if let Some(origin) = entry.path.origin() {
                let origins = map.entry(entry.prefix).or_default();
                if !origins.contains(&origin) {
                    origins.push(origin);
                }
            }
        }
        map
    }

    /// Prefixes announced by more than one origin AS: the MOAS cases visible
    /// in this table.
    #[must_use]
    pub fn moas_prefixes(&self) -> Vec<Ipv4Prefix> {
        self.origins_by_prefix()
            .into_iter()
            .filter(|(_, origins)| origins.len() > 1)
            .map(|(prefix, _)| prefix)
            .collect()
    }

    /// Synthesizes the table a Route Views-style collector would record for a
    /// ground-truth topology.
    ///
    /// Every stub AS originates one prefix (deterministically assigned from
    /// its ASN); each `vantage` index selects a transit AS (modulo the number
    /// of transit ASes) acting as a collector peer, and the collector records
    /// the shortest AS path from that vantage to every origin. `seed` jitters
    /// path tie-breaking so different vantages do not see artificially
    /// identical tables.
    ///
    /// This substitutes for the real Route Views archive: it produces tables
    /// with the same structural properties the paper's pipeline consumes
    /// (adjacency pairs revealing peering, mid-path ASes revealing transit
    /// roles).
    #[must_use]
    pub fn synthesize(truth: &AsGraph, vantages: &[usize], seed: u64) -> RouteTable {
        let transit = truth.transit_asns();
        let mut rng = sim_engine::rng::from_seed(seed);
        let mut table = RouteTable::new();
        if transit.is_empty() {
            return table;
        }
        for &v in vantages {
            let vantage = transit[v % transit.len()];
            for stub in truth.stub_asns() {
                let prefix = prefix_for_asn(stub);
                if let Some(path) = shortest_path_jittered(truth, vantage, stub, &mut rng) {
                    table.push(RouteTableEntry {
                        prefix,
                        path: AsPath::from_sequence(path),
                    });
                }
            }
        }
        table
    }
}

impl FromIterator<RouteTableEntry> for RouteTable {
    fn from_iter<I: IntoIterator<Item = RouteTableEntry>>(iter: I) -> Self {
        RouteTable::from_entries(iter)
    }
}

impl Extend<RouteTableEntry> for RouteTable {
    fn extend<I: IntoIterator<Item = RouteTableEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

/// The deterministic prefix originated by an AS in synthetic workloads: each
/// AS gets a distinct /16 (its ASN shifted into the high bits), so prefixes
/// of different ASes never overlap.
#[must_use]
pub fn prefix_for_asn(asn: Asn) -> Ipv4Prefix {
    Ipv4Prefix::new(asn.0 << 16, 16)
}

/// BFS shortest path with randomized neighbor order, so equal-length paths
/// are sampled rather than always resolving toward low ASNs.
///
/// Stub ASes never appear mid-path: edge networks do not provide transit, so
/// a stub is only expanded when it is the destination itself. This keeps the
/// synthesized tables consistent with the role semantics §5.1 infers from
/// them.
fn shortest_path_jittered<R: Rng>(
    graph: &AsGraph,
    from: Asn,
    to: Asn,
    rng: &mut R,
) -> Option<Vec<Asn>> {
    use crate::AsRole;
    use std::collections::{BTreeMap, VecDeque};
    if !graph.contains(from) || !graph.contains(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let mut parent: BTreeMap<Asn, Asn> = BTreeMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(asn) = queue.pop_front() {
        let mut peers: Vec<Asn> = graph.neighbors(asn).collect();
        peers.shuffle(rng);
        for peer in peers {
            if peer != from && !parent.contains_key(&peer) {
                parent.insert(peer, asn);
                if peer == to {
                    let mut path = vec![to];
                    let mut cur = to;
                    while cur != from {
                        cur = parent[&cur];
                        path.push(cur);
                    }
                    path.reverse();
                    return Some(path);
                }
                // Stubs do not carry traffic for third parties.
                if graph.role(peer) != Some(AsRole::Stub) {
                    queue.push_back(peer);
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsRole, InternetModel};

    fn entry(prefix: &str, path: &str) -> RouteTableEntry {
        RouteTableEntry {
            prefix: prefix.parse().unwrap(),
            path: path.parse().unwrap(),
        }
    }

    #[test]
    fn origins_by_prefix_deduplicates() {
        let table = RouteTable::from_entries([
            entry("10.0.0.0/16", "1 2 4"),
            entry("10.0.0.0/16", "3 4"),
            entry("10.0.0.0/16", "3 226"),
        ]);
        let origins = table.origins_by_prefix();
        assert_eq!(
            origins[&"10.0.0.0/16".parse().unwrap()],
            vec![Asn(4), Asn(226)]
        );
    }

    #[test]
    fn moas_prefixes_finds_conflicts_only() {
        let table = RouteTable::from_entries([
            entry("10.0.0.0/16", "1 4"),
            entry("10.0.0.0/16", "2 52"),
            entry("10.1.0.0/16", "1 4"),
            entry("10.1.0.0/16", "2 4"),
        ]);
        assert_eq!(table.moas_prefixes(), vec!["10.0.0.0/16".parse().unwrap()]);
    }

    #[test]
    fn synthesized_table_covers_all_stubs() {
        let truth = InternetModel::new()
            .transit_count(8)
            .stub_count(40)
            .build(3);
        let table = RouteTable::synthesize(&truth, &[0, 1, 2], 3);
        // Each vantage sees every stub (the generator guarantees connectivity).
        assert_eq!(table.len(), 3 * truth.stub_asns().len());
        // No MOAS in a fault-free table: one origin per prefix.
        assert!(table.moas_prefixes().is_empty());
    }

    #[test]
    fn synthesized_paths_end_at_origin_stub() {
        let truth = InternetModel::new()
            .transit_count(6)
            .stub_count(20)
            .build(9);
        let table = RouteTable::synthesize(&truth, &[0], 9);
        for row in table.entries() {
            let origin = row.path.origin().unwrap();
            assert_eq!(row.prefix, prefix_for_asn(origin));
            assert_eq!(truth.role(origin), Some(AsRole::Stub));
        }
    }

    #[test]
    fn prefix_for_asn_is_injective_for_16bit() {
        let a = prefix_for_asn(Asn(1));
        let b = prefix_for_asn(Asn(2));
        assert_ne!(a, b);
        assert!(!a.overlaps(b));
    }

    #[test]
    fn empty_truth_gives_empty_table() {
        let table = RouteTable::synthesize(&AsGraph::new(), &[0], 1);
        assert!(table.is_empty());
    }

    #[test]
    fn collect_and_extend() {
        let mut table: RouteTable = [entry("10.0.0.0/16", "1 4")].into_iter().collect();
        table.extend([entry("10.1.0.0/16", "1 5")]);
        assert_eq!(table.len(), 2);
    }
}
