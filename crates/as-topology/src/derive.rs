//! The paper's §5.1 experiment-topology derivation pipeline.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use bgp_types::Asn;

use crate::{AsGraph, AsRole};

/// Error from [`fn@derive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeriveError {
    /// The input graph has no stub ASes to sample.
    NoStubs,
    /// Pruning removed everything (e.g. a degenerate input graph).
    Degenerate,
    /// The pipeline's final inspection failed: the result is not connected.
    Disconnected,
}

impl fmt::Display for DeriveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DeriveError::NoStubs => "input graph has no stub ASes to sample",
            DeriveError::Degenerate => "pruning removed every AS",
            DeriveError::Disconnected => "derived topology is not connected",
        };
        f.write_str(s)
    }
}

impl Error for DeriveError {}

/// Derives an experiment topology the way §5.1 does:
///
/// 1. randomly select `stub_fraction` of the stub ASes;
/// 2. construct a topology containing these stubs **and their ISP peers**,
///    "with the peering relations among all the selected ASes completely
///    preserved";
/// 3. iteratively prune transit ASes left with at most one peer ("if a
///    transit AS has only one peer left after the initial selection, we prune
///    it from the topology... the pruning needs to be done iteratively");
/// 4. inspect the result to make sure it is a connected graph.
///
/// Stubs whose providers were all pruned away are removed with them (they
/// would otherwise be isolated), and if the final graph is disconnected only
/// the largest component survives the paper's inspection step — callers that
/// need the strict behaviour can treat [`DeriveError::Disconnected`] from
/// [`derive_strict`] as a resample signal.
///
/// # Errors
///
/// Returns [`DeriveError::NoStubs`] when the input has no stub ASes and
/// [`DeriveError::Degenerate`] when nothing survives pruning.
pub fn derive(graph: &AsGraph, stub_fraction: f64, seed: u64) -> Result<AsGraph, DeriveError> {
    let candidate = derive_raw(graph, stub_fraction, seed)?;
    if candidate.is_connected() {
        return Ok(candidate);
    }
    // Keep the largest connected component, then re-apply the pruning rule
    // (removing components can strand degree-1 transit nodes again).
    let mut best: BTreeSet<Asn> = BTreeSet::new();
    let mut remaining: BTreeSet<Asn> = candidate.asns().collect();
    while let Some(&start) = remaining.iter().next() {
        let component = candidate.reachable_from(start);
        for asn in &component {
            remaining.remove(asn);
        }
        if component.len() > best.len() {
            best = component;
        }
    }
    let mut result = candidate.induced_subgraph(&best);
    prune(&mut result);
    if result.is_empty() {
        return Err(DeriveError::Degenerate);
    }
    debug_assert!(result.is_connected());
    Ok(result)
}

/// Like [`fn@derive`] but fails instead of repairing when the sampled topology
/// is disconnected — the literal reading of the paper's "inspect" step.
///
/// # Errors
///
/// [`DeriveError::Disconnected`] when inspection fails, plus the same errors
/// as [`fn@derive`].
pub fn derive_strict(
    graph: &AsGraph,
    stub_fraction: f64,
    seed: u64,
) -> Result<AsGraph, DeriveError> {
    let candidate = derive_raw(graph, stub_fraction, seed)?;
    if candidate.is_connected() {
        Ok(candidate)
    } else {
        Err(DeriveError::Disconnected)
    }
}

fn derive_raw(graph: &AsGraph, stub_fraction: f64, seed: u64) -> Result<AsGraph, DeriveError> {
    let stubs = graph.stub_asns();
    if stubs.is_empty() {
        return Err(DeriveError::NoStubs);
    }
    let fraction = stub_fraction.clamp(0.0, 1.0);
    let mut rng = sim_engine::rng::from_seed(seed);
    let take = ((stubs.len() as f64) * fraction).round().max(1.0) as usize;
    let selected_stubs = sim_engine::rng::sample_distinct(&mut rng, &stubs, take);

    // Selected stubs plus their ISP peers; peering among kept ASes preserved
    // by taking the induced subgraph.
    let mut keep: BTreeSet<Asn> = selected_stubs.iter().copied().collect();
    for &stub in &selected_stubs {
        for peer in graph.neighbors(stub) {
            keep.insert(peer);
        }
    }
    let mut result = graph.induced_subgraph(&keep);
    prune(&mut result);
    if result.is_empty() {
        return Err(DeriveError::Degenerate);
    }
    Ok(result)
}

/// Iteratively removes transit ASes with degree <= 1, and any stubs left
/// isolated by those removals.
fn prune(graph: &mut AsGraph) {
    loop {
        let doomed: Vec<Asn> = graph
            .asns()
            .filter(|&asn| match graph.role(asn) {
                Some(AsRole::Transit) => graph.degree(asn) <= 1,
                Some(AsRole::Stub) => graph.degree(asn) == 0,
                None => true,
            })
            .collect();
        // A lone surviving AS is legitimate only in the degenerate
        // single-node case; guard against erasing the entire graph when the
        // graph is exactly one transit AS.
        if doomed.is_empty() || doomed.len() == graph.len() && graph.len() == 1 {
            break;
        }
        for asn in doomed {
            graph.remove_as(asn);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer_graph, InternetModel, RouteTable};

    fn sample_input(seed: u64) -> AsGraph {
        let truth = InternetModel::new()
            .transit_count(12)
            .stub_count(80)
            .build(seed);
        let table = RouteTable::synthesize(&truth, &[0, 4, 8], seed);
        infer_graph(table.entries())
    }

    #[test]
    fn derived_topology_is_connected() {
        for seed in 0..8 {
            let g = derive(&sample_input(3), 0.3, seed).unwrap();
            assert!(g.is_connected(), "seed {seed}");
            assert!(!g.is_empty());
        }
    }

    #[test]
    fn transit_nodes_keep_at_least_two_peers() {
        let g = derive(&sample_input(5), 0.4, 1).unwrap();
        if g.len() > 1 {
            for asn in g.transit_asns() {
                assert!(g.degree(asn) >= 2, "{asn} degree {}", g.degree(asn));
            }
        }
    }

    #[test]
    fn no_isolated_stubs_survive() {
        let g = derive(&sample_input(7), 0.2, 2).unwrap();
        for asn in g.stub_asns() {
            assert!(g.degree(asn) >= 1);
        }
    }

    #[test]
    fn derivation_is_deterministic_in_seed() {
        let input = sample_input(9);
        assert_eq!(
            derive(&input, 0.3, 4).unwrap(),
            derive(&input, 0.3, 4).unwrap()
        );
        // Different sampling seeds generally give different topologies.
        assert_ne!(
            derive(&input, 0.3, 4).unwrap(),
            derive(&input, 0.3, 5).unwrap()
        );
    }

    #[test]
    fn larger_fraction_gives_larger_topology() {
        let input = sample_input(11);
        let small = derive(&input, 0.1, 1).unwrap();
        let large = derive(&input, 0.9, 1).unwrap();
        assert!(large.len() > small.len());
    }

    #[test]
    fn no_stubs_is_an_error() {
        let mut g = AsGraph::new();
        g.add_as(Asn(1), AsRole::Transit);
        g.add_as(Asn(2), AsRole::Transit);
        g.add_link(Asn(1), Asn(2));
        assert_eq!(derive(&g, 0.5, 1), Err(DeriveError::NoStubs));
    }

    #[test]
    fn pruning_cascades() {
        // chain: stub 10 - transit 1 - transit 2 - transit 3 - stub 11,
        // plus a triangle 3-4-5 with stub 12 on 4.
        let mut g = AsGraph::new();
        for t in [1, 2, 3, 4, 5] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        for s in [10, 11, 12] {
            g.add_as(Asn(s), AsRole::Stub);
        }
        for (a, b) in [
            (10, 1),
            (1, 2),
            (2, 3),
            (3, 11),
            (3, 4),
            (4, 5),
            (5, 3),
            (4, 12),
        ] {
            g.add_link(Asn(a), Asn(b));
        }
        // Select only stub 12: keep = {12, 4}; transit 4 has 1 peer -> pruned;
        // stub 12 isolated -> pruned; cascade empties... Degenerate.
        let mut only_12 = g.clone();
        only_12.remove_as(Asn(10));
        only_12.remove_as(Asn(11));
        // With all three stubs available, a tiny fraction picks exactly one.
        // Use the full graph and fraction high enough to keep the triangle.
        let derived = derive(&g, 1.0, 1).unwrap();
        assert!(derived.is_connected());
        for asn in derived.transit_asns() {
            assert!(derived.degree(asn) >= 2);
        }
    }

    #[test]
    fn strict_mode_reports_disconnection() {
        // Two disjoint provider islands: sampling both sides disconnects.
        let mut g = AsGraph::new();
        for t in [1, 2, 3, 4] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(1), Asn(2));
        g.add_link(Asn(3), Asn(4));
        for (s, p) in [(10, 1), (11, 2), (12, 3), (13, 4)] {
            g.add_as(Asn(s), AsRole::Stub);
            g.add_link(Asn(s), Asn(p));
        }
        match derive_strict(&g, 1.0, 1) {
            Err(DeriveError::Disconnected) => {}
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // The repairing variant returns one island.
        let repaired = derive(&g, 1.0, 1).unwrap();
        assert!(repaired.is_connected());
        assert!(repaired.len() < g.len());
    }

    #[test]
    fn fraction_is_clamped() {
        let input = sample_input(13);
        assert!(derive(&input, 7.5, 1).is_ok());
        assert!(derive(&input, -1.0, 1).is_ok()); // takes at least one stub
    }
}
