//! Structural metrics of AS topologies.

use std::fmt;

use crate::AsGraph;

/// Summary statistics of an AS graph.
///
/// The paper attributes the MOAS scheme's robustness to rich
/// interconnectivity ("ASes are more richly connected in the larger
/// topology", §5.3); these metrics quantify that claim for any topology used
/// in an experiment, and feed the EXPERIMENTS.md reporting.
///
/// # Example
///
/// ```
/// use as_topology::{GraphMetrics, InternetModel};
///
/// let g = InternetModel::new().transit_count(10).stub_count(40).build(1);
/// let m = GraphMetrics::compute(&g);
/// assert_eq!(m.node_count, 50);
/// assert!(m.avg_degree > 1.0);
/// assert!(m.diameter >= 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMetrics {
    /// Number of ASes.
    pub node_count: usize,
    /// Number of undirected peering links.
    pub link_count: usize,
    /// Number of transit ASes.
    pub transit_count: usize,
    /// Number of stub ASes.
    pub stub_count: usize,
    /// Mean peering degree.
    pub avg_degree: f64,
    /// Maximum peering degree.
    pub max_degree: usize,
    /// Longest shortest path in AS hops (0 for empty or singleton graphs;
    /// computed on the graph as given, so only meaningful when connected).
    pub diameter: usize,
}

impl GraphMetrics {
    /// Computes metrics for a graph.
    #[must_use]
    pub fn compute(graph: &AsGraph) -> Self {
        let node_count = graph.len();
        let link_count = graph.link_count();
        let avg_degree = if node_count == 0 {
            0.0
        } else {
            2.0 * link_count as f64 / node_count as f64
        };
        let max_degree = graph.asns().map(|a| graph.degree(a)).max().unwrap_or(0);
        let diameter = diameter(graph);
        GraphMetrics {
            node_count,
            link_count,
            transit_count: graph.transit_asns().len(),
            stub_count: graph.stub_asns().len(),
            avg_degree,
            max_degree,
            diameter,
        }
    }
}

impl fmt::Display for GraphMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} nodes, {} links, avg degree {:.2}, max degree {}, diameter {}",
            self.node_count, self.link_count, self.avg_degree, self.max_degree, self.diameter
        )
    }
}

/// Longest eccentricity over all nodes, by repeated BFS.
fn diameter(graph: &AsGraph) -> usize {
    use std::collections::{BTreeMap, VecDeque};
    let mut best = 0;
    for start in graph.asns() {
        let mut dist: BTreeMap<_, usize> = BTreeMap::new();
        dist.insert(start, 0);
        let mut queue = VecDeque::from([start]);
        while let Some(asn) = queue.pop_front() {
            let d = dist[&asn];
            best = best.max(d);
            for peer in graph.neighbors(asn) {
                if let std::collections::btree_map::Entry::Vacant(entry) = dist.entry(peer) {
                    entry.insert(d + 1);
                    queue.push_back(peer);
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AsRole;
    use bgp_types::Asn;

    #[test]
    fn empty_graph_metrics() {
        let m = GraphMetrics::compute(&AsGraph::new());
        assert_eq!(m.node_count, 0);
        assert_eq!(m.avg_degree, 0.0);
        assert_eq!(m.diameter, 0);
    }

    #[test]
    fn line_graph_metrics() {
        let mut g = AsGraph::new();
        for i in 1..=4 {
            g.add_as(Asn(i), AsRole::Transit);
        }
        for i in 1..4 {
            g.add_link(Asn(i), Asn(i + 1));
        }
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.node_count, 4);
        assert_eq!(m.link_count, 3);
        assert_eq!(m.diameter, 3);
        assert_eq!(m.max_degree, 2);
        assert!((m.avg_degree - 1.5).abs() < 1e-9);
    }

    #[test]
    fn complete_graph_has_diameter_one() {
        let mut g = AsGraph::new();
        for i in 1..=5 {
            for j in (i + 1)..=5 {
                g.add_link(Asn(i), Asn(j));
            }
        }
        let m = GraphMetrics::compute(&g);
        assert_eq!(m.diameter, 1);
        assert_eq!(m.max_degree, 4);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let mut g = AsGraph::new();
        g.add_link(Asn(1), Asn(2));
        let s = GraphMetrics::compute(&g).to_string();
        assert!(s.contains("2 nodes"));
        assert!(s.contains("1 links"));
    }
}
