//! Organizational annotations over an [`AsGraph`](crate::AsGraph): sibling-AS
//! pairs and anycast origin groups.
//!
//! Modern MOAS measurement (Sediqi et al. 2023) attributes most long-lived
//! legitimate conflicts to organizations that control several ASNs: sibling
//! registrations co-originating the same space, and anycast operators
//! announcing one prefix from many sites. The topology generators know
//! nothing about organizations, so this module layers a deterministic,
//! seeded assignment on top of a built graph; the ensemble workloads use it
//! to pick legitimate multi-origin casts.

use std::collections::BTreeMap;

use bgp_types::Asn;
use rand::Rng;

use crate::graph::AsGraph;

/// Seeded sibling/anycast assignment for one topology.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OrgAnnotations {
    /// Disjoint sibling pairs, each sorted low-ASN-first.
    siblings: Vec<(Asn, Asn)>,
    /// Disjoint anycast groups, members sorted.
    anycast: Vec<Vec<Asn>>,
    /// Reverse index: member AS -> organization id (sibling pairs and
    /// anycast groups share one id space; siblings first).
    member_org: BTreeMap<Asn, usize>,
}

impl OrgAnnotations {
    /// Samples disjoint sibling pairs and anycast groups from the graph's
    /// stub ASes.
    ///
    /// `sibling_pairs` pairs and `anycast_groups` groups of `group_size`
    /// members are drawn without replacement; requests exceeding the stub
    /// population are truncated rather than failing, so small test graphs
    /// degrade gracefully. The same `(graph, seed)` always yields the same
    /// assignment.
    #[must_use]
    pub fn sample(
        graph: &AsGraph,
        sibling_pairs: usize,
        anycast_groups: usize,
        group_size: usize,
        seed: u64,
    ) -> Self {
        let stubs = graph.stub_asns();
        let group_size = group_size.max(2);
        let wanted = sibling_pairs * 2 + anycast_groups * group_size;
        let mut rng = sim_engine::rng::from_seed(seed);
        let picked = sim_engine::rng::sample_distinct(&mut rng, &stubs, wanted.min(stubs.len()));

        let mut annotations = OrgAnnotations::default();
        let mut cursor = picked.into_iter();
        for _ in 0..sibling_pairs {
            let (Some(a), Some(b)) = (cursor.next(), cursor.next()) else {
                break;
            };
            let pair = if a <= b { (a, b) } else { (b, a) };
            let org = annotations.siblings.len();
            annotations.member_org.insert(pair.0, org);
            annotations.member_org.insert(pair.1, org);
            annotations.siblings.push(pair);
        }
        for _ in 0..anycast_groups {
            let mut group: Vec<Asn> = cursor.by_ref().take(group_size).collect();
            if group.len() < 2 {
                break;
            }
            group.sort_unstable();
            let org = annotations.siblings.len() + annotations.anycast.len();
            for &member in &group {
                annotations.member_org.insert(member, org);
            }
            annotations.anycast.push(group);
        }
        // Consume the RNG no further: callers deriving more randomness from
        // the same seed stay independent of the group geometry.
        let _ = rng.gen::<u64>();
        annotations
    }

    /// The sibling pairs, low-ASN-first, in sampling order.
    #[must_use]
    pub fn sibling_pairs(&self) -> &[(Asn, Asn)] {
        &self.siblings
    }

    /// The anycast groups, members sorted, in sampling order.
    #[must_use]
    pub fn anycast_groups(&self) -> &[Vec<Asn>] {
        &self.anycast
    }

    /// The other half of `asn`'s sibling pair, if it is in one.
    #[must_use]
    pub fn sibling_of(&self, asn: Asn) -> Option<Asn> {
        self.siblings.iter().find_map(|&(a, b)| {
            if a == asn {
                Some(b)
            } else if b == asn {
                Some(a)
            } else {
                None
            }
        })
    }

    /// Whether two ASes belong to the same organization (sibling pair or
    /// anycast group).
    #[must_use]
    pub fn same_org(&self, a: Asn, b: Asn) -> bool {
        match (self.member_org.get(&a), self.member_org.get(&b)) {
            (Some(x), Some(y)) => x == y,
            _ => false,
        }
    }

    /// Total annotated ASes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.member_org.len()
    }

    /// `true` when nothing was annotated (e.g. an all-transit graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.member_org.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::InternetModel;

    fn graph() -> AsGraph {
        InternetModel::new()
            .transit_count(8)
            .stub_count(40)
            .build(9)
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = graph();
        let a = OrgAnnotations::sample(&g, 4, 2, 3, 77);
        let b = OrgAnnotations::sample(&g, 4, 2, 3, 77);
        assert_eq!(a, b);
    }

    #[test]
    fn pairs_and_groups_are_disjoint() {
        let g = graph();
        let ann = OrgAnnotations::sample(&g, 4, 2, 3, 77);
        assert_eq!(ann.sibling_pairs().len(), 4);
        assert_eq!(ann.anycast_groups().len(), 2);
        // 4*2 + 2*3 distinct members.
        assert_eq!(ann.len(), 14);
        assert!(!ann.is_empty());
    }

    #[test]
    fn sibling_lookup_is_symmetric() {
        let g = graph();
        let ann = OrgAnnotations::sample(&g, 3, 0, 3, 5);
        for &(a, b) in ann.sibling_pairs() {
            assert!(a < b);
            assert_eq!(ann.sibling_of(a), Some(b));
            assert_eq!(ann.sibling_of(b), Some(a));
            assert!(ann.same_org(a, b));
        }
        assert_eq!(ann.sibling_of(Asn(999_999)), None);
    }

    #[test]
    fn different_orgs_are_not_same_org() {
        let g = graph();
        let ann = OrgAnnotations::sample(&g, 2, 1, 3, 5);
        let (a, _) = ann.sibling_pairs()[0];
        let (c, _) = ann.sibling_pairs()[1];
        assert!(!ann.same_org(a, c));
        let anycast_member = ann.anycast_groups()[0][0];
        assert!(!ann.same_org(a, anycast_member));
        // Anycast members share an org among themselves.
        let g0 = &ann.anycast_groups()[0];
        assert!(ann.same_org(g0[0], g0[1]));
    }

    #[test]
    fn oversubscription_truncates_instead_of_failing() {
        let g = InternetModel::new().transit_count(4).stub_count(6).build(3);
        let ann = OrgAnnotations::sample(&g, 10, 10, 5, 1);
        assert!(ann.len() <= 6);
    }
}
