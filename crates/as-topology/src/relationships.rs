//! AS business relationships and their inference from AS paths.
//!
//! BGP routing is policy routing: a link is either a customer-provider
//! relationship or a (settlement-free) peering, and the export rule — routes
//! learned from a peer or provider are only announced to customers — yields
//! the *valley-free* property of real AS paths. The paper's topologies
//! abstract this away (every link exchanges everything); this module supplies
//! the relationship model and Gao's classic degree-based inference so the
//! reproduction can also evaluate the MOAS mechanism under policy routing
//! (see the `valley_free` ablation).

use std::collections::BTreeMap;
use std::fmt;

use bgp_types::Asn;

use crate::{AsGraph, RouteTableEntry};

/// The kind of a peering link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkKind {
    /// A transit (customer-provider) link; the payload is the **provider**.
    Transit {
        /// The provider side of the link.
        provider: Asn,
    },
    /// A settlement-free peer link.
    Peer,
}

/// How `other` relates to `this` across one link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relationship {
    /// `other` is a provider of `this`.
    Provider,
    /// `other` is a customer of `this`.
    Customer,
    /// `other` is a settlement-free peer of `this`.
    Peer,
}

impl fmt::Display for Relationship {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relationship::Provider => "provider",
            Relationship::Customer => "customer",
            Relationship::Peer => "peer",
        })
    }
}

/// The relationship annotation of every link in a topology.
///
/// # Example
///
/// ```
/// use as_topology::{AsRelationships, Relationship};
/// use bgp_types::Asn;
///
/// let mut rels = AsRelationships::new();
/// rels.add_transit(Asn(701), Asn(4));   // AS 701 provides transit to AS 4
/// rels.add_peer(Asn(701), Asn(1239));
///
/// assert_eq!(rels.relationship(Asn(4), Asn(701)), Some(Relationship::Provider));
/// assert_eq!(rels.relationship(Asn(701), Asn(4)), Some(Relationship::Customer));
/// assert_eq!(rels.relationship(Asn(701), Asn(1239)), Some(Relationship::Peer));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AsRelationships {
    links: BTreeMap<(Asn, Asn), LinkKind>,
}

impl AsRelationships {
    /// Creates an empty relationship map.
    #[must_use]
    pub fn new() -> Self {
        AsRelationships::default()
    }

    fn key(a: Asn, b: Asn) -> (Asn, Asn) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Records a transit link: `provider` sells transit to `customer`.
    /// Replaces any previous annotation of the link.
    pub fn add_transit(&mut self, provider: Asn, customer: Asn) {
        self.links.insert(
            Self::key(provider, customer),
            LinkKind::Transit { provider },
        );
    }

    /// Records a settlement-free peering. Replaces any previous annotation.
    pub fn add_peer(&mut self, a: Asn, b: Asn) {
        self.links.insert(Self::key(a, b), LinkKind::Peer);
    }

    /// The kind of the link between `a` and `b`, if annotated.
    #[must_use]
    pub fn kind(&self, a: Asn, b: Asn) -> Option<LinkKind> {
        self.links.get(&Self::key(a, b)).copied()
    }

    /// How `other` relates to `this` (provider / customer / peer of `this`).
    #[must_use]
    pub fn relationship(&self, this: Asn, other: Asn) -> Option<Relationship> {
        match self.kind(this, other)? {
            LinkKind::Peer => Some(Relationship::Peer),
            LinkKind::Transit { provider } => Some(if provider == other {
                Relationship::Provider
            } else {
                Relationship::Customer
            }),
        }
    }

    /// Number of annotated links.
    #[must_use]
    pub fn len(&self) -> usize {
        self.links.len()
    }

    /// Returns `true` when no links are annotated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.links.is_empty()
    }

    /// Iterates `(low, high, kind)` in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (Asn, Asn, LinkKind)> + '_ {
        self.links.iter().map(|(&(a, b), &k)| (a, b, k))
    }

    /// Fraction of links in `other` annotated identically here (links missing
    /// from either side are counted as disagreement). Used to score the
    /// accuracy of inferred relationships against ground truth.
    #[must_use]
    pub fn agreement_with(&self, other: &AsRelationships) -> f64 {
        let universe: std::collections::BTreeSet<(Asn, Asn)> = self
            .links
            .keys()
            .chain(other.links.keys())
            .copied()
            .collect();
        if universe.is_empty() {
            return 1.0;
        }
        let agree = universe
            .iter()
            .filter(|k| self.links.get(k) == other.links.get(k))
            .count();
        agree as f64 / universe.len() as f64
    }
}

/// Infers relationships from routing-table paths with Gao's degree heuristic:
/// in each (valley-free) AS path the highest-degree AS is the top of the
/// hill; links on the vantage side of the top point *downhill* toward the
/// vantage (each AS nearer the vantage is the customer), links on the origin
/// side point downhill toward the origin. Links whose two endpoints have
/// comparable degree (within `peer_ratio`) and that sit adjacent to the top
/// are classified as peerings.
///
/// Votes are tallied across all paths; the majority annotation wins per link.
#[must_use]
pub fn infer_relationships(
    graph: &AsGraph,
    entries: &[RouteTableEntry],
    peer_ratio: f64,
) -> AsRelationships {
    // (low, high) -> (votes for "low is provider", votes for "high is
    // provider", votes for peer)
    let mut votes: BTreeMap<(Asn, Asn), (u32, u32, u32)> = BTreeMap::new();
    let degree = |asn: Asn| graph.degree(asn);

    for entry in entries {
        let hops: Vec<Asn> = entry.path.iter().collect();
        if hops.len() < 2 {
            continue;
        }
        let top = (0..hops.len())
            .max_by_key(|&i| (degree(hops[i]), std::cmp::Reverse(hops[i])))
            .unwrap_or(0);
        for i in 0..hops.len() - 1 {
            let (a, b) = (hops[i], hops[i + 1]);
            if a == b {
                continue;
            }
            let key = AsRelationships::key(a, b);
            let slot = votes.entry(key).or_insert((0, 0, 0));
            // Peering candidate: both ends adjacent to the top of the hill
            // with comparable degrees.
            let (da, db) = (degree(a) as f64, degree(b) as f64);
            let comparable = da.max(db) <= peer_ratio * da.min(db).max(1.0);
            let adjacent_to_top = i == top || i + 1 == top;
            if comparable && adjacent_to_top && da > 2.0 && db > 2.0 {
                slot.2 += 1;
                continue;
            }
            // Uphill toward the top from both directions.
            let provider = if i < top { b } else { a };
            if provider == key.0 {
                slot.0 += 1;
            } else {
                slot.1 += 1;
            }
        }
    }

    let mut out = AsRelationships::new();
    for ((low, high), (low_provider, high_provider, peer)) in votes {
        if peer > low_provider && peer > high_provider {
            out.add_peer(low, high);
        } else if low_provider >= high_provider {
            out.add_transit(low, high);
        } else {
            out.add_transit(high, low);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{infer_graph, InternetModel, RouteTable};

    #[test]
    fn relationship_lookup_both_directions() {
        let mut rels = AsRelationships::new();
        rels.add_transit(Asn(1), Asn(2));
        assert_eq!(
            rels.kind(Asn(2), Asn(1)),
            Some(LinkKind::Transit { provider: Asn(1) })
        );
        assert_eq!(
            rels.relationship(Asn(2), Asn(1)),
            Some(Relationship::Provider)
        );
        assert_eq!(
            rels.relationship(Asn(1), Asn(2)),
            Some(Relationship::Customer)
        );
        assert_eq!(rels.relationship(Asn(1), Asn(3)), None);
    }

    #[test]
    fn re_annotation_replaces() {
        let mut rels = AsRelationships::new();
        rels.add_transit(Asn(1), Asn(2));
        rels.add_peer(Asn(2), Asn(1));
        assert_eq!(rels.kind(Asn(1), Asn(2)), Some(LinkKind::Peer));
        assert_eq!(rels.len(), 1);
    }

    #[test]
    fn agreement_score() {
        let mut a = AsRelationships::new();
        a.add_transit(Asn(1), Asn(2));
        a.add_peer(Asn(1), Asn(3));
        let mut b = AsRelationships::new();
        b.add_transit(Asn(1), Asn(2));
        b.add_transit(Asn(1), Asn(3));
        assert!((a.agreement_with(&b) - 0.5).abs() < 1e-9);
        assert_eq!(a.agreement_with(&a), 1.0);
        assert_eq!(
            AsRelationships::new().agreement_with(&AsRelationships::new()),
            1.0
        );
    }

    #[test]
    fn inference_recovers_most_ground_truth_transit_links() {
        let (truth_graph, truth_rels) = InternetModel::new()
            .transit_count(20)
            .stub_count(120)
            .build_with_relationships(5);
        let table = RouteTable::synthesize(&truth_graph, &[0, 5, 10, 15], 5);
        let observed = infer_graph(table.entries());
        let inferred = infer_relationships(&observed, table.entries(), 1.5);

        // Score only links the table actually revealed.
        let mut correct = 0usize;
        let mut total = 0usize;
        for (a, b, kind) in inferred.iter() {
            total += 1;
            if truth_rels.kind(a, b) == Some(kind) {
                correct += 1;
            }
        }
        assert!(total > 20, "inference produced too few links ({total})");
        let accuracy = correct as f64 / total as f64;
        assert!(accuracy > 0.7, "accuracy {accuracy:.2} over {total} links");
    }

    #[test]
    fn iter_is_deterministic() {
        let mut rels = AsRelationships::new();
        rels.add_peer(Asn(5), Asn(2));
        rels.add_transit(Asn(1), Asn(9));
        let listed: Vec<_> = rels.iter().collect();
        assert_eq!(listed[0].0, Asn(1));
        assert_eq!(listed[1].0, Asn(2));
    }
}
