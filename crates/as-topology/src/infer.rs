//! Peering inference from AS paths (§5.1).

use std::collections::BTreeSet;

use bgp_types::Asn;

use crate::{AsGraph, AsRole, RouteTableEntry};

/// Infers the AS-level topology from routing-table rows, exactly as §5.1
/// describes:
///
/// > "we infer BGP peering relations based on the AS Path attribute in the
/// > collected BGP routes. For example, if a route to a prefix p has the AS
/// > Path `10 6453 4621`, we consider AS 6453 to have two BGP peers, AS 10
/// > and AS 4621. We also mark AS 6453 as a transit AS since packets to and
/// > from AS 4621 may traverse through it. If an AS does not appear to be a
/// > transit AS in any of the routes, we consider it a stub AS."
///
/// # Example
///
/// ```
/// use as_topology::{infer_graph, AsRole, RouteTableEntry};
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let rows = vec![RouteTableEntry {
///     prefix: "10.0.0.0/16".parse()?,
///     path: "10 6453 4621".parse()?,
/// }];
/// let g = infer_graph(&rows);
/// assert!(g.has_link(Asn(10), Asn(6453)));
/// assert!(g.has_link(Asn(6453), Asn(4621)));
/// assert_eq!(g.role(Asn(6453)), Some(AsRole::Transit));
/// assert_eq!(g.role(Asn(4621)), Some(AsRole::Stub));
/// # Ok(())
/// # }
/// ```
#[must_use]
pub fn infer_graph(entries: &[RouteTableEntry]) -> AsGraph {
    let mut graph = AsGraph::new();
    let mut transit: BTreeSet<Asn> = BTreeSet::new();

    for entry in entries {
        for asn in entry.path.iter() {
            if !graph.contains(asn) {
                graph.add_as(asn, AsRole::Stub);
            }
        }
        for (a, b) in entry.path.adjacent_pairs() {
            graph.add_link(a, b);
        }
        transit.extend(entry.path.transit_asns());
    }

    for asn in transit {
        graph.set_role(asn, AsRole::Transit);
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InternetModel, RouteTable};

    fn entry(prefix: &str, path: &str) -> RouteTableEntry {
        RouteTableEntry {
            prefix: prefix.parse().unwrap(),
            path: path.parse().unwrap(),
        }
    }

    #[test]
    fn empty_table_empty_graph() {
        let g = infer_graph(&[]);
        assert!(g.is_empty());
    }

    #[test]
    fn endpoints_are_stubs_until_seen_in_transit() {
        let g = infer_graph(&[entry("10.0.0.0/16", "1 2 3")]);
        assert_eq!(g.role(Asn(1)), Some(AsRole::Stub));
        assert_eq!(g.role(Asn(2)), Some(AsRole::Transit));
        assert_eq!(g.role(Asn(3)), Some(AsRole::Stub));
    }

    #[test]
    fn transit_marking_is_sticky_across_rows() {
        // AS 3 is an endpoint in one path but mid-path in another: transit.
        let g = infer_graph(&[entry("10.0.0.0/16", "1 2 3"), entry("10.1.0.0/16", "2 3 4")]);
        assert_eq!(g.role(Asn(3)), Some(AsRole::Transit));
    }

    #[test]
    fn single_hop_paths_create_no_links() {
        let g = infer_graph(&[entry("10.0.0.0/16", "7")]);
        assert!(g.contains(Asn(7)));
        assert_eq!(g.link_count(), 0);
        assert_eq!(g.role(Asn(7)), Some(AsRole::Stub));
    }

    #[test]
    fn prepending_does_not_create_self_links() {
        let g = infer_graph(&[entry("10.0.0.0/16", "1 2 2 2 3")]);
        assert!(!g.has_link(Asn(2), Asn(2)));
        assert_eq!(g.link_count(), 2);
    }

    #[test]
    fn inference_recovers_used_links_of_ground_truth() {
        let truth = InternetModel::new()
            .transit_count(10)
            .stub_count(60)
            .build(11);
        let table = RouteTable::synthesize(&truth, &[0, 3, 6], 11);
        let inferred = infer_graph(table.entries());
        // Every inferred link must exist in ground truth (inference is sound).
        for (a, b) in inferred.links() {
            assert!(truth.has_link(a, b), "phantom link {a}-{b}");
        }
        // Every inferred transit AS is transit in ground truth (stubs never
        // appear mid-path because they have no customers).
        for asn in inferred.transit_asns() {
            assert_eq!(truth.role(asn), Some(AsRole::Transit), "{asn}");
        }
        // And inference sees a substantial, connected part of the truth.
        assert!(inferred.len() > truth.len() / 2);
        assert!(inferred.is_connected());
    }
}
