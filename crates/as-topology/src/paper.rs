//! The canonical experiment topologies of §5.1.
//!
//! The paper runs its three experiments on AS-level topologies of exactly
//! 25, 46 and 63 nodes, each derived from a Route Views table by the §5.1
//! pipeline. This module reconstructs equivalents deterministically: a fixed
//! synthetic Internet stands in for the 2001 table (see the crate docs for
//! the substitution argument), and the pipeline is run over a deterministic
//! grid of sampling parameters until it yields a connected topology of the
//! exact target size.
//!
//! The topologies are computed once and cached for the process lifetime.

use std::sync::OnceLock;

use crate::{derive, infer_graph, AsGraph, InternetModel, RouteTable};

/// The three topology sizes used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PaperTopology {
    /// The 25-AS topology (Figure 8a).
    As25,
    /// The 46-AS topology (Experiment 1, Figure 9).
    As46,
    /// The 63-AS topology (Figure 8b).
    As63,
}

impl PaperTopology {
    /// All three sizes, smallest first.
    pub const ALL: [PaperTopology; 3] = [
        PaperTopology::As25,
        PaperTopology::As46,
        PaperTopology::As63,
    ];

    /// The node count of this topology.
    #[must_use]
    pub fn size(self) -> usize {
        match self {
            PaperTopology::As25 => 25,
            PaperTopology::As46 => 46,
            PaperTopology::As63 => 63,
        }
    }

    /// The derived topology, exactly [`size`](PaperTopology::size) connected
    /// ASes. All three are found in one shared grid search on first use and
    /// cached for the process lifetime.
    #[must_use]
    pub fn graph(self) -> &'static AsGraph {
        static CACHE: OnceLock<[AsGraph; 3]> = OnceLock::new();
        let all = CACHE.get_or_init(derive_all_exact);
        match self {
            PaperTopology::As25 => &all[0],
            PaperTopology::As46 => &all[1],
            PaperTopology::As63 => &all[2],
        }
    }
}

impl std::fmt::Display for PaperTopology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}-AS", self.size())
    }
}

/// The fixed master seed anchoring the synthetic Route Views stand-in.
const BASE_SEED: u64 = 0x4d4f_4153; // "MOAS"

/// The inferred graph standing in for the 2001 Route Views table, shared by
/// all three derivations (the paper likewise derives all sizes from one
/// table).
fn source_graph() -> &'static AsGraph {
    static CACHE: OnceLock<AsGraph> = OnceLock::new();
    CACHE.get_or_init(|| {
        let truth = InternetModel::new()
            .transit_count(35)
            .stub_count(220)
            .multihome_prob(0.8)
            .peer_link_prob(0.15)
            .build(BASE_SEED);
        let table = RouteTable::synthesize(&truth, &[0, 7, 14, 21], BASE_SEED);
        infer_graph(table.entries())
    })
}

/// Runs the §5.1 pipeline over a deterministic grid of (fraction, seed)
/// pairs, collecting the first 25-, 46- and 63-node connected topologies it
/// encounters. One pass serves all three targets, so the search cost is paid
/// once per process.
///
/// # Panics
///
/// Panics if the grid is exhausted before all three sizes appear — which
/// would indicate a change to the generator or pipeline; the integration
/// tests pin all three sizes.
fn derive_all_exact() -> [AsGraph; 3] {
    let source = source_graph();
    let mut found: [Option<AsGraph>; 3] = [None, None, None];
    let targets = [25usize, 46, 63];
    'search: for seed_block in 0..40u64 {
        for pct in (2..=60).map(|p| p as f64 / 100.0) {
            for seed in (seed_block * 10)..(seed_block * 10 + 10) {
                let seed =
                    sim_engine::rng::derive_seed(BASE_SEED, seed * 1000 + (pct * 100.0) as u64);
                let Ok(g) = derive(source, pct, seed) else {
                    continue;
                };
                if let Some(slot) = targets.iter().position(|&t| t == g.len()) {
                    if found[slot].is_none() && g.is_connected() {
                        found[slot] = Some(g);
                        if found.iter().all(Option::is_some) {
                            break 'search;
                        }
                    }
                }
            }
        }
    }
    found.map(|g| g.expect("grid search exhausted before finding all paper topology sizes"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphMetrics;

    #[test]
    fn sizes_are_exact() {
        for t in PaperTopology::ALL {
            assert_eq!(t.graph().len(), t.size(), "{t}");
        }
    }

    #[test]
    fn all_connected() {
        for t in PaperTopology::ALL {
            assert!(t.graph().is_connected(), "{t}");
        }
    }

    #[test]
    fn each_has_both_roles() {
        for t in PaperTopology::ALL {
            let g = t.graph();
            assert!(!g.transit_asns().is_empty(), "{t} has no transit ASes");
            assert!(!g.stub_asns().is_empty(), "{t} has no stub ASes");
        }
    }

    #[test]
    fn graphs_are_cached() {
        let a = PaperTopology::As25.graph() as *const AsGraph;
        let b = PaperTopology::As25.graph() as *const AsGraph;
        assert_eq!(a, b);
    }

    #[test]
    fn larger_topologies_are_richer() {
        let m25 = GraphMetrics::compute(PaperTopology::As25.graph());
        let m63 = GraphMetrics::compute(PaperTopology::As63.graph());
        assert!(m63.link_count > m25.link_count);
    }

    #[test]
    fn display_names() {
        assert_eq!(PaperTopology::As46.to_string(), "46-AS");
    }
}
