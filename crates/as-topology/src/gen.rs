//! Synthetic Internet-like ground-truth topology generation.

use bgp_types::Asn;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{AsGraph, AsRelationships, AsRole};

/// Builder for an Internet-like ground-truth AS topology.
///
/// The paper's robustness argument rests on the structural facts it cites
/// from Huston's analysis of the 2001 BGP table \[13\]: a small clique of
/// tier-1 providers, many regional transit ISPs hanging off them with
/// lateral peerings (the "richly interconnected mesh" of §1), and stub
/// networks at the edges, frequently multi-homed. This generator reproduces
/// that two-tier hierarchy:
///
/// * a near-clique **tier-1 core** (at most `TIER1_MAX` ASes);
/// * **regional transit** ASes, each with two uplinks into the existing
///   transit fabric plus lateral peer links to other regionals with
///   probability [`peer_link_prob`](InternetModel::peer_link_prob);
/// * **stubs** attached mostly to regionals, dual-homed with probability
///   [`multihome_prob`](InternetModel::multihome_prob).
///
/// Transit ASes are numbered from 1 (tier-1 first), stubs after them, so
/// ASNs are dense and deterministic.
///
/// # Example
///
/// ```
/// use as_topology::InternetModel;
///
/// let g = InternetModel::new()
///     .transit_count(15)
///     .stub_count(60)
///     .multihome_prob(0.4)
///     .build(7);
/// assert_eq!(g.len(), 75);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct InternetModel {
    transit_count: usize,
    stub_count: usize,
    multihome_prob: f64,
    peer_link_prob: f64,
}

/// Maximum size of the tier-1 clique; the remaining transit ASes are
/// regional ISPs.
pub const TIER1_MAX: usize = 5;

impl Default for InternetModel {
    fn default() -> Self {
        InternetModel {
            transit_count: 35,
            stub_count: 220,
            multihome_prob: 0.8,
            peer_link_prob: 0.15,
        }
    }
}

impl InternetModel {
    /// Creates a builder with defaults sized and wired like a small
    /// Route Views-derived study (35 transit ASes — 5 tier-1 plus 30
    /// regionals — and 220 stubs, heavily multi-homed as 2001 edge networks
    /// were).
    #[must_use]
    pub fn new() -> Self {
        InternetModel::default()
    }

    /// Total number of transit ASes (tier-1 plus regional). Values below 1
    /// are clamped to 1 at build time.
    #[must_use]
    pub fn transit_count(mut self, n: usize) -> Self {
        self.transit_count = n;
        self
    }

    /// Number of stub (edge) ASes.
    #[must_use]
    pub fn stub_count(mut self, n: usize) -> Self {
        self.stub_count = n;
        self
    }

    /// Probability that a stub is dual-homed to two providers.
    #[must_use]
    pub fn multihome_prob(mut self, p: f64) -> Self {
        self.multihome_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Probability of a lateral peer link between each pair of regional
    /// transit ASes; richer values model the increasing interconnectivity
    /// the detection scheme leans on (§4.1).
    #[must_use]
    pub fn peer_link_prob(mut self, p: f64) -> Self {
        self.peer_link_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Generates the ground-truth graph from a seed. The result is always
    /// connected.
    #[must_use]
    pub fn build(&self, seed: u64) -> AsGraph {
        self.build_with_relationships(seed).0
    }

    /// Like [`InternetModel::build`], but also returns the ground-truth
    /// business relationships: uplinks are customer-provider links, tier-1
    /// interconnects and regional lateral links are peerings. Used by the
    /// valley-free policy-routing ablation and as the reference for scoring
    /// [`infer_relationships`](crate::infer_relationships).
    #[must_use]
    pub fn build_with_relationships(&self, seed: u64) -> (AsGraph, AsRelationships) {
        let transit_count = self.transit_count.max(1);
        let tier1_count = transit_count.min(TIER1_MAX);
        let mut rng = sim_engine::rng::from_seed(seed);
        let mut graph = AsGraph::new();
        let mut rels = AsRelationships::new();

        // Tier-1 core: a chain guarantees connectivity, then a near-clique.
        // Tier-1s interconnect as settlement-free peers.
        let tier1: Vec<Asn> = (1..=tier1_count as u32).map(Asn).collect();
        for &asn in &tier1 {
            graph.add_as(asn, AsRole::Transit);
        }
        for i in 1..tier1.len() {
            graph.add_link(tier1[i - 1], tier1[i]);
            rels.add_peer(tier1[i - 1], tier1[i]);
        }
        for i in 0..tier1.len() {
            for j in (i + 2)..tier1.len() {
                if rng.gen::<f64>() < 0.9 {
                    graph.add_link(tier1[i], tier1[j]);
                    rels.add_peer(tier1[i], tier1[j]);
                }
            }
        }

        // Regional transits: two uplinks into the existing fabric, plus
        // lateral peerings.
        let mut transit: Vec<Asn> = tier1.clone();
        let mut regionals: Vec<Asn> = Vec::new();
        for k in 0..transit_count - tier1_count {
            let asn = Asn((tier1_count + 1 + k) as u32);
            graph.add_as(asn, AsRole::Transit);
            let mut uplinks = transit.clone();
            uplinks.shuffle(&mut rng);
            graph.add_link(asn, uplinks[0]);
            rels.add_transit(uplinks[0], asn);
            if uplinks.len() > 1 {
                graph.add_link(asn, uplinks[1]);
                rels.add_transit(uplinks[1], asn);
            }
            for &other in &regionals {
                if rng.gen::<f64>() < self.peer_link_prob {
                    graph.add_link(asn, other);
                    rels.add_peer(asn, other);
                }
            }
            transit.push(asn);
            regionals.push(asn);
        }

        // Stubs: mostly customers of regionals, dual-homed per the model.
        for i in 0..self.stub_count {
            let asn = Asn((transit_count + 1 + i) as u32);
            graph.add_as(asn, AsRole::Stub);
            let pool: &[Asn] = if !regionals.is_empty() && rng.gen::<f64>() < 0.85 {
                &regionals
            } else {
                &tier1
            };
            let first = pool[rng.gen_range(0..pool.len())];
            graph.add_link(asn, first);
            rels.add_transit(first, asn);
            if transit.len() > 1 && sim_engine::rng::coin(&mut rng, self.multihome_prob) {
                let second = loop {
                    let candidate = transit[rng.gen_range(0..transit.len())];
                    if candidate != first {
                        break candidate;
                    }
                };
                graph.add_link(asn, second);
                rels.add_transit(second, asn);
            }
        }

        debug_assert!(graph.is_connected());
        (graph, rels)
    }
}

/// Builder for an Internet-scale, power-law AS topology.
///
/// [`InternetModel`] reproduces the paper's small two-tier studies;
/// `ScaleFreeModel` targets the real 2026 Internet's scale (~70k active
/// ASes) with the degree distribution actually measured on it: a heavy
/// power-law tail grown by preferential attachment (Barabási–Albert). Each
/// new AS attaches [`attach_links`](ScaleFreeModel::attach_links) uplinks to
/// existing ASes chosen proportionally to their degree; attachment links are
/// annotated as customer-provider relationships (the existing, higher-degree
/// AS is the provider), and a configurable number of lateral peerings is
/// added among the highest-degree hubs, mirroring the tier-1/IXP mesh.
///
/// The result is connected by construction, deterministic per seed, and
/// ASNs are dense (`1..=as_count`). ASes whose final degree reaches
/// [`transit_degree`](ScaleFreeModel::transit_degree) are classified
/// transit, the rest stubs.
///
/// # Example
///
/// ```
/// use as_topology::ScaleFreeModel;
///
/// let g = ScaleFreeModel::new().as_count(500).build(7);
/// assert_eq!(g.len(), 500);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct ScaleFreeModel {
    as_count: usize,
    attach_links: usize,
    peer_links: usize,
    transit_degree: usize,
}

impl Default for ScaleFreeModel {
    fn default() -> Self {
        ScaleFreeModel {
            as_count: 70_000,
            attach_links: 2,
            peer_links: 700,
            transit_degree: 8,
        }
    }
}

impl ScaleFreeModel {
    /// Creates a builder sized like today's Internet: 70k ASes, two uplinks
    /// per new AS (the measured mean AS degree is ≈4, i.e. ≈2 links per
    /// node), and one lateral hub peering per hundred ASes.
    #[must_use]
    pub fn new() -> Self {
        ScaleFreeModel::default()
    }

    /// Total number of ASes. Values below 2 are clamped to 2 at build time.
    #[must_use]
    pub fn as_count(mut self, n: usize) -> Self {
        self.as_count = n;
        self
    }

    /// Uplinks each newly attached AS creates (the Barabási–Albert `m`).
    /// Clamped to at least 1.
    #[must_use]
    pub fn attach_links(mut self, m: usize) -> Self {
        self.attach_links = m;
        self
    }

    /// Extra lateral peer links added among the highest-degree ASes after
    /// attachment.
    #[must_use]
    pub fn peer_links(mut self, n: usize) -> Self {
        self.peer_links = n;
        self
    }

    /// Final degree at or above which an AS is classified transit.
    #[must_use]
    pub fn transit_degree(mut self, d: usize) -> Self {
        self.transit_degree = d.max(1);
        self
    }

    /// Generates the graph from a seed. The result is always connected.
    #[must_use]
    pub fn build(&self, seed: u64) -> AsGraph {
        self.build_with_relationships(seed).0
    }

    /// Like [`ScaleFreeModel::build`], but also returns the ground-truth
    /// business relationships: attachment links are customer-provider (the
    /// attached-to AS provides), hub laterals are settlement-free peerings.
    #[must_use]
    pub fn build_with_relationships(&self, seed: u64) -> (AsGraph, AsRelationships) {
        let n = self.as_count.max(2);
        let m = self.attach_links.max(1).min(n - 1);
        let mut rng = sim_engine::rng::from_seed(seed);
        let mut graph = AsGraph::new();
        let mut rels = AsRelationships::new();

        // Seed clique of m + 1 ASes, mutually peered: gives the first
        // attachments something to hold onto and guarantees connectivity.
        let core = m + 1;
        for i in 1..=core as u32 {
            graph.add_as(Asn(i), AsRole::Transit);
        }
        // Every link pushes both endpoints; sampling an index uniformly from
        // `endpoints` is then exactly degree-proportional sampling.
        let mut endpoints: Vec<u32> = Vec::with_capacity(2 * (core * m + (n - core) * m));
        for i in 1..=core as u32 {
            for j in (i + 1)..=core as u32 {
                graph.add_link(Asn(i), Asn(j));
                rels.add_peer(Asn(i), Asn(j));
                endpoints.push(i);
                endpoints.push(j);
            }
        }

        let mut targets: Vec<u32> = Vec::with_capacity(m);
        for new in (core + 1)..=n {
            let new = new as u32;
            graph.add_as(Asn(new), AsRole::Stub);
            targets.clear();
            let mut attempts = 0usize;
            while targets.len() < m {
                let candidate = endpoints[rng.gen_range(0..endpoints.len())];
                attempts += 1;
                if targets.contains(&candidate) {
                    // Extremely skewed small graphs can keep re-drawing the
                    // same hub; fall back to the lowest unused ASN so the
                    // loop always terminates (still deterministic).
                    if attempts > 16 * m {
                        let fallback = (1..new).find(|c| !targets.contains(c)).unwrap_or(candidate);
                        targets.push(fallback);
                    }
                    continue;
                }
                targets.push(candidate);
            }
            for &provider in &targets {
                graph.add_link(Asn(new), Asn(provider));
                rels.add_transit(Asn(provider), Asn(new));
                endpoints.push(provider);
                endpoints.push(new);
            }
        }

        // Lateral peerings among the hubs: rank by degree (ties toward the
        // lower ASN) and wire random pairs inside the top slice.
        if self.peer_links > 0 {
            let mut by_degree: Vec<Asn> = graph.asns().collect();
            by_degree.sort_by_key(|&a| (std::cmp::Reverse(graph.degree(a)), a));
            let hubs = &by_degree[..by_degree.len().min((n / 50).max(8))];
            let mut added = 0usize;
            let mut attempts = 0usize;
            while added < self.peer_links && attempts < self.peer_links * 20 {
                attempts += 1;
                let a = hubs[rng.gen_range(0..hubs.len())];
                let b = hubs[rng.gen_range(0..hubs.len())];
                if a == b || graph.has_link(a, b) {
                    continue;
                }
                graph.add_link(a, b);
                rels.add_peer(a, b);
                added += 1;
            }
        }

        for asn in graph.asns().collect::<Vec<_>>() {
            let role = if graph.degree(asn) >= self.transit_degree {
                AsRole::Transit
            } else {
                AsRole::Stub
            };
            graph.set_role(asn, role);
        }

        debug_assert!(graph.is_connected());
        (graph, rels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let m = InternetModel::new().transit_count(10).stub_count(50);
        assert_eq!(m.build(5), m.build(5));
    }

    #[test]
    fn different_seeds_differ() {
        let m = InternetModel::new().transit_count(10).stub_count(50);
        assert_ne!(m.build(5), m.build(6));
    }

    #[test]
    fn counts_and_roles() {
        let g = InternetModel::new()
            .transit_count(12)
            .stub_count(34)
            .build(1);
        assert_eq!(g.transit_asns().len(), 12);
        assert_eq!(g.stub_asns().len(), 34);
        assert_eq!(g.len(), 46);
    }

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let g = InternetModel::new()
                .transit_count(8)
                .stub_count(40)
                .build(seed);
            assert!(g.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn stubs_attach_only_to_transit() {
        let g = InternetModel::new()
            .transit_count(6)
            .stub_count(30)
            .build(2);
        for stub in g.stub_asns() {
            for peer in g.neighbors(stub) {
                assert_eq!(g.role(peer), Some(AsRole::Transit));
            }
            let d = g.degree(stub);
            assert!((1..=2).contains(&d), "stub degree {d}");
        }
    }

    #[test]
    fn multihoming_fraction_tracks_probability() {
        let g = InternetModel::new()
            .transit_count(10)
            .stub_count(400)
            .multihome_prob(0.5)
            .build(3);
        let dual = g.stub_asns().iter().filter(|&&s| g.degree(s) == 2).count();
        assert!((120..=280).contains(&dual), "dual-homed = {dual}");
    }

    #[test]
    fn zero_multihome_prob_gives_single_homing() {
        let g = InternetModel::new()
            .transit_count(5)
            .stub_count(50)
            .multihome_prob(0.0)
            .build(4);
        assert!(g.stub_asns().iter().all(|&s| g.degree(s) == 1));
    }

    #[test]
    fn single_transit_degenerate_case() {
        let g = InternetModel::new()
            .transit_count(1)
            .stub_count(10)
            .build(1);
        assert!(g.is_connected());
        assert_eq!(g.transit_asns().len(), 1);
    }

    #[test]
    fn peer_links_enrich_the_regional_mesh() {
        let sparse = InternetModel::new()
            .transit_count(25)
            .stub_count(0)
            .peer_link_prob(0.0)
            .build(7);
        let dense = InternetModel::new()
            .transit_count(25)
            .stub_count(0)
            .peer_link_prob(0.5)
            .build(7);
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn tier1_forms_a_connected_core() {
        let g = InternetModel::new().transit_count(5).stub_count(0).build(9);
        assert!(g.is_connected());
        // 5 transits and at most TIER1_MAX tier-1s: all are tier-1; chain
        // plus near-clique gives at least n-1 links.
        assert!(g.link_count() >= 4);
    }

    #[test]
    fn scale_free_build_is_deterministic() {
        let m = ScaleFreeModel::new().as_count(800);
        assert_eq!(m.build(5), m.build(5));
        assert_ne!(m.build(5), m.build(6));
    }

    #[test]
    fn scale_free_is_connected_and_dense_numbered() {
        let g = ScaleFreeModel::new().as_count(1000).build(3);
        assert_eq!(g.len(), 1000);
        assert!(g.is_connected());
        let asns: Vec<Asn> = g.asns().collect();
        assert_eq!(asns.first(), Some(&Asn(1)));
        assert_eq!(asns.last(), Some(&Asn(1000)));
    }

    #[test]
    fn scale_free_has_power_law_tail() {
        // Preferential attachment must produce hubs far above the mean
        // degree, and most nodes at the minimum.
        let g = ScaleFreeModel::new().as_count(2000).peer_links(0).build(1);
        let max_degree = g.asns().map(|a| g.degree(a)).max().unwrap();
        let at_minimum = g.asns().filter(|&a| g.degree(a) <= 3).count();
        assert!(max_degree > 50, "max degree {max_degree}");
        assert!(at_minimum > 1000, "nodes at tail {at_minimum}");
    }

    #[test]
    fn scale_free_relationships_cover_every_link() {
        let (g, rels) = ScaleFreeModel::new()
            .as_count(400)
            .build_with_relationships(2);
        for (a, b) in g.links() {
            assert!(rels.kind(a, b).is_some(), "unannotated link {a}-{b}");
        }
        // Attachment links dominate and are customer-provider.
        let transit_links = rels
            .iter()
            .filter(|(_, _, k)| matches!(k, crate::LinkKind::Transit { .. }))
            .count();
        assert!(transit_links >= 400 - 3);
    }

    #[test]
    fn scale_free_roles_follow_degree() {
        let g = ScaleFreeModel::new()
            .as_count(600)
            .transit_degree(5)
            .build(4);
        for asn in g.asns() {
            let expected = if g.degree(asn) >= 5 {
                AsRole::Transit
            } else {
                AsRole::Stub
            };
            assert_eq!(g.role(asn), Some(expected));
        }
        assert!(!g.transit_asns().is_empty());
        assert!(!g.stub_asns().is_empty());
    }

    #[test]
    fn scale_free_peer_links_enrich_the_hub_mesh() {
        let sparse = ScaleFreeModel::new().as_count(500).peer_links(0).build(7);
        let dense = ScaleFreeModel::new().as_count(500).peer_links(40).build(7);
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn scale_free_tiny_counts_are_clamped() {
        let g = ScaleFreeModel::new().as_count(0).attach_links(0).build(1);
        assert_eq!(g.len(), 2);
        assert!(g.is_connected());
    }

    #[test]
    fn regional_uplinks_give_min_degree_two() {
        let g = InternetModel::new()
            .transit_count(20)
            .stub_count(0)
            .peer_link_prob(0.0)
            .build(11);
        // Every regional has two uplinks even with no lateral peerings.
        for asn in g.transit_asns().iter().skip(TIER1_MAX) {
            assert!(g.degree(*asn) >= 2, "{asn} degree {}", g.degree(*asn));
        }
    }
}
