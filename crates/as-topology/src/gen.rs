//! Synthetic Internet-like ground-truth topology generation.

use bgp_types::Asn;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::{AsGraph, AsRelationships, AsRole};

/// Builder for an Internet-like ground-truth AS topology.
///
/// The paper's robustness argument rests on the structural facts it cites
/// from Huston's analysis of the 2001 BGP table \[13\]: a small clique of
/// tier-1 providers, many regional transit ISPs hanging off them with
/// lateral peerings (the "richly interconnected mesh" of §1), and stub
/// networks at the edges, frequently multi-homed. This generator reproduces
/// that two-tier hierarchy:
///
/// * a near-clique **tier-1 core** (at most `TIER1_MAX` ASes);
/// * **regional transit** ASes, each with two uplinks into the existing
///   transit fabric plus lateral peer links to other regionals with
///   probability [`peer_link_prob`](InternetModel::peer_link_prob);
/// * **stubs** attached mostly to regionals, dual-homed with probability
///   [`multihome_prob`](InternetModel::multihome_prob).
///
/// Transit ASes are numbered from 1 (tier-1 first), stubs after them, so
/// ASNs are dense and deterministic.
///
/// # Example
///
/// ```
/// use as_topology::InternetModel;
///
/// let g = InternetModel::new()
///     .transit_count(15)
///     .stub_count(60)
///     .multihome_prob(0.4)
///     .build(7);
/// assert_eq!(g.len(), 75);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone)]
pub struct InternetModel {
    transit_count: usize,
    stub_count: usize,
    multihome_prob: f64,
    peer_link_prob: f64,
}

/// Maximum size of the tier-1 clique; the remaining transit ASes are
/// regional ISPs.
pub const TIER1_MAX: usize = 5;

impl Default for InternetModel {
    fn default() -> Self {
        InternetModel {
            transit_count: 35,
            stub_count: 220,
            multihome_prob: 0.8,
            peer_link_prob: 0.15,
        }
    }
}

impl InternetModel {
    /// Creates a builder with defaults sized and wired like a small
    /// Route Views-derived study (35 transit ASes — 5 tier-1 plus 30
    /// regionals — and 220 stubs, heavily multi-homed as 2001 edge networks
    /// were).
    #[must_use]
    pub fn new() -> Self {
        InternetModel::default()
    }

    /// Total number of transit ASes (tier-1 plus regional). Values below 1
    /// are clamped to 1 at build time.
    #[must_use]
    pub fn transit_count(mut self, n: usize) -> Self {
        self.transit_count = n;
        self
    }

    /// Number of stub (edge) ASes.
    #[must_use]
    pub fn stub_count(mut self, n: usize) -> Self {
        self.stub_count = n;
        self
    }

    /// Probability that a stub is dual-homed to two providers.
    #[must_use]
    pub fn multihome_prob(mut self, p: f64) -> Self {
        self.multihome_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Probability of a lateral peer link between each pair of regional
    /// transit ASes; richer values model the increasing interconnectivity
    /// the detection scheme leans on (§4.1).
    #[must_use]
    pub fn peer_link_prob(mut self, p: f64) -> Self {
        self.peer_link_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Generates the ground-truth graph from a seed. The result is always
    /// connected.
    #[must_use]
    pub fn build(&self, seed: u64) -> AsGraph {
        self.build_with_relationships(seed).0
    }

    /// Like [`InternetModel::build`], but also returns the ground-truth
    /// business relationships: uplinks are customer-provider links, tier-1
    /// interconnects and regional lateral links are peerings. Used by the
    /// valley-free policy-routing ablation and as the reference for scoring
    /// [`infer_relationships`](crate::infer_relationships).
    #[must_use]
    pub fn build_with_relationships(&self, seed: u64) -> (AsGraph, AsRelationships) {
        let transit_count = self.transit_count.max(1);
        let tier1_count = transit_count.min(TIER1_MAX);
        let mut rng = sim_engine::rng::from_seed(seed);
        let mut graph = AsGraph::new();
        let mut rels = AsRelationships::new();

        // Tier-1 core: a chain guarantees connectivity, then a near-clique.
        // Tier-1s interconnect as settlement-free peers.
        let tier1: Vec<Asn> = (1..=tier1_count as u32).map(Asn).collect();
        for &asn in &tier1 {
            graph.add_as(asn, AsRole::Transit);
        }
        for i in 1..tier1.len() {
            graph.add_link(tier1[i - 1], tier1[i]);
            rels.add_peer(tier1[i - 1], tier1[i]);
        }
        for i in 0..tier1.len() {
            for j in (i + 2)..tier1.len() {
                if rng.gen::<f64>() < 0.9 {
                    graph.add_link(tier1[i], tier1[j]);
                    rels.add_peer(tier1[i], tier1[j]);
                }
            }
        }

        // Regional transits: two uplinks into the existing fabric, plus
        // lateral peerings.
        let mut transit: Vec<Asn> = tier1.clone();
        let mut regionals: Vec<Asn> = Vec::new();
        for k in 0..transit_count - tier1_count {
            let asn = Asn((tier1_count + 1 + k) as u32);
            graph.add_as(asn, AsRole::Transit);
            let mut uplinks = transit.clone();
            uplinks.shuffle(&mut rng);
            graph.add_link(asn, uplinks[0]);
            rels.add_transit(uplinks[0], asn);
            if uplinks.len() > 1 {
                graph.add_link(asn, uplinks[1]);
                rels.add_transit(uplinks[1], asn);
            }
            for &other in &regionals {
                if rng.gen::<f64>() < self.peer_link_prob {
                    graph.add_link(asn, other);
                    rels.add_peer(asn, other);
                }
            }
            transit.push(asn);
            regionals.push(asn);
        }

        // Stubs: mostly customers of regionals, dual-homed per the model.
        for i in 0..self.stub_count {
            let asn = Asn((transit_count + 1 + i) as u32);
            graph.add_as(asn, AsRole::Stub);
            let pool: &[Asn] = if !regionals.is_empty() && rng.gen::<f64>() < 0.85 {
                &regionals
            } else {
                &tier1
            };
            let first = pool[rng.gen_range(0..pool.len())];
            graph.add_link(asn, first);
            rels.add_transit(first, asn);
            if transit.len() > 1 && sim_engine::rng::coin(&mut rng, self.multihome_prob) {
                let second = loop {
                    let candidate = transit[rng.gen_range(0..transit.len())];
                    if candidate != first {
                        break candidate;
                    }
                };
                graph.add_link(asn, second);
                rels.add_transit(second, asn);
            }
        }

        debug_assert!(graph.is_connected());
        (graph, rels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic() {
        let m = InternetModel::new().transit_count(10).stub_count(50);
        assert_eq!(m.build(5), m.build(5));
    }

    #[test]
    fn different_seeds_differ() {
        let m = InternetModel::new().transit_count(10).stub_count(50);
        assert_ne!(m.build(5), m.build(6));
    }

    #[test]
    fn counts_and_roles() {
        let g = InternetModel::new()
            .transit_count(12)
            .stub_count(34)
            .build(1);
        assert_eq!(g.transit_asns().len(), 12);
        assert_eq!(g.stub_asns().len(), 34);
        assert_eq!(g.len(), 46);
    }

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let g = InternetModel::new()
                .transit_count(8)
                .stub_count(40)
                .build(seed);
            assert!(g.is_connected(), "seed {seed} produced disconnected graph");
        }
    }

    #[test]
    fn stubs_attach_only_to_transit() {
        let g = InternetModel::new()
            .transit_count(6)
            .stub_count(30)
            .build(2);
        for stub in g.stub_asns() {
            for peer in g.neighbors(stub) {
                assert_eq!(g.role(peer), Some(AsRole::Transit));
            }
            let d = g.degree(stub);
            assert!((1..=2).contains(&d), "stub degree {d}");
        }
    }

    #[test]
    fn multihoming_fraction_tracks_probability() {
        let g = InternetModel::new()
            .transit_count(10)
            .stub_count(400)
            .multihome_prob(0.5)
            .build(3);
        let dual = g.stub_asns().iter().filter(|&&s| g.degree(s) == 2).count();
        assert!((120..=280).contains(&dual), "dual-homed = {dual}");
    }

    #[test]
    fn zero_multihome_prob_gives_single_homing() {
        let g = InternetModel::new()
            .transit_count(5)
            .stub_count(50)
            .multihome_prob(0.0)
            .build(4);
        assert!(g.stub_asns().iter().all(|&s| g.degree(s) == 1));
    }

    #[test]
    fn single_transit_degenerate_case() {
        let g = InternetModel::new()
            .transit_count(1)
            .stub_count(10)
            .build(1);
        assert!(g.is_connected());
        assert_eq!(g.transit_asns().len(), 1);
    }

    #[test]
    fn peer_links_enrich_the_regional_mesh() {
        let sparse = InternetModel::new()
            .transit_count(25)
            .stub_count(0)
            .peer_link_prob(0.0)
            .build(7);
        let dense = InternetModel::new()
            .transit_count(25)
            .stub_count(0)
            .peer_link_prob(0.5)
            .build(7);
        assert!(dense.link_count() > sparse.link_count());
    }

    #[test]
    fn tier1_forms_a_connected_core() {
        let g = InternetModel::new().transit_count(5).stub_count(0).build(9);
        assert!(g.is_connected());
        // 5 transits and at most TIER1_MAX tier-1s: all are tier-1; chain
        // plus near-clique gives at least n-1 links.
        assert!(g.link_count() >= 4);
    }

    #[test]
    fn regional_uplinks_give_min_degree_two() {
        let g = InternetModel::new()
            .transit_count(20)
            .stub_count(0)
            .peer_link_prob(0.0)
            .build(11);
        // Every regional has two uplinks even with no lateral peerings.
        for asn in g.transit_asns().iter().skip(TIER1_MAX) {
            assert!(g.degree(*asn) >= 2, "{asn} degree {}", g.degree(*asn));
        }
    }
}
