//! BGP community attributes and the MOAS-list community encoding.

use std::fmt;

use crate::Asn;

/// The reserved low-octet-pair value that marks a community as a MOAS-list
/// member (`MLVal` in §4.2 of the paper).
///
/// The paper proposes reserving one of the 2^16 values available in the last
/// two octets of a community; the concrete number is arbitrary as long as it
/// is consistently used, so we pick a stable constant.
pub const MOAS_LIST_VALUE: u16 = 0x4d4c; // "ML"

/// A BGP community attribute value (RFC 1997): four octets, conventionally
/// displayed as `ASN:value`.
///
/// The first two octets encode an AS number and the semantics of the final two
/// octets are defined by that AS. The paper's MOAS list is carried as a set of
/// communities `(X : MLVal)`, each meaning "AS X may originate a route to this
/// prefix".
///
/// # Example
///
/// ```
/// use bgp_types::{Asn, Community, MOAS_LIST_VALUE};
///
/// let c = Community::moas_member(Asn(226));
/// assert_eq!(c.asn(), Asn(226));
/// assert_eq!(c.value(), MOAS_LIST_VALUE);
/// assert!(c.is_moas_member());
/// assert_eq!(c.to_string(), format!("226:{}", MOAS_LIST_VALUE));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Community(pub u32);

impl Community {
    /// RFC 1997 well-known community `NO_EXPORT`.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);

    /// RFC 1997 well-known community `NO_ADVERTISE`.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);

    /// Builds a community from its AS-number half and value half.
    ///
    /// Only 2-octet AS numbers fit in a classic community; the low 16 bits of
    /// the ASN are used, matching 2001-era practice.
    #[must_use]
    pub fn new(asn: Asn, value: u16) -> Self {
        Community(((asn.0 & 0xFFFF) << 16) | u32::from(value))
    }

    /// Builds the MOAS-list membership community `(asn : MLVal)` for an AS
    /// entitled to originate the prefix.
    #[must_use]
    pub fn moas_member(asn: Asn) -> Self {
        Community::new(asn, MOAS_LIST_VALUE)
    }

    /// The AS-number half (first two octets).
    #[must_use]
    pub fn asn(self) -> Asn {
        Asn(self.0 >> 16)
    }

    /// The value half (last two octets).
    #[must_use]
    pub fn value(self) -> u16 {
        (self.0 & 0xFFFF) as u16
    }

    /// Returns `true` if this community is a MOAS-list membership marker.
    #[must_use]
    pub fn is_moas_member(self) -> bool {
        self.value() == MOAS_LIST_VALUE && !self.is_well_known()
    }

    /// Returns `true` for RFC 1997 well-known communities (high octets
    /// `0xFFFF`).
    #[must_use]
    pub fn is_well_known(self) -> bool {
        self.0 >> 16 == 0xFFFF
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.0 >> 16, self.value())
    }
}

impl fmt::LowerHex for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u32> for Community {
    fn from(raw: u32) -> Self {
        Community(raw)
    }
}

impl From<Community> for u32 {
    fn from(c: Community) -> Self {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moas_member_round_trips_asn() {
        // AS 65535 is reserved and collides with the well-known range, so it
        // is deliberately excluded here and covered by the well-known test.
        for asn in [0u32, 1, 226, 8584, 65_534] {
            let c = Community::moas_member(Asn(asn));
            assert_eq!(c.asn(), Asn(asn));
            assert_eq!(c.value(), MOAS_LIST_VALUE);
            assert!(c.is_moas_member());
        }
    }

    #[test]
    fn four_byte_asn_is_truncated_to_low_16_bits() {
        let c = Community::new(Asn(0x0001_0002), 7);
        assert_eq!(c.asn(), Asn(2));
    }

    #[test]
    fn well_known_are_not_moas_members() {
        assert!(Community::NO_EXPORT.is_well_known());
        assert!(!Community::NO_EXPORT.is_moas_member());
        // Even a 0xFFFF-prefixed community with the MLVal low bits is not a
        // MOAS marker: AS 65535 cannot claim origination via a well-known.
        let odd = Community::new(Asn(0xFFFF), MOAS_LIST_VALUE);
        assert!(!odd.is_moas_member());
    }

    #[test]
    fn ordinary_communities_are_not_moas_members() {
        assert!(!Community::new(Asn(701), 120).is_moas_member());
    }

    #[test]
    fn display_format() {
        assert_eq!(Community::new(Asn(701), 120).to_string(), "701:120");
    }

    #[test]
    fn hex_formatting_is_available() {
        let c = Community::new(Asn(1), 2);
        assert_eq!(format!("{c:x}"), "10002");
        assert_eq!(format!("{c:X}"), "10002");
    }

    #[test]
    fn raw_conversions() {
        let c = Community::from(0xDEAD_BEEF);
        assert_eq!(u32::from(c), 0xDEAD_BEEF);
    }
}
