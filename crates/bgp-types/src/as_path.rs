//! AS paths.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseAsPathError;
use crate::Asn;

/// One segment of an AS path.
///
/// BGP-4 AS paths are lists of segments. A `Sequence` segment is an ordered
/// list of the ASes a route traversed; a `Set` segment is an unordered
/// collection produced by route aggregation (footnote 1 of the paper: "in the
/// case of route aggregation, an element in the AS path may include a set of
/// ASes").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AsPathSegment {
    /// An ordered `AS_SEQUENCE` of traversed ASes, most recent first.
    Sequence(Vec<Asn>),
    /// An unordered `AS_SET` produced by aggregation.
    Set(Vec<Asn>),
}

impl AsPathSegment {
    /// The ASes in this segment, in stored order.
    #[must_use]
    pub fn asns(&self) -> &[Asn] {
        match self {
            AsPathSegment::Sequence(v) | AsPathSegment::Set(v) => v,
        }
    }

    /// Returns `true` if the segment mentions `asn`.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().contains(&asn)
    }
}

/// A BGP AS path attribute.
///
/// The first AS in the path is the neighbor the route was learned from; the
/// last is the **origin AS** that announced the prefix into BGP. An AS path of
/// `10 2 3` for prefix `d` means "AS 10 learned the path from AS 2, AS 2
/// learned it from AS 3, and AS 3 originated the route to `d`" (§1.1).
///
/// # Example
///
/// ```
/// use bgp_types::{AsPath, Asn};
///
/// let mut path = AsPath::origination(Asn(4));
/// path.prepend(Asn(700)); // AS 700 propagates the route
/// assert_eq!(path.origin(), Some(Asn(4)));
/// assert_eq!(path.first(), Some(Asn(700)));
/// assert_eq!(path.hop_len(), 2);
/// assert!(path.contains(Asn(4)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// The empty AS path (a route announced inside its own AS).
    #[must_use]
    pub fn new() -> Self {
        AsPath::default()
    }

    /// The path carried by a freshly originated route: a single-element
    /// sequence holding the origin AS, as in Figure 1 of the paper.
    #[must_use]
    pub fn origination(origin: Asn) -> Self {
        AsPath {
            segments: vec![AsPathSegment::Sequence(vec![origin])],
        }
    }

    /// Builds a pure-`AS_SEQUENCE` path from neighbor-first order.
    #[must_use]
    pub fn from_sequence<I: IntoIterator<Item = Asn>>(asns: I) -> Self {
        let v: Vec<Asn> = asns.into_iter().collect();
        if v.is_empty() {
            AsPath::new()
        } else {
            AsPath {
                segments: vec![AsPathSegment::Sequence(v)],
            }
        }
    }

    /// Builds a path from explicit segments.
    ///
    /// The result is canonical: empty segments are dropped and adjacent
    /// `AS_SEQUENCE` segments are merged, since they are semantically one
    /// sequence.
    #[must_use]
    pub fn from_segments<I: IntoIterator<Item = AsPathSegment>>(segments: I) -> Self {
        let mut out: Vec<AsPathSegment> = Vec::new();
        for segment in segments.into_iter().filter(|s| !s.asns().is_empty()) {
            match (out.last_mut(), segment) {
                (Some(AsPathSegment::Sequence(tail)), AsPathSegment::Sequence(next)) => {
                    tail.extend(next);
                }
                (_, segment) => out.push(segment),
            }
        }
        AsPath { segments: out }
    }

    /// The segments of the path.
    #[must_use]
    pub fn segments(&self) -> &[AsPathSegment] {
        &self.segments
    }

    /// Returns `true` for the empty path.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// The **origin AS**: the last AS of the last `AS_SEQUENCE` segment.
    ///
    /// Returns `None` for an empty path, or when the path ends in an `AS_SET`
    /// (an aggregate has no single well-defined origin; §1.1 footnote 1). The
    /// MOAS definition in the paper compares exactly these origins: prefixes
    /// with paths `(p1..pn)` and `(q1..qm)` form a MOAS when `pn != qm`.
    #[must_use]
    pub fn origin(&self) -> Option<Asn> {
        match self.segments.last()? {
            AsPathSegment::Sequence(v) => v.last().copied(),
            AsPathSegment::Set(_) => None,
        }
    }

    /// All ASes that may have originated the route: the single origin for a
    /// sequence-terminated path, or every member of a trailing `AS_SET`.
    #[must_use]
    pub fn possible_origins(&self) -> Vec<Asn> {
        match self.segments.last() {
            None => Vec::new(),
            Some(AsPathSegment::Sequence(v)) => v.last().map(|&a| vec![a]).unwrap_or_default(),
            Some(AsPathSegment::Set(v)) => v.clone(),
        }
    }

    /// The first (most recently prepended) AS, i.e. the neighbor a receiver
    /// learned the route from.
    #[must_use]
    pub fn first(&self) -> Option<Asn> {
        match self.segments.first()? {
            AsPathSegment::Sequence(v) => v.first().copied(),
            AsPathSegment::Set(v) => v.first().copied(),
        }
    }

    /// Prepends an AS, as done by each AS that propagates the route to an
    /// external peer.
    pub fn prepend(&mut self, asn: Asn) {
        match self.segments.first_mut() {
            Some(AsPathSegment::Sequence(v)) => v.insert(0, asn),
            _ => self.segments.insert(0, AsPathSegment::Sequence(vec![asn])),
        }
    }

    /// Returns a copy of the path with `asn` prepended.
    #[must_use]
    pub fn prepended(&self, asn: Asn) -> Self {
        let mut out = self.clone();
        out.prepend(asn);
        out
    }

    /// Path length used by the BGP decision process: each `AS_SEQUENCE`
    /// element counts 1 and each `AS_SET` segment counts 1 in total (RFC 4271
    /// §9.1.2.2 semantics).
    #[must_use]
    pub fn selection_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                AsPathSegment::Sequence(v) => v.len(),
                AsPathSegment::Set(_) => 1,
            })
            .sum()
    }

    /// Total number of AS hops mentioned, counting every member of every
    /// segment. Useful for statistics, not for route selection.
    #[must_use]
    pub fn hop_len(&self) -> usize {
        self.segments.iter().map(|s| s.asns().len()).sum()
    }

    /// Returns `true` if the path mentions `asn` anywhere.
    ///
    /// This is BGP's loop-prevention check: an AS rejects routes whose path
    /// already contains its own number.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.segments.iter().any(|s| s.contains(asn))
    }

    /// Iterates over every AS mentioned, in path order.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns().iter().copied())
    }

    /// Consecutive `(left, right)` pairs of a pure-sequence path: the peering
    /// edges this route reveals. This is exactly the inference the paper's §5.1
    /// applies to Route Views tables ("if a route has AS path 10 6453 4621 we
    /// consider AS 6453 to have two BGP peers").
    ///
    /// Pairs are only produced inside `AS_SEQUENCE` segments and across
    /// sequence-sequence boundaries; `AS_SET` members reveal no ordered
    /// adjacency and are skipped.
    #[must_use]
    pub fn adjacent_pairs(&self) -> Vec<(Asn, Asn)> {
        let mut pairs = Vec::new();
        let mut prev: Option<Asn> = None;
        for segment in &self.segments {
            match segment {
                AsPathSegment::Sequence(v) => {
                    for &asn in v {
                        if let Some(p) = prev {
                            if p != asn {
                                pairs.push((p, asn));
                            }
                        }
                        prev = Some(asn);
                    }
                }
                AsPathSegment::Set(_) => prev = None,
            }
        }
        pairs
    }

    /// The ASes strictly between the first and the origin in a pure-sequence
    /// path — the transit ASes this route reveals (§5.1).
    #[must_use]
    pub fn transit_asns(&self) -> Vec<Asn> {
        let flat: Vec<Asn> = self.iter().collect();
        if flat.len() <= 2 {
            Vec::new()
        } else {
            flat[1..flat.len() - 1].to_vec()
        }
    }
}

impl fmt::Display for AsPath {
    /// Formats like a looking-glass: `701 1239 4621`, with sets in braces:
    /// `701 {4621 4622}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for segment in &self.segments {
            match segment {
                AsPathSegment::Sequence(v) => {
                    for asn in v {
                        if !first {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.0)?;
                        first = false;
                    }
                }
                AsPathSegment::Set(v) => {
                    if !first {
                        write!(f, " ")?;
                    }
                    write!(f, "{{")?;
                    for (i, asn) in v.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.0)?;
                    }
                    write!(f, "}}")?;
                    first = false;
                }
            }
        }
        Ok(())
    }
}

impl FromStr for AsPath {
    type Err = ParseAsPathError;

    /// Parses the looking-glass format produced by [`fmt::Display`].
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseAsPathError {
            input: s.to_owned(),
        };
        let mut segments = Vec::new();
        let mut seq: Vec<Asn> = Vec::new();
        let mut rest = s.trim();
        while !rest.is_empty() {
            if let Some(after) = rest.strip_prefix('{') {
                if !seq.is_empty() {
                    segments.push(AsPathSegment::Sequence(std::mem::take(&mut seq)));
                }
                let (inside, tail) = after.split_once('}').ok_or_else(err)?;
                let set: Result<Vec<Asn>, _> =
                    inside.split_whitespace().map(str::parse::<Asn>).collect();
                let set = set.map_err(|_| err())?;
                if set.is_empty() {
                    return Err(err());
                }
                segments.push(AsPathSegment::Set(set));
                rest = tail.trim_start();
            } else {
                let (token, tail) = match rest.split_once(char::is_whitespace) {
                    Some((t, rest)) => (t, rest.trim_start()),
                    None => (rest, ""),
                };
                if token.starts_with('}') {
                    return Err(err());
                }
                seq.push(token.parse::<Asn>().map_err(|_| err())?);
                rest = tail;
            }
        }
        if !seq.is_empty() {
            segments.push(AsPathSegment::Sequence(seq));
        }
        Ok(AsPath { segments })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(s: &str) -> AsPath {
        s.parse().unwrap()
    }

    #[test]
    fn origination_has_single_origin() {
        let p = AsPath::origination(Asn(4));
        assert_eq!(p.origin(), Some(Asn(4)));
        assert_eq!(p.first(), Some(Asn(4)));
        assert_eq!(p.selection_len(), 1);
    }

    #[test]
    fn prepend_builds_neighbor_first_order() {
        let mut p = AsPath::origination(Asn(3));
        p.prepend(Asn(2));
        p.prepend(Asn(10));
        assert_eq!(p.to_string(), "10 2 3");
        assert_eq!(p.origin(), Some(Asn(3)));
        assert_eq!(p.first(), Some(Asn(10)));
    }

    #[test]
    fn prepend_on_empty_path_creates_sequence() {
        let mut p = AsPath::new();
        p.prepend(Asn(9));
        assert_eq!(p.origin(), Some(Asn(9)));
    }

    #[test]
    fn prepend_after_leading_set_adds_new_segment() {
        let mut p = AsPath::from_segments([AsPathSegment::Set(vec![Asn(1), Asn(2)])]);
        p.prepend(Asn(7));
        assert_eq!(p.segments().len(), 2);
        assert_eq!(p.first(), Some(Asn(7)));
    }

    #[test]
    fn origin_of_aggregate_is_none_but_possible_origins_listed() {
        let p = AsPath::from_segments([
            AsPathSegment::Sequence(vec![Asn(701)]),
            AsPathSegment::Set(vec![Asn(4), Asn(226)]),
        ]);
        assert_eq!(p.origin(), None);
        assert_eq!(p.possible_origins(), vec![Asn(4), Asn(226)]);
    }

    #[test]
    fn selection_len_counts_sets_once() {
        let p = AsPath::from_segments([
            AsPathSegment::Sequence(vec![Asn(1), Asn(2)]),
            AsPathSegment::Set(vec![Asn(3), Asn(4), Asn(5)]),
        ]);
        assert_eq!(p.selection_len(), 3);
        assert_eq!(p.hop_len(), 5);
    }

    #[test]
    fn loop_detection_contains() {
        let p = path("6453 1239 4621");
        assert!(p.contains(Asn(1239)));
        assert!(!p.contains(Asn(7007)));
    }

    #[test]
    fn adjacent_pairs_matches_paper_inference() {
        // Paper §5.1: path "10 6453 4621" ⇒ 6453 peers with 1239... our example:
        let p = path("10 6453 4621");
        assert_eq!(
            p.adjacent_pairs(),
            vec![(Asn(10), Asn(6453)), (Asn(6453), Asn(4621))]
        );
        assert_eq!(p.transit_asns(), vec![Asn(6453)]);
    }

    #[test]
    fn adjacent_pairs_skips_prepending_duplicates_and_sets() {
        let p = path("10 10 20 {30 40} 50");
        assert_eq!(p.adjacent_pairs(), vec![(Asn(10), Asn(20))]);
    }

    #[test]
    fn display_parse_round_trip() {
        for s in ["", "4", "701 1239 4621", "701 {4 226}", "{1 2} 3 {4}"] {
            let p = path(s);
            assert_eq!(path(&p.to_string()), p, "round-trip failed for {s:?}");
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("70x 1".parse::<AsPath>().is_err());
        assert!("{1 2".parse::<AsPath>().is_err());
        assert!("1 } 2".parse::<AsPath>().is_err());
        assert!("{}".parse::<AsPath>().is_err());
    }

    #[test]
    fn empty_path_properties() {
        let p = AsPath::new();
        assert!(p.is_empty());
        assert_eq!(p.origin(), None);
        assert_eq!(p.first(), None);
        assert_eq!(p.selection_len(), 0);
        assert!(p.adjacent_pairs().is_empty());
    }

    #[test]
    fn from_sequence_of_empty_is_empty() {
        assert!(AsPath::from_sequence([]).is_empty());
    }
}
