//! Autonomous-system numbers.

use std::fmt;
use std::str::FromStr;

use crate::error::ParseAsnError;

/// An autonomous-system number.
///
/// At the time of the paper AS numbers were 16-bit identifiers; we store them
/// as `u32` so that the same type also covers 4-octet AS numbers (RFC 6793),
/// but the paper-era ranges ([`Asn::is_private`], [`Asn::MAX_16BIT`]) are
/// exposed for the parts of the reproduction that model 2001 operational
/// practice (e.g. AS-number substitution on egress, §3.2).
///
/// # Example
///
/// ```
/// use bgp_types::Asn;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let sprint: Asn = "1239".parse()?;
/// assert_eq!(sprint, Asn(1239));
/// assert!(!sprint.is_private());
/// assert!(Asn(64_512).is_private());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// Largest 2-octet AS number (the only kind that existed in 2001).
    pub const MAX_16BIT: Asn = Asn(65_535);

    /// First private-use AS number (RFC 1930 reservation, 64512-65534).
    pub const PRIVATE_START: Asn = Asn(64_512);

    /// Last private-use 2-octet AS number.
    pub const PRIVATE_END: Asn = Asn(65_534);

    /// Returns `true` if this is a private-use AS number.
    ///
    /// Private AS numbers are used by organizations that peer with their ISPs
    /// without a globally unique number; ISPs strip them on egress ("ASE",
    /// §3.2 of the paper), which is one legitimate cause of MOAS.
    #[must_use]
    pub fn is_private(self) -> bool {
        (Self::PRIVATE_START..=Self::PRIVATE_END).contains(&self)
    }

    /// Returns `true` if the number fits in the 2-octet space of 2001-era BGP.
    #[must_use]
    pub fn is_16bit(self) -> bool {
        self <= Self::MAX_16BIT
    }

    /// The raw numeric value.
    #[must_use]
    pub fn value(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(value: u32) -> Self {
        Asn(value)
    }
}

impl From<u16> for Asn {
    fn from(value: u16) -> Self {
        Asn(u32::from(value))
    }
}

impl From<Asn> for u32 {
    fn from(asn: Asn) -> Self {
        asn.0
    }
}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Parses either a bare number (`"1239"`) or the display form (`"AS1239"`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix("AS").unwrap_or(s);
        digits.parse::<u32>().map(Asn).map_err(|_| ParseAsnError {
            input: s.to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_through_from_str() {
        for raw in [0u32, 1, 1239, 64_511, 64_512, 65_534, 65_535, 400_000] {
            let asn = Asn(raw);
            let shown = asn.to_string();
            assert_eq!(shown.parse::<Asn>().unwrap(), asn);
        }
    }

    #[test]
    fn parses_bare_number() {
        assert_eq!("8584".parse::<Asn>().unwrap(), Asn(8584));
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("AS".parse::<Asn>().is_err());
        assert!("ASx".parse::<Asn>().is_err());
        assert!("-1".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err());
    }

    #[test]
    fn private_range_bounds() {
        assert!(!Asn(64_511).is_private());
        assert!(Asn(64_512).is_private());
        assert!(Asn(65_534).is_private());
        assert!(!Asn(65_535).is_private());
    }

    #[test]
    fn sixteen_bit_boundary() {
        assert!(Asn(65_535).is_16bit());
        assert!(!Asn(65_536).is_16bit());
    }

    #[test]
    fn conversions() {
        assert_eq!(Asn::from(7u16), Asn(7));
        assert_eq!(Asn::from(7u32), Asn(7));
        assert_eq!(u32::from(Asn(7)), 7);
    }

    #[test]
    fn ordering_matches_numeric_ordering() {
        assert!(Asn(1) < Asn(2));
        assert!(Asn(65_535) < Asn(65_536));
    }
}
