//! BGP UPDATE messages.

use std::fmt;

use crate::{Ipv4Prefix, Route};

/// A BGP UPDATE message exchanged between peers.
///
/// Normalized to one prefix per message: either an announcement carrying a
/// [`Route`], or a withdrawal of a previously announced prefix.
///
/// # Example
///
/// ```
/// use bgp_types::{AsPath, Asn, Ipv4Prefix, Route, Update};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prefix: Ipv4Prefix = "208.8.0.0/16".parse()?;
/// let announce = Update::announce(Route::new(prefix, AsPath::origination(Asn(4))));
/// assert_eq!(announce.prefix(), prefix);
/// assert!(announce.route().is_some());
///
/// let withdraw = Update::withdraw(prefix);
/// assert!(withdraw.is_withdrawal());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Update {
    /// Announce (or replace) a route to the contained prefix.
    Announce(Route),
    /// Withdraw reachability to the prefix.
    Withdraw(Ipv4Prefix),
}

impl Update {
    /// Builds an announcement update.
    #[must_use]
    pub fn announce(route: Route) -> Self {
        Update::Announce(route)
    }

    /// Builds a withdrawal update.
    #[must_use]
    pub fn withdraw(prefix: Ipv4Prefix) -> Self {
        Update::Withdraw(prefix)
    }

    /// The prefix the update concerns.
    #[must_use]
    pub fn prefix(&self) -> Ipv4Prefix {
        match self {
            Update::Announce(route) => route.prefix(),
            Update::Withdraw(prefix) => *prefix,
        }
    }

    /// The announced route, or `None` for a withdrawal.
    #[must_use]
    pub fn route(&self) -> Option<&Route> {
        match self {
            Update::Announce(route) => Some(route),
            Update::Withdraw(_) => None,
        }
    }

    /// Returns `true` for a withdrawal.
    #[must_use]
    pub fn is_withdrawal(&self) -> bool {
        matches!(self, Update::Withdraw(_))
    }
}

impl From<Route> for Update {
    fn from(route: Route) -> Self {
        Update::Announce(route)
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::Announce(route) => write!(f, "announce {route}"),
            Update::Withdraw(prefix) => write!(f, "withdraw {prefix}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AsPath, Asn};

    fn prefix() -> Ipv4Prefix {
        "192.0.2.0/24".parse().unwrap()
    }

    #[test]
    fn announce_carries_route() {
        let u = Update::announce(Route::new(prefix(), AsPath::origination(Asn(1))));
        assert!(!u.is_withdrawal());
        assert_eq!(u.prefix(), prefix());
        assert_eq!(u.route().unwrap().origin_as(), Some(Asn(1)));
    }

    #[test]
    fn withdraw_has_no_route() {
        let u = Update::withdraw(prefix());
        assert!(u.is_withdrawal());
        assert_eq!(u.prefix(), prefix());
        assert!(u.route().is_none());
    }

    #[test]
    fn from_route_is_announce() {
        let u: Update = Route::new(prefix(), AsPath::origination(Asn(1))).into();
        assert!(!u.is_withdrawal());
    }

    #[test]
    fn display_distinguishes_kinds() {
        let a = Update::announce(Route::new(prefix(), AsPath::origination(Asn(1))));
        let w = Update::withdraw(prefix());
        assert!(a.to_string().starts_with("announce"));
        assert!(w.to_string().starts_with("withdraw"));
    }
}
