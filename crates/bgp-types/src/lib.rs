//! BGP primitives for the MOAS reproduction.
//!
//! This crate provides the data model shared by every other crate in the
//! workspace: autonomous-system numbers ([`Asn`]), IPv4 address prefixes
//! ([`Ipv4Prefix`]), AS paths ([`AsPath`]) with `AS_SEQUENCE`/`AS_SET`
//! segments, BGP community attributes ([`Community`]), the MOAS list
//! ([`MoasList`]) proposed by the paper, and route/update message types
//! ([`Route`], [`Update`]).
//!
//! The types follow the wire-level semantics of BGP-4 (RFC 1771/4271) at the
//! granularity needed for AS-level simulation: attribute octets are modeled,
//! but TCP sessions and finite-state machines are not.
//!
//! # Example
//!
//! ```
//! use bgp_types::{Asn, AsPath, Ipv4Prefix, MoasList, Route};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let prefix: Ipv4Prefix = "10.2.0.0/16".parse()?;
//! let path = AsPath::from_sequence([Asn(40), Asn(2260)]);
//! assert_eq!(path.origin(), Some(Asn(2260)));
//!
//! // A prefix multi-homed to AS 40 and AS 2260 carries a MOAS list naming both.
//! let list = MoasList::from_iter([Asn(40), Asn(2260)]);
//! let route = Route::new(prefix, path).with_moas_list(list);
//! assert!(route.moas_list().is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod as_path;
mod asn;
mod community;
mod error;
mod intern;
mod moas_list;
mod prefix;
mod route;
mod trie;
mod update;

pub use as_path::{AsPath, AsPathSegment};
pub use asn::Asn;
pub use community::{Community, MOAS_LIST_VALUE};
pub use error::{ParseAsPathError, ParseAsnError, ParsePrefixError};
pub use intern::Interner;
pub use moas_list::MoasList;
pub use prefix::{Ipv4Prefix, Ipv6Prefix};
pub use route::{Route, RouteOrigin};
pub use trie::PrefixTrie;
pub use update::Update;
