//! IPv4 and IPv6 address prefixes.

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

use crate::error::ParsePrefixError;

/// An IPv4 address prefix in canonical (host-bits-zeroed) form.
///
/// The prefix is the unit of routing in BGP: every announcement and every
/// MOAS conflict in the paper is about a specific prefix such as
/// `208.8.0.0/16`. The constructor masks off host bits, so two prefixes
/// compare equal exactly when they denote the same address block.
///
/// # Example
///
/// ```
/// use bgp_types::Ipv4Prefix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Ipv4Prefix = "208.8.1.9/16".parse()?;
/// assert_eq!(p.to_string(), "208.8.0.0/16");
/// let sub: Ipv4Prefix = "208.8.4.0/24".parse()?;
/// assert!(p.contains(sub));
/// assert!(sub.is_more_specific_of(p));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Prefix {
    addr: u32,
    len: u8,
}

impl Ipv4Prefix {
    /// The default route, `0.0.0.0/0`.
    pub const DEFAULT: Ipv4Prefix = Ipv4Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a raw 32-bit address and a length, masking host
    /// bits so the result is canonical.
    ///
    /// # Panics
    ///
    /// Panics if `len > 32`. Use [`Ipv4Prefix::try_new`] for fallible
    /// construction from untrusted input.
    #[must_use]
    pub fn new(addr: u32, len: u8) -> Self {
        Self::try_new(addr, len).expect("prefix length exceeds 32")
    }

    /// Fallible variant of [`Ipv4Prefix::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ParsePrefixError::LengthOutOfRange`] if `len > 32`.
    pub fn try_new(addr: u32, len: u8) -> Result<Self, ParsePrefixError> {
        if len > 32 {
            return Err(ParsePrefixError::LengthOutOfRange(len));
        }
        Ok(Ipv4Prefix {
            addr: addr & Self::mask(len),
            len,
        })
    }

    /// The network mask for a given prefix length.
    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// The (canonical) network address as a raw 32-bit value.
    #[must_use]
    pub fn network(self) -> u32 {
        self.addr
    }

    /// The prefix length in bits.
    // `len` is the CIDR mask width, not a collection size; an `is_empty`
    // counterpart would be meaningless.
    #[allow(clippy::len_without_is_empty)]
    #[must_use]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length default route.
    #[must_use]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `other` falls inside this prefix (including equality).
    #[must_use]
    pub fn contains(self, other: Ipv4Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Returns `true` if this prefix is a strictly more-specific (longer)
    /// prefix inside `other`.
    ///
    /// A hijacker announcing a more-specific of a victim's prefix wins
    /// longest-match forwarding even when the victim's route is still present;
    /// §4.3 of the paper notes the MOAS list does not defend against this.
    #[must_use]
    pub fn is_more_specific_of(self, other: Ipv4Prefix) -> bool {
        self.len > other.len && other.contains(self)
    }

    /// Returns `true` if the two prefixes overlap (one contains the other).
    #[must_use]
    pub fn overlaps(self, other: Ipv4Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }

    /// Splits the prefix into its two halves, each one bit longer.
    ///
    /// Returns `None` when the prefix is already a /32 host route. Used by
    /// workload generators to de-aggregate blocks the way the 1997 "AS 7007"
    /// style de-aggregation fault did.
    #[must_use]
    pub fn split(self) -> Option<(Ipv4Prefix, Ipv4Prefix)> {
        if self.len >= 32 {
            return None;
        }
        let child_len = self.len + 1;
        let low = Ipv4Prefix::new(self.addr, child_len);
        let high = Ipv4Prefix::new(self.addr | (1 << (32 - u32::from(child_len))), child_len);
        Some((low, high))
    }

    /// The immediately covering prefix, one bit shorter.
    ///
    /// Returns `None` for the default route.
    #[must_use]
    pub fn parent(self) -> Option<Ipv4Prefix> {
        if self.len == 0 {
            None
        } else {
            Some(Ipv4Prefix::new(self.addr, self.len - 1))
        }
    }
}

impl fmt::Display for Ipv4Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv4Addr::from(self.addr), self.len)
    }
}

impl From<(Ipv4Addr, u8)> for Ipv4Prefix {
    /// Converts, masking host bits; saturates lengths above 32 to 32.
    fn from((addr, len): (Ipv4Addr, u8)) -> Self {
        Ipv4Prefix::new(u32::from(addr), len.min(32))
    }
}

impl FromStr for Ipv4Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError::Syntax(s.to_owned()))?;
        let addr: Ipv4Addr = addr_part
            .parse()
            .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
        let len: u8 = len_part
            .parse()
            .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
        Ipv4Prefix::try_new(u32::from(addr), len)
    }
}

/// An IPv6 address prefix in canonical (host-bits-zeroed) form.
///
/// The IPv6 counterpart of [`Ipv4Prefix`], carried by the multiprotocol
/// attributes (RFC 4760) rather than the classic UPDATE NLRI field. The
/// detector's tables remain IPv4-only for now; this type exists so the wire
/// codecs can decode IPv6 reachability without discarding it.
///
/// # Example
///
/// ```
/// use bgp_types::Ipv6Prefix;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p: Ipv6Prefix = "2001:db8::1/32".parse()?;
/// assert_eq!(p.to_string(), "2001:db8::/32");
/// let sub: Ipv6Prefix = "2001:db8:4::/48".parse()?;
/// assert!(p.contains(sub));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv6Prefix {
    addr: u128,
    len: u8,
}

impl Ipv6Prefix {
    /// The default route, `::/0`.
    pub const DEFAULT: Ipv6Prefix = Ipv6Prefix { addr: 0, len: 0 };

    /// Creates a prefix from a raw 128-bit address and a length, masking
    /// host bits so the result is canonical.
    ///
    /// # Panics
    ///
    /// Panics if `len > 128`. Use [`Ipv6Prefix::try_new`] for fallible
    /// construction from untrusted input.
    #[must_use]
    pub fn new(addr: u128, len: u8) -> Self {
        Self::try_new(addr, len).expect("prefix length exceeds 128")
    }

    /// Fallible variant of [`Ipv6Prefix::new`].
    ///
    /// # Errors
    ///
    /// Returns [`ParsePrefixError::LengthOutOfRange`] if `len > 128`.
    pub fn try_new(addr: u128, len: u8) -> Result<Self, ParsePrefixError> {
        if len > 128 {
            return Err(ParsePrefixError::LengthOutOfRange(len));
        }
        Ok(Ipv6Prefix {
            addr: addr & Self::mask(len),
            len,
        })
    }

    /// The network mask for a given prefix length.
    fn mask(len: u8) -> u128 {
        if len == 0 {
            0
        } else {
            u128::MAX << (128 - u32::from(len))
        }
    }

    /// The (canonical) network address as a raw 128-bit value.
    #[must_use]
    pub fn network(self) -> u128 {
        self.addr
    }

    /// The prefix length in bits.
    // `len` is the CIDR mask width, not a collection size; an `is_empty`
    // counterpart would be meaningless.
    #[allow(clippy::len_without_is_empty)]
    #[must_use]
    pub fn len(self) -> u8 {
        self.len
    }

    /// Returns `true` for the zero-length default route.
    #[must_use]
    pub fn is_default(self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `other` falls inside this prefix (including equality).
    #[must_use]
    pub fn contains(self, other: Ipv6Prefix) -> bool {
        other.len >= self.len && (other.addr & Self::mask(self.len)) == self.addr
    }

    /// Returns `true` if the two prefixes overlap (one contains the other).
    #[must_use]
    pub fn overlaps(self, other: Ipv6Prefix) -> bool {
        self.contains(other) || other.contains(self)
    }
}

impl fmt::Display for Ipv6Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", Ipv6Addr::from(self.addr), self.len)
    }
}

impl From<(Ipv6Addr, u8)> for Ipv6Prefix {
    /// Converts, masking host bits; saturates lengths above 128 to 128.
    fn from((addr, len): (Ipv6Addr, u8)) -> Self {
        Ipv6Prefix::new(u128::from(addr), len.min(128))
    }
}

impl FromStr for Ipv6Prefix {
    type Err = ParsePrefixError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr_part, len_part) = s
            .split_once('/')
            .ok_or_else(|| ParsePrefixError::Syntax(s.to_owned()))?;
        let addr: Ipv6Addr = addr_part
            .parse()
            .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
        let len: u8 = len_part
            .parse()
            .map_err(|_| ParsePrefixError::Syntax(s.to_owned()))?;
        Ipv6Prefix::try_new(u128::from(addr), len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn p6(s: &str) -> Ipv6Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        assert_eq!(p("10.1.2.3/8"), p("10.0.0.0/8"));
        assert_eq!(p("10.1.2.3/8").to_string(), "10.0.0.0/8");
    }

    #[test]
    fn zero_length_default_route() {
        assert_eq!(p("1.2.3.4/0"), Ipv4Prefix::DEFAULT);
        assert!(Ipv4Prefix::DEFAULT.is_default());
        assert!(Ipv4Prefix::DEFAULT.contains(p("192.0.2.0/24")));
    }

    #[test]
    fn contains_and_more_specific() {
        assert!(p("10.0.0.0/8").contains(p("10.5.0.0/16")));
        assert!(!p("10.5.0.0/16").contains(p("10.0.0.0/8")));
        assert!(p("10.0.0.0/8").contains(p("10.0.0.0/8")));
        assert!(p("10.5.0.0/16").is_more_specific_of(p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").is_more_specific_of(p("10.0.0.0/8")));
        assert!(!p("11.0.0.0/16").is_more_specific_of(p("10.0.0.0/8")));
    }

    #[test]
    fn overlap_is_symmetric() {
        assert!(p("10.0.0.0/8").overlaps(p("10.9.0.0/16")));
        assert!(p("10.9.0.0/16").overlaps(p("10.0.0.0/8")));
        assert!(!p("10.0.0.0/8").overlaps(p("11.0.0.0/8")));
    }

    #[test]
    fn split_and_parent_invert() {
        let parent = p("192.0.2.0/24");
        let (low, high) = parent.split().unwrap();
        assert_eq!(low, p("192.0.2.0/25"));
        assert_eq!(high, p("192.0.2.128/25"));
        assert_eq!(low.parent().unwrap(), parent);
        assert_eq!(high.parent().unwrap(), parent);
        assert!(p("1.1.1.1/32").split().is_none());
        assert!(Ipv4Prefix::DEFAULT.parent().is_none());
    }

    #[test]
    fn rejects_bad_syntax() {
        assert!("10.0.0.0".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Ipv4Prefix>().is_err());
        assert!("10.0.0.0/x".parse::<Ipv4Prefix>().is_err());
        assert_eq!(
            "10.0.0.0/40".parse::<Ipv4Prefix>(),
            Err(ParsePrefixError::LengthOutOfRange(40))
        );
    }

    #[test]
    fn display_round_trips() {
        for s in ["0.0.0.0/0", "10.0.0.0/8", "192.0.2.128/25", "1.2.3.4/32"] {
            assert_eq!(p(s).to_string(), s);
        }
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![p("10.0.0.0/8"), p("9.0.0.0/8"), p("10.0.0.0/16")];
        v.sort();
        assert_eq!(v, vec![p("9.0.0.0/8"), p("10.0.0.0/8"), p("10.0.0.0/16")]);
    }

    #[test]
    fn v6_canonicalizes_host_bits() {
        assert_eq!(p6("2001:db8::dead:beef/32"), p6("2001:db8::/32"));
        assert_eq!(p6("2001:db8::dead:beef/32").to_string(), "2001:db8::/32");
        assert_eq!(p6("::/0"), Ipv6Prefix::DEFAULT);
        assert!(Ipv6Prefix::DEFAULT.is_default());
    }

    #[test]
    fn v6_contains_and_overlaps() {
        assert!(p6("2001:db8::/32").contains(p6("2001:db8:5::/48")));
        assert!(!p6("2001:db8:5::/48").contains(p6("2001:db8::/32")));
        assert!(p6("2001:db8::/32").overlaps(p6("2001:db8:9::/48")));
        assert!(!p6("2001:db8::/32").overlaps(p6("2001:db9::/32")));
        assert!(Ipv6Prefix::DEFAULT.contains(p6("::1/128")));
    }

    #[test]
    fn v6_rejects_bad_syntax() {
        assert!("2001:db8::".parse::<Ipv6Prefix>().is_err());
        assert!("2001:db8::/x".parse::<Ipv6Prefix>().is_err());
        assert_eq!(
            "2001:db8::/129".parse::<Ipv6Prefix>(),
            Err(ParsePrefixError::LengthOutOfRange(129))
        );
    }

    #[test]
    fn v6_display_round_trips() {
        for s in ["::/0", "2001:db8::/32", "::1/128", "fe80::/10"] {
            assert_eq!(p6(s).to_string(), s);
        }
    }
}
