//! Error types for parsing BGP primitives.

use std::error::Error;
use std::fmt;

/// Error returned when parsing an [`Asn`](crate::Asn) from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError {
    pub(crate) input: String,
}

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS number syntax: {:?}", self.input)
    }
}

impl Error for ParseAsnError {}

/// Error returned when parsing an [`Ipv4Prefix`](crate::Ipv4Prefix) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParsePrefixError {
    /// The string was not of the form `a.b.c.d/len`.
    Syntax(String),
    /// The prefix length was greater than 32.
    LengthOutOfRange(u8),
}

impl fmt::Display for ParsePrefixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParsePrefixError::Syntax(s) => write!(f, "invalid IPv4 prefix syntax: {s:?}"),
            ParsePrefixError::LengthOutOfRange(len) => {
                write!(f, "prefix length {len} exceeds 32")
            }
        }
    }
}

impl Error for ParsePrefixError {}

/// Error returned when parsing an [`AsPath`](crate::AsPath) fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsPathError {
    pub(crate) input: String,
}

impl fmt::Display for ParseAsPathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid AS path syntax: {:?}", self.input)
    }
}

impl Error for ParseAsPathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ParseAsnError { input: "x".into() };
        assert!(e.to_string().starts_with("invalid AS number"));
        let e = ParsePrefixError::Syntax("nope".into());
        assert!(e.to_string().contains("nope"));
        let e = ParsePrefixError::LengthOutOfRange(40);
        assert!(e.to_string().contains("40"));
        let e = ParseAsPathError {
            input: "a b".into(),
        };
        assert!(e.to_string().contains("a b"));
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<ParseAsnError>();
        assert_err::<ParsePrefixError>();
        assert_err::<ParseAsPathError>();
    }
}
