//! Hash-consing of decoded attribute values.
//!
//! A RIB dump repeats the same handful of AS paths and community lists
//! across hundreds of thousands of routes. Decoding each occurrence into an
//! owned value allocates the same bytes over and over; the ingest path
//! instead keys each occurrence's *wire bytes* into an [`Interner`] and
//! materialises the owned value only on the first sighting. Every later
//! sighting is one hash-and-compare over borrowed bytes — zero allocation.

/// A byte-keyed intern table: maps a byte string to a value of type `T`,
/// building the value at most once per distinct key.
///
/// Dependency-free by design (the workspace is offline): open addressing
/// with linear probing over FNV-1a hashes, resized at 75% load. Lookups on
/// a hit borrow the key — only a miss copies the key bytes and builds `T`.
///
/// # Example
///
/// ```
/// use bgp_types::Interner;
///
/// let mut paths: Interner<String> = Interner::new();
/// let mut builds = 0;
/// for _ in 0..3 {
///     paths.intern(b"40 2260", |bytes| {
///         builds += 1;
///         String::from_utf8_lossy(bytes).into_owned()
///     });
/// }
/// assert_eq!(builds, 1, "value built once, then shared");
/// assert_eq!(paths.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Interner<T> {
    /// Open-addressed probe table of indices into `entries` (`EMPTY` = free).
    slots: Vec<u32>,
    /// Insertion-ordered storage: (key hash, key bytes, value).
    entries: Vec<(u64, Box<[u8]>, T)>,
}

/// Slot sentinel for "unoccupied".
const EMPTY: u32 = u32::MAX;

/// FNV-1a offset basis / prime (64-bit variant).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl<T> Interner<T> {
    /// Creates an empty intern table.
    #[must_use]
    pub fn new() -> Self {
        Interner {
            slots: vec![EMPTY; 16],
            entries: Vec::new(),
        }
    }

    /// Number of distinct keys interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns the value for `key`, building it with `make` only if this is
    /// the first time the key is seen. The hot path (a repeat key) performs
    /// no allocation: one hash over the borrowed bytes plus a probe.
    pub fn intern(&mut self, key: &[u8], make: impl FnOnce(&[u8]) -> T) -> &T {
        let hash = fnv1a(key);
        let mut slot = self.probe(hash, key);
        if self.slots[slot] == EMPTY {
            if self.entries.len() + 1 > self.slots.len() * 3 / 4 {
                self.grow();
                slot = self.probe(hash, key);
            }
            let value = make(key);
            debug_assert!(self.entries.len() < EMPTY as usize);
            self.slots[slot] = self.entries.len() as u32;
            self.entries.push((hash, key.into(), value));
        }
        &self.entries[self.slots[slot] as usize].2
    }

    /// Finds the slot holding `key`, or the empty slot where it belongs.
    fn probe(&self, hash: u64, key: &[u8]) -> usize {
        let mask = self.slots.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let idx = self.slots[slot];
            if idx == EMPTY {
                return slot;
            }
            let (entry_hash, entry_key, _) = &self.entries[idx as usize];
            if *entry_hash == hash && **entry_key == *key {
                return slot;
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Doubles the probe table and re-seats every entry.
    fn grow(&mut self) {
        let new_len = self.slots.len() * 2;
        let mask = new_len - 1;
        let mut slots = vec![EMPTY; new_len];
        for (idx, (hash, _, _)) in self.entries.iter().enumerate() {
            let mut slot = (*hash as usize) & mask;
            while slots[slot] != EMPTY {
                slot = (slot + 1) & mask;
            }
            slots[slot] = idx as u32;
        }
        self.slots = slots;
    }
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_each_distinct_key_once() {
        let mut interner: Interner<Vec<u8>> = Interner::new();
        let mut builds = 0;
        for round in 0..3 {
            for key in [b"alpha".as_slice(), b"beta", b"", b"alpha"] {
                let value = interner.intern(key, |k| {
                    builds += 1;
                    k.to_vec()
                });
                assert_eq!(value.as_slice(), key, "round {round}");
            }
        }
        assert_eq!(builds, 3);
        assert_eq!(interner.len(), 3);
        assert!(!interner.is_empty());
    }

    #[test]
    fn survives_growth_past_initial_capacity() {
        let mut interner: Interner<u32> = Interner::new();
        // Far past the 16-slot initial table: forces several doublings.
        for i in 0..500u32 {
            let key = i.to_be_bytes();
            assert_eq!(*interner.intern(&key, |_| i), i);
        }
        assert_eq!(interner.len(), 500);
        // Every key still resolves to its original value after rehashing.
        for i in 0..500u32 {
            let key = i.to_be_bytes();
            assert_eq!(*interner.intern(&key, |_| panic!("rebuilt {i}")), i);
        }
        assert_eq!(interner.len(), 500);
    }

    #[test]
    fn distinguishes_keys_with_same_fnv_prefix() {
        // Keys that extend one another must not collide.
        let mut interner: Interner<usize> = Interner::new();
        let keys: [&[u8]; 4] = [b"", b"a", b"ab", b"abc"];
        for (i, key) in keys.iter().enumerate() {
            interner.intern(key, |_| i);
        }
        for (i, key) in keys.iter().enumerate() {
            assert_eq!(*interner.intern(key, |_| usize::MAX), i);
        }
    }
}
