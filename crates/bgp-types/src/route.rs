//! BGP routes.

use std::fmt;

use crate::{AsPath, Asn, Community, Ipv4Prefix, MoasList};

/// The value of the BGP `ORIGIN` attribute: how the originating AS learned
/// the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum RouteOrigin {
    /// Learned from an interior gateway protocol (`ORIGIN=IGP`).
    #[default]
    Igp,
    /// Learned from EGP (`ORIGIN=EGP`); historical.
    Egp,
    /// Learned by other means, e.g. redistribution of static configuration
    /// (`ORIGIN=INCOMPLETE`). Static-configured multihoming (§3.2) produces
    /// this origin code at the announcing ISP.
    Incomplete,
}

impl fmt::Display for RouteOrigin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RouteOrigin::Igp => "IGP",
            RouteOrigin::Egp => "EGP",
            RouteOrigin::Incomplete => "INCOMPLETE",
        };
        f.write_str(s)
    }
}

/// A BGP route: a prefix plus the path attributes the reproduction models.
///
/// A route as defined in §1.1: "a list of ASes, called an AS path, followed
/// by a set of IP address prefixes reachable through that AS path" — here
/// normalized to one prefix per route, as simulators conventionally do.
///
/// # Example
///
/// ```
/// use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let prefix: Ipv4Prefix = "208.8.0.0/16".parse()?;
/// let route = Route::new(prefix, AsPath::origination(Asn(40)))
///     .with_moas_list(MoasList::from_iter([Asn(40), Asn(2260)]));
/// assert_eq!(route.origin_as(), Some(Asn(40)));
/// assert_eq!(route.effective_moas_list().unwrap().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Route {
    prefix: Ipv4Prefix,
    as_path: AsPath,
    origin: RouteOrigin,
    local_pref: u32,
    communities: Vec<Community>,
}

/// Default `LOCAL_PREF` applied when none is configured.
pub(crate) const DEFAULT_LOCAL_PREF: u32 = 100;

impl Route {
    /// Creates a route with default attributes (`LOCAL_PREF` 100, origin IGP,
    /// no communities).
    #[must_use]
    pub fn new(prefix: Ipv4Prefix, as_path: AsPath) -> Self {
        Route {
            prefix,
            as_path,
            origin: RouteOrigin::Igp,
            local_pref: DEFAULT_LOCAL_PREF,
            communities: Vec::new(),
        }
    }

    /// The announced prefix.
    #[must_use]
    pub fn prefix(&self) -> Ipv4Prefix {
        self.prefix
    }

    /// The AS path attribute.
    #[must_use]
    pub fn as_path(&self) -> &AsPath {
        &self.as_path
    }

    /// The `ORIGIN` attribute.
    #[must_use]
    pub fn origin(&self) -> RouteOrigin {
        self.origin
    }

    /// The `LOCAL_PREF` attribute.
    #[must_use]
    pub fn local_pref(&self) -> u32 {
        self.local_pref
    }

    /// The attached communities, including any MOAS-list markers.
    #[must_use]
    pub fn communities(&self) -> &[Community] {
        &self.communities
    }

    /// The origin AS — the last AS of the path (§1.1), or `None` for an
    /// aggregate/empty path.
    #[must_use]
    pub fn origin_as(&self) -> Option<Asn> {
        self.as_path.origin()
    }

    /// Sets the `ORIGIN` attribute (builder style).
    #[must_use]
    pub fn with_origin(mut self, origin: RouteOrigin) -> Self {
        self.origin = origin;
        self
    }

    /// Sets `LOCAL_PREF` (builder style).
    #[must_use]
    pub fn with_local_pref(mut self, local_pref: u32) -> Self {
        self.local_pref = local_pref;
        self
    }

    /// Adds a single community (builder style).
    #[must_use]
    pub fn with_community(mut self, community: Community) -> Self {
        self.communities.push(community);
        self
    }

    /// Attaches a MOAS list, replacing any previously attached list but
    /// preserving unrelated communities (builder style).
    #[must_use]
    pub fn with_moas_list(mut self, list: MoasList) -> Self {
        self.set_moas_list(Some(&list));
        self
    }

    /// Replaces the whole community set in place — the primitive behind
    /// per-AS community-handling policies (strip-all, rewrite) that act on
    /// more than the MOAS markers.
    pub fn set_communities(&mut self, communities: Vec<Community>) {
        self.communities = communities;
    }

    /// Replaces the MOAS list in place. `None` strips all MOAS communities —
    /// the "optional transitive attribute dropped by a router" behavior of
    /// §4.3.
    pub fn set_moas_list(&mut self, list: Option<&MoasList>) {
        self.communities.retain(|c| !c.is_moas_member());
        if let Some(list) = list {
            self.communities.extend(list.to_communities());
        }
    }

    /// The explicitly advertised MOAS list, if any MOAS communities are
    /// attached.
    #[must_use]
    pub fn moas_list(&self) -> Option<MoasList> {
        MoasList::from_communities(&self.communities)
    }

    /// The list used in the §4.2 consistency check: the advertised list, or
    /// the implicit `{origin}` list when none is attached (footnote 3).
    ///
    /// Returns `None` only when the route has no well-defined origin (empty
    /// path or trailing `AS_SET`) *and* no advertised list.
    #[must_use]
    pub fn effective_moas_list(&self) -> Option<MoasList> {
        self.moas_list()
            .or_else(|| self.origin_as().map(MoasList::implicit))
    }

    /// Returns the route as propagated by `asn` to an external peer: the AS
    /// prepends itself to the path. Communities are transitive and carried
    /// through unchanged.
    #[must_use]
    pub fn propagated_by(&self, asn: Asn) -> Route {
        let mut out = self.clone();
        out.as_path = self.as_path.prepended(asn);
        out
    }
}

impl fmt::Display for Route {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} path [{}]", self.prefix, self.as_path)?;
        if let Some(list) = self.moas_list() {
            write!(f, " moas {list}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prefix() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    #[test]
    fn new_route_defaults() {
        let r = Route::new(prefix(), AsPath::origination(Asn(4)));
        assert_eq!(r.local_pref(), 100);
        assert_eq!(r.origin(), RouteOrigin::Igp);
        assert!(r.communities().is_empty());
        assert_eq!(r.origin_as(), Some(Asn(4)));
    }

    #[test]
    fn effective_list_falls_back_to_implicit() {
        let r = Route::new(prefix(), AsPath::origination(Asn(4)));
        assert_eq!(r.moas_list(), None);
        assert_eq!(r.effective_moas_list(), Some(MoasList::implicit(Asn(4))));
    }

    #[test]
    fn attached_list_overrides_implicit() {
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        let r = Route::new(prefix(), AsPath::origination(Asn(4))).with_moas_list(list.clone());
        assert_eq!(r.moas_list(), Some(list.clone()));
        assert_eq!(r.effective_moas_list(), Some(list));
    }

    #[test]
    fn set_moas_list_none_strips_markers_only() {
        let list: MoasList = [Asn(4)].into_iter().collect();
        let mut r = Route::new(prefix(), AsPath::origination(Asn(4)))
            .with_community(Community::new(Asn(701), 120))
            .with_moas_list(list);
        r.set_moas_list(None);
        assert_eq!(r.moas_list(), None);
        assert_eq!(r.communities(), &[Community::new(Asn(701), 120)]);
    }

    #[test]
    fn with_moas_list_replaces_previous_list() {
        let first: MoasList = [Asn(1)].into_iter().collect();
        let second: MoasList = [Asn(2), Asn(3)].into_iter().collect();
        let r = Route::new(prefix(), AsPath::origination(Asn(1)))
            .with_moas_list(first)
            .with_moas_list(second.clone());
        assert_eq!(r.moas_list(), Some(second));
    }

    #[test]
    fn propagation_prepends_and_keeps_communities() {
        let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
        let r = Route::new(prefix(), AsPath::origination(Asn(4))).with_moas_list(list.clone());
        let via_y = r.propagated_by(Asn(700));
        assert_eq!(via_y.as_path().to_string(), "700 4");
        assert_eq!(via_y.origin_as(), Some(Asn(4)));
        assert_eq!(via_y.moas_list(), Some(list));
    }

    #[test]
    fn effective_list_none_for_empty_path_without_list() {
        let r = Route::new(prefix(), AsPath::new());
        assert_eq!(r.effective_moas_list(), None);
    }

    #[test]
    fn display_mentions_prefix_path_and_list() {
        let r = Route::new(prefix(), AsPath::origination(Asn(4)))
            .with_moas_list([Asn(4)].into_iter().collect());
        let s = r.to_string();
        assert!(s.contains("208.8.0.0/16"));
        assert!(s.contains('4'));
        assert!(s.contains("moas"));
    }

    #[test]
    fn route_origin_display() {
        assert_eq!(RouteOrigin::Igp.to_string(), "IGP");
        assert_eq!(RouteOrigin::Incomplete.to_string(), "INCOMPLETE");
    }
}
