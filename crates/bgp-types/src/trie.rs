//! A binary prefix trie with longest-match lookup.

use crate::Ipv4Prefix;

/// A longest-prefix-match table: the data structure behind an IP forwarding
/// table (FIB).
///
/// The §4.3 limitation — a hijacker announcing a *more-specific* prefix wins
/// forwarding even though the victim's covering route is intact — is a
/// longest-match phenomenon, so reproducing it end-to-end needs a real FIB.
///
/// # Example
///
/// ```
/// use bgp_types::{Ipv4Prefix, PrefixTrie};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fib: PrefixTrie<&str> = PrefixTrie::new();
/// let covering: Ipv4Prefix = "208.8.0.0/16".parse()?;
/// let hijacked: Ipv4Prefix = "208.8.0.0/17".parse()?;
/// fib.insert(covering, "victim");
/// fib.insert(hijacked, "attacker");
///
/// // 208.8.1.1 falls in the /17: longest match goes to the attacker.
/// let addr = u32::from(std::net::Ipv4Addr::new(208, 8, 1, 1));
/// assert_eq!(fib.longest_match(addr), Some((hijacked, &"attacker")));
///
/// // 208.8.200.1 only matches the /16.
/// let addr = u32::from(std::net::Ipv4Addr::new(208, 8, 200, 1));
/// assert_eq!(fib.longest_match(addr), Some((covering, &"victim")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixTrie<T> {
    root: Node<T>,
    len: usize,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node<T> {
    value: Option<T>,
    children: [Option<Box<Node<T>>>; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [None, None],
        }
    }

    fn is_empty_leaf(&self) -> bool {
        self.value.is_none() && self.children[0].is_none() && self.children[1].is_none()
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        PrefixTrie {
            root: Node::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no prefixes are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (0 = most significant) of an address.
    fn bit(addr: u32, i: u8) -> usize {
        ((addr >> (31 - i)) & 1) as usize
    }

    /// Inserts (or replaces) the value for a prefix, returning the previous
    /// value if the prefix was present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let mut node = &mut self.root;
        for i in 0..prefix.len() {
            let b = Self::bit(prefix.network(), i);
            node = node.children[b].get_or_insert_with(|| Box::new(Node::new()));
        }
        let old = node.value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes a prefix, returning its value if present. Empty branches are
    /// pruned so the trie does not leak nodes under churn.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<T> {
        fn go<T>(node: &mut Node<T>, addr: u32, depth: u8, len: u8) -> Option<T> {
            if depth == len {
                return node.value.take();
            }
            let b = PrefixTrie::<T>::bit(addr, depth);
            let child = node.children[b].as_mut()?;
            let out = go(child, addr, depth + 1, len);
            if child.is_empty_leaf() {
                node.children[b] = None;
            }
            out
        }
        let out = go(&mut self.root, prefix.network(), 0, prefix.len());
        if out.is_some() {
            self.len -= 1;
        }
        out
    }

    /// The value stored for exactly this prefix.
    #[must_use]
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let mut node = &self.root;
        for i in 0..prefix.len() {
            node = node.children[Self::bit(prefix.network(), i)].as_deref()?;
        }
        node.value.as_ref()
    }

    /// Longest-prefix match for a 32-bit destination address: the most
    /// specific stored prefix containing it, with its value.
    #[must_use]
    pub fn longest_match(&self, addr: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut node = &self.root;
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        for depth in 0..=32u8 {
            if let Some(value) = node.value.as_ref() {
                best = Some((Ipv4Prefix::new(addr, depth), value));
            }
            if depth == 32 {
                break;
            }
            match node.children[Self::bit(addr, depth)].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        best
    }

    /// The most specific stored prefix that covers `prefix` (including
    /// `prefix` itself), with its value.
    ///
    /// Unlike [`longest_match`](Self::longest_match) — which matches a host
    /// address and may descend *below* the query — this never returns an
    /// entry more specific than the query prefix. It is the lookup an
    /// origin-validation service needs: an announcement for `10.1.0.0/16`
    /// is judged by the entry for `10.1.0.0/16` if one exists, else by the
    /// closest covering entry (`10.0.0.0/8`, say), never by a stored
    /// `10.1.2.0/24`.
    #[must_use]
    pub fn longest_covering(&self, prefix: Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        self.covering_matches(prefix).pop()
    }

    /// Every stored prefix covering `prefix` (including `prefix` itself),
    /// least-specific first, with its value.
    ///
    /// The final element, if any, is [`longest_covering`](Self::longest_covering);
    /// walking the result in reverse visits covering entries most-specific
    /// first, which is the precedence order for override resolution.
    #[must_use]
    pub fn covering_matches(&self, prefix: Ipv4Prefix) -> Vec<(Ipv4Prefix, &T)> {
        let mut out = Vec::new();
        let mut node = &self.root;
        for depth in 0..=prefix.len() {
            if let Some(value) = node.value.as_ref() {
                out.push((Ipv4Prefix::new(prefix.network(), depth), value));
            }
            if depth == prefix.len() {
                break;
            }
            match node.children[Self::bit(prefix.network(), depth)].as_deref() {
                Some(child) => node = child,
                None => break,
            }
        }
        out
    }

    /// All stored prefixes with their values, most-specific-last within each
    /// branch (pre-order).
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        fn walk<'a, T>(
            node: &'a Node<T>,
            addr: u32,
            depth: u8,
            out: &mut Vec<(Ipv4Prefix, &'a T)>,
        ) {
            if let Some(v) = node.value.as_ref() {
                out.push((Ipv4Prefix::new(addr, depth), v));
            }
            if depth == 32 {
                return;
            }
            if let Some(child) = node.children[0].as_deref() {
                walk(child, addr, depth + 1, out);
            }
            if let Some(child) = node.children[1].as_deref() {
                walk(child, addr | (1 << (31 - depth)), depth + 1, out);
            }
        }
        walk(&self.root, 0, 0, &mut out);
        out.into_iter()
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (prefix, value) in iter {
            trie.insert(prefix, value);
        }
        trie
    }
}

impl<T> Extend<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn extend<I: IntoIterator<Item = (Ipv4Prefix, T)>>(&mut self, iter: I) {
        for (prefix, value) in iter {
            self.insert(prefix, value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_replace() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/16")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, "default");
        assert_eq!(t.longest_match(0), Some((Ipv4Prefix::DEFAULT, &"default")));
        assert_eq!(
            t.longest_match(u32::MAX),
            Some((Ipv4Prefix::DEFAULT, &"default"))
        );
    }

    #[test]
    fn longest_match_prefers_more_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("208.8.0.0/16"), "victim");
        t.insert(p("208.8.0.0/17"), "attacker");
        let low = p("208.8.1.0/24").network();
        let high = p("208.8.200.0/24").network();
        assert_eq!(t.longest_match(low).unwrap().1, &"attacker");
        assert_eq!(t.longest_match(high).unwrap().1, &"victim");
    }

    #[test]
    fn no_match_outside_coverage() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(p("11.0.0.0/8").network()).is_none());
    }

    #[test]
    fn remove_prunes_and_uncovers() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(16));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        let addr = p("10.1.2.0/24").network();
        assert_eq!(t.longest_match(addr).unwrap().1, &8);
    }

    #[test]
    fn host_routes_work() {
        let mut t = PrefixTrie::new();
        let host = p("1.2.3.4/32");
        t.insert(host, "host");
        assert_eq!(t.longest_match(host.network()).unwrap().1, &"host");
        assert!(t.longest_match(host.network() + 1).is_none());
    }

    #[test]
    fn longest_covering_never_descends_below_query() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.2.0/24"), "deep");
        // The /24 covers addresses inside the /16 query but is more specific
        // than it: the covering match must be the /8, not the /24.
        assert_eq!(
            t.longest_covering(p("10.1.0.0/16")),
            Some((p("10.0.0.0/8"), &"eight"))
        );
        // An exact entry wins over a shallower covering one.
        t.insert(p("10.1.0.0/16"), "exact");
        assert_eq!(
            t.longest_covering(p("10.1.0.0/16")),
            Some((p("10.1.0.0/16"), &"exact"))
        );
        assert_eq!(t.longest_covering(p("11.0.0.0/8")), None);
    }

    #[test]
    fn covering_matches_walks_least_specific_first() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let chain: Vec<(Ipv4Prefix, i32)> = t
            .covering_matches(p("10.1.0.0/16"))
            .into_iter()
            .map(|(k, &v)| (k, v))
            .collect();
        assert_eq!(
            chain,
            vec![
                (Ipv4Prefix::DEFAULT, 0),
                (p("10.0.0.0/8"), 8),
                (p("10.1.0.0/16"), 16),
            ]
        );
        assert!(t.covering_matches(p("192.168.0.0/16")).len() == 1); // default only
    }

    #[test]
    fn covering_matches_agrees_with_linear_scan() {
        let prefixes = [
            p("0.0.0.0/0"),
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.128.0/17"),
            p("192.168.0.0/16"),
            p("192.168.1.0/24"),
        ];
        let mut t = PrefixTrie::new();
        for (i, &prefix) in prefixes.iter().enumerate() {
            t.insert(prefix, i);
        }
        for query in [
            "10.0.128.0/20",
            "10.0.0.0/8",
            "192.168.1.64/26",
            "8.8.8.0/24",
        ] {
            let q = p(query);
            let expected: Vec<(Ipv4Prefix, usize)> = {
                let mut covering: Vec<(Ipv4Prefix, usize)> = prefixes
                    .iter()
                    .enumerate()
                    .filter(|(_, pre)| pre.contains(q))
                    .map(|(i, &pre)| (pre, i))
                    .collect();
                covering.sort_by_key(|(pre, _)| pre.len());
                covering
            };
            let got: Vec<(Ipv4Prefix, usize)> = t
                .covering_matches(q)
                .into_iter()
                .map(|(k, &v)| (k, v))
                .collect();
            assert_eq!(got, expected, "query {query}");
            assert_eq!(
                t.longest_covering(q).map(|(k, &v)| (k, v)),
                expected.last().copied(),
                "query {query}"
            );
        }
    }

    #[test]
    fn iter_yields_all_entries() {
        let entries = [
            (p("0.0.0.0/0"), 0),
            (p("10.0.0.0/8"), 1),
            (p("10.128.0.0/9"), 2),
        ];
        let t: PrefixTrie<i32> = entries.into_iter().collect();
        let got: Vec<(Ipv4Prefix, i32)> = t.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(got.len(), 3);
        for e in entries {
            assert!(got.contains(&e));
        }
    }

    #[test]
    fn matches_linear_scan_reference() {
        // Differential check against a brute-force implementation.
        let prefixes = [
            p("0.0.0.0/0"),
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.128.0/17"),
            p("192.168.0.0/16"),
            p("192.168.1.0/24"),
            p("192.168.1.128/25"),
        ];
        let mut t = PrefixTrie::new();
        for (i, &prefix) in prefixes.iter().enumerate() {
            t.insert(prefix, i);
        }
        let probes = [
            "10.0.0.1/32",
            "10.0.200.1/32",
            "10.9.9.9/32",
            "192.168.1.200/32",
            "192.168.1.1/32",
            "192.168.2.1/32",
            "8.8.8.8/32",
        ];
        for probe in probes {
            let addr = p(probe).network();
            let expected = prefixes
                .iter()
                .enumerate()
                .filter(|(_, pre)| pre.contains(p(probe)))
                .max_by_key(|(_, pre)| pre.len())
                .map(|(i, &pre)| (pre, i));
            let got = t.longest_match(addr).map(|(pre, &i)| (pre, i));
            assert_eq!(got, expected, "probe {probe}");
        }
    }
}
