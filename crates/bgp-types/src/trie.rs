//! A binary prefix trie with longest-match lookup.

use crate::Ipv4Prefix;

/// Child-slot sentinel: "no child".
const NIL: u32 = u32::MAX;

/// The root node's index. The arena always holds it.
const ROOT: u32 = 0;

/// A longest-prefix-match table: the data structure behind an IP forwarding
/// table (FIB).
///
/// The §4.3 limitation — a hijacker announcing a *more-specific* prefix wins
/// forwarding even though the victim's covering route is intact — is a
/// longest-match phenomenon, so reproducing it end-to-end needs a real FIB.
///
/// # Representation
///
/// Nodes live in one arena `Vec` and refer to children by `u32` index
/// instead of `Box` pointers: a bulk build touches contiguous memory rather
/// than chasing per-node heap allocations, and dropping the trie frees one
/// allocation instead of walking the tree. Removal prunes empty branches
/// into a free list that later inserts reuse, so the arena does not leak
/// under churn. Equality compares *contents* (the iteration order is
/// canonical), not arena layout, so two tries built in different orders
/// compare equal.
///
/// Sorted bulk loads should go through [`extend_sorted`](Self::extend_sorted),
/// which descends only below the bits each prefix shares with its
/// predecessor instead of re-walking from the root.
///
/// # Example
///
/// ```
/// use bgp_types::{Ipv4Prefix, PrefixTrie};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut fib: PrefixTrie<&str> = PrefixTrie::new();
/// let covering: Ipv4Prefix = "208.8.0.0/16".parse()?;
/// let hijacked: Ipv4Prefix = "208.8.0.0/17".parse()?;
/// fib.insert(covering, "victim");
/// fib.insert(hijacked, "attacker");
///
/// // 208.8.1.1 falls in the /17: longest match goes to the attacker.
/// let addr = u32::from(std::net::Ipv4Addr::new(208, 8, 1, 1));
/// assert_eq!(fib.longest_match(addr), Some((hijacked, &"attacker")));
///
/// // 208.8.200.1 only matches the /16.
/// let addr = u32::from(std::net::Ipv4Addr::new(208, 8, 200, 1));
/// assert_eq!(fib.longest_match(addr), Some((covering, &"victim")));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    free: Vec<u32>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    value: Option<T>,
    children: [u32; 2],
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            value: None,
            children: [NIL, NIL],
        }
    }

    fn is_empty_leaf(&self) -> bool {
        self.value.is_none() && self.children[0] == NIL && self.children[1] == NIL
    }
}

impl<T> PrefixTrie<T> {
    /// Creates an empty table.
    #[must_use]
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of prefixes stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no prefixes are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` (0 = most significant) of an address.
    fn bit(addr: u32, i: u8) -> usize {
        ((addr >> (31 - i)) & 1) as usize
    }

    /// Allocates a fresh (or recycled) node and returns its index.
    fn alloc(&mut self) -> u32 {
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = Node::new();
            idx
        } else {
            debug_assert!(self.nodes.len() < NIL as usize);
            self.nodes.push(Node::new());
            (self.nodes.len() - 1) as u32
        }
    }

    /// Walks to the node at `prefix`'s path, creating nodes as needed, and
    /// returns its index.
    fn walk_or_create(&mut self, mut idx: u32, from_depth: u8, prefix: Ipv4Prefix) -> u32 {
        for i in from_depth..prefix.len() {
            let b = Self::bit(prefix.network(), i);
            let child = self.nodes[idx as usize].children[b];
            idx = if child == NIL {
                let new = self.alloc();
                self.nodes[idx as usize].children[b] = new;
                new
            } else {
                child
            };
        }
        idx
    }

    /// Inserts (or replaces) the value for a prefix, returning the previous
    /// value if the prefix was present.
    pub fn insert(&mut self, prefix: Ipv4Prefix, value: T) -> Option<T> {
        let idx = self.walk_or_create(ROOT, 0, prefix);
        let old = self.nodes[idx as usize].value.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Bulk-inserts entries, exploiting sorted order: consecutive prefixes
    /// share the node path of their common leading bits, so a prefix-sorted
    /// batch descends only below the shared stem instead of re-walking all
    /// `prefix.len()` levels from the root per entry.
    ///
    /// Semantically identical to calling [`insert`](Self::insert) per entry
    /// (later duplicates replace earlier values); unsorted input stays
    /// correct and merely loses the speedup.
    pub fn extend_sorted<I: IntoIterator<Item = (Ipv4Prefix, T)>>(&mut self, entries: I) {
        // stack[d] is the node at depth d along the previously inserted
        // prefix's path; stack[0] is the root.
        let mut stack: Vec<u32> = Vec::with_capacity(33);
        stack.push(ROOT);
        let mut prev = Ipv4Prefix::DEFAULT;
        for (prefix, value) in entries {
            let shared = Self::shared_bits(prev, prefix);
            stack.truncate(usize::from(shared) + 1);
            let mut idx = stack[usize::from(shared)];
            for i in shared..prefix.len() {
                let b = Self::bit(prefix.network(), i);
                let child = self.nodes[idx as usize].children[b];
                idx = if child == NIL {
                    let new = self.alloc();
                    self.nodes[idx as usize].children[b] = new;
                    new
                } else {
                    child
                };
                stack.push(idx);
            }
            if self.nodes[idx as usize].value.replace(value).is_none() {
                self.len += 1;
            }
            prev = prefix;
        }
    }

    /// Leading bits `a` and `b` share, capped at both prefix lengths.
    fn shared_bits(a: Ipv4Prefix, b: Ipv4Prefix) -> u8 {
        let common = (a.network() ^ b.network()).leading_zeros() as u8;
        common.min(a.len()).min(b.len())
    }

    /// Removes a prefix, returning its value if present. Empty branches are
    /// pruned onto the free list so the arena does not grow under churn.
    pub fn remove(&mut self, prefix: Ipv4Prefix) -> Option<T> {
        // Path of (parent index, branch taken) pairs down to the target.
        let mut path = [(ROOT, 0usize); 32];
        let mut idx = ROOT;
        for i in 0..prefix.len() {
            let b = Self::bit(prefix.network(), i);
            let child = self.nodes[idx as usize].children[b];
            if child == NIL {
                return None;
            }
            path[usize::from(i)] = (idx, b);
            idx = child;
        }
        let out = self.nodes[idx as usize].value.take()?;
        self.len -= 1;
        let mut depth = prefix.len();
        while depth > 0 && self.nodes[idx as usize].is_empty_leaf() {
            let (parent, b) = path[usize::from(depth - 1)];
            self.nodes[parent as usize].children[b] = NIL;
            self.free.push(idx);
            idx = parent;
            depth -= 1;
        }
        Some(out)
    }

    /// The value stored for exactly this prefix.
    #[must_use]
    pub fn get(&self, prefix: Ipv4Prefix) -> Option<&T> {
        let mut idx = ROOT;
        for i in 0..prefix.len() {
            let child = self.nodes[idx as usize].children[Self::bit(prefix.network(), i)];
            if child == NIL {
                return None;
            }
            idx = child;
        }
        self.nodes[idx as usize].value.as_ref()
    }

    /// Longest-prefix match for a 32-bit destination address: the most
    /// specific stored prefix containing it, with its value.
    #[must_use]
    pub fn longest_match(&self, addr: u32) -> Option<(Ipv4Prefix, &T)> {
        let mut idx = ROOT;
        let mut best: Option<(Ipv4Prefix, &T)> = None;
        for depth in 0..=32u8 {
            let node = &self.nodes[idx as usize];
            if let Some(value) = node.value.as_ref() {
                best = Some((Ipv4Prefix::new(addr, depth), value));
            }
            if depth == 32 {
                break;
            }
            let child = node.children[Self::bit(addr, depth)];
            if child == NIL {
                break;
            }
            idx = child;
        }
        best
    }

    /// The most specific stored prefix that covers `prefix` (including
    /// `prefix` itself), with its value.
    ///
    /// Unlike [`longest_match`](Self::longest_match) — which matches a host
    /// address and may descend *below* the query — this never returns an
    /// entry more specific than the query prefix. It is the lookup an
    /// origin-validation service needs: an announcement for `10.1.0.0/16`
    /// is judged by the entry for `10.1.0.0/16` if one exists, else by the
    /// closest covering entry (`10.0.0.0/8`, say), never by a stored
    /// `10.1.2.0/24`.
    #[must_use]
    pub fn longest_covering(&self, prefix: Ipv4Prefix) -> Option<(Ipv4Prefix, &T)> {
        self.covering_matches(prefix).pop()
    }

    /// Every stored prefix covering `prefix` (including `prefix` itself),
    /// least-specific first, with its value.
    ///
    /// The final element, if any, is [`longest_covering`](Self::longest_covering);
    /// walking the result in reverse visits covering entries most-specific
    /// first, which is the precedence order for override resolution.
    #[must_use]
    pub fn covering_matches(&self, prefix: Ipv4Prefix) -> Vec<(Ipv4Prefix, &T)> {
        let mut out = Vec::new();
        let mut idx = ROOT;
        for depth in 0..=prefix.len() {
            let node = &self.nodes[idx as usize];
            if let Some(value) = node.value.as_ref() {
                out.push((Ipv4Prefix::new(prefix.network(), depth), value));
            }
            if depth == prefix.len() {
                break;
            }
            let child = node.children[Self::bit(prefix.network(), depth)];
            if child == NIL {
                break;
            }
            idx = child;
        }
        out
    }

    /// All stored prefixes with their values, most-specific-last within each
    /// branch (pre-order). The order is canonical: it depends only on the
    /// stored contents, never on insertion or removal history.
    pub fn iter(&self) -> impl Iterator<Item = (Ipv4Prefix, &T)> {
        let mut out = Vec::with_capacity(self.len);
        self.walk(ROOT, 0, 0, &mut out);
        out.into_iter()
    }

    fn walk<'a>(&'a self, idx: u32, addr: u32, depth: u8, out: &mut Vec<(Ipv4Prefix, &'a T)>) {
        let node = &self.nodes[idx as usize];
        if let Some(v) = node.value.as_ref() {
            out.push((Ipv4Prefix::new(addr, depth), v));
        }
        if depth == 32 {
            return;
        }
        if node.children[0] != NIL {
            self.walk(node.children[0], addr, depth + 1, out);
        }
        if node.children[1] != NIL {
            self.walk(node.children[1], addr | (1 << (31 - depth)), depth + 1, out);
        }
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T: PartialEq> PartialEq for PrefixTrie<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl<T: Eq> Eq for PrefixTrie<T> {}

impl<T> FromIterator<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        trie.extend_sorted(iter);
        trie
    }
}

impl<T> Extend<(Ipv4Prefix, T)> for PrefixTrie<T> {
    fn extend<I: IntoIterator<Item = (Ipv4Prefix, T)>>(&mut self, iter: I) {
        self.extend_sorted(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_get_replace() {
        let mut t = PrefixTrie::new();
        assert!(t.is_empty());
        assert_eq!(t.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(t.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&2));
        assert_eq!(t.get(p("10.0.0.0/16")), None);
    }

    #[test]
    fn default_route_matches_everything() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, "default");
        assert_eq!(t.longest_match(0), Some((Ipv4Prefix::DEFAULT, &"default")));
        assert_eq!(
            t.longest_match(u32::MAX),
            Some((Ipv4Prefix::DEFAULT, &"default"))
        );
    }

    #[test]
    fn longest_match_prefers_more_specific() {
        let mut t = PrefixTrie::new();
        t.insert(p("208.8.0.0/16"), "victim");
        t.insert(p("208.8.0.0/17"), "attacker");
        let low = p("208.8.1.0/24").network();
        let high = p("208.8.200.0/24").network();
        assert_eq!(t.longest_match(low).unwrap().1, &"attacker");
        assert_eq!(t.longest_match(high).unwrap().1, &"victim");
    }

    #[test]
    fn no_match_outside_coverage() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), ());
        assert!(t.longest_match(p("11.0.0.0/8").network()).is_none());
    }

    #[test]
    fn remove_prunes_and_uncovers() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        assert_eq!(t.remove(p("10.1.0.0/16")), Some(16));
        assert_eq!(t.remove(p("10.1.0.0/16")), None);
        assert_eq!(t.len(), 1);
        let addr = p("10.1.2.0/24").network();
        assert_eq!(t.longest_match(addr).unwrap().1, &8);
    }

    #[test]
    fn removal_recycles_nodes() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.1.2.0/24"), 1);
        let allocated = t.nodes.len();
        t.remove(p("10.1.2.0/24"));
        assert_eq!(t.free.len(), allocated - 1, "whole branch pruned");
        // Re-inserting an equally deep prefix reuses the freed nodes.
        t.insert(p("192.168.3.0/24"), 2);
        assert_eq!(t.nodes.len(), allocated, "arena did not grow");
        assert!(t.free.is_empty());
        assert_eq!(t.get(p("192.168.3.0/24")), Some(&2));
    }

    #[test]
    fn equality_ignores_construction_history() {
        let entries = [(p("10.0.0.0/8"), 1), (p("10.1.0.0/16"), 2)];
        let forward: PrefixTrie<i32> = entries.into_iter().collect();
        let mut churned = PrefixTrie::new();
        churned.insert(p("192.168.0.0/16"), 9);
        churned.insert(p("10.1.0.0/16"), 2);
        churned.insert(p("10.0.0.0/8"), 1);
        churned.remove(p("192.168.0.0/16"));
        assert_eq!(forward, churned);
        churned.insert(p("10.1.0.0/16"), 3);
        assert_ne!(forward, churned);
    }

    #[test]
    fn extend_sorted_matches_per_entry_insert() {
        let entries = [
            (p("0.0.0.0/0"), 0),
            (p("10.0.0.0/8"), 1),
            (p("10.0.0.0/16"), 2),
            (p("10.0.128.0/17"), 3),
            (p("10.1.0.0/16"), 4),
            (p("192.168.0.0/16"), 5),
            (p("192.168.1.0/24"), 6),
        ];
        let mut batched = PrefixTrie::new();
        batched.extend_sorted(entries);
        let mut individual = PrefixTrie::new();
        for (prefix, value) in entries {
            individual.insert(prefix, value);
        }
        assert_eq!(batched, individual);
        assert_eq!(batched.len(), entries.len());

        // Unsorted input (and duplicates, last wins) stays correct.
        let mut shuffled = PrefixTrie::new();
        shuffled.extend_sorted([
            (p("192.168.1.0/24"), 0),
            (p("10.0.0.0/16"), 2),
            (p("192.168.1.0/24"), 6),
            (p("0.0.0.0/0"), 0),
            (p("10.0.128.0/17"), 3),
            (p("10.0.0.0/8"), 1),
            (p("10.1.0.0/16"), 4),
            (p("192.168.0.0/16"), 5),
        ]);
        assert_eq!(shuffled, individual);
    }

    #[test]
    fn extend_sorted_into_populated_trie() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1);
        t.extend_sorted([(p("10.0.0.0/8"), 10), (p("10.2.0.0/16"), 20)]);
        assert_eq!(t.get(p("10.0.0.0/8")), Some(&10));
        assert_eq!(t.get(p("10.2.0.0/16")), Some(&20));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn host_routes_work() {
        let mut t = PrefixTrie::new();
        let host = p("1.2.3.4/32");
        t.insert(host, "host");
        assert_eq!(t.longest_match(host.network()).unwrap().1, &"host");
        assert!(t.longest_match(host.network() + 1).is_none());
    }

    #[test]
    fn longest_covering_never_descends_below_query() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), "eight");
        t.insert(p("10.1.2.0/24"), "deep");
        // The /24 covers addresses inside the /16 query but is more specific
        // than it: the covering match must be the /8, not the /24.
        assert_eq!(
            t.longest_covering(p("10.1.0.0/16")),
            Some((p("10.0.0.0/8"), &"eight"))
        );
        // An exact entry wins over a shallower covering one.
        t.insert(p("10.1.0.0/16"), "exact");
        assert_eq!(
            t.longest_covering(p("10.1.0.0/16")),
            Some((p("10.1.0.0/16"), &"exact"))
        );
        assert_eq!(t.longest_covering(p("11.0.0.0/8")), None);
    }

    #[test]
    fn covering_matches_walks_least_specific_first() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, 0);
        t.insert(p("10.0.0.0/8"), 8);
        t.insert(p("10.1.0.0/16"), 16);
        t.insert(p("10.1.2.0/24"), 24);
        let chain: Vec<(Ipv4Prefix, i32)> = t
            .covering_matches(p("10.1.0.0/16"))
            .into_iter()
            .map(|(k, &v)| (k, v))
            .collect();
        assert_eq!(
            chain,
            vec![
                (Ipv4Prefix::DEFAULT, 0),
                (p("10.0.0.0/8"), 8),
                (p("10.1.0.0/16"), 16),
            ]
        );
        assert!(t.covering_matches(p("192.168.0.0/16")).len() == 1); // default only
    }

    #[test]
    fn covering_matches_agrees_with_linear_scan() {
        let prefixes = [
            p("0.0.0.0/0"),
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.128.0/17"),
            p("192.168.0.0/16"),
            p("192.168.1.0/24"),
        ];
        let mut t = PrefixTrie::new();
        for (i, &prefix) in prefixes.iter().enumerate() {
            t.insert(prefix, i);
        }
        for query in [
            "10.0.128.0/20",
            "10.0.0.0/8",
            "192.168.1.64/26",
            "8.8.8.0/24",
        ] {
            let q = p(query);
            let expected: Vec<(Ipv4Prefix, usize)> = {
                let mut covering: Vec<(Ipv4Prefix, usize)> = prefixes
                    .iter()
                    .enumerate()
                    .filter(|(_, pre)| pre.contains(q))
                    .map(|(i, &pre)| (pre, i))
                    .collect();
                covering.sort_by_key(|(pre, _)| pre.len());
                covering
            };
            let got: Vec<(Ipv4Prefix, usize)> = t
                .covering_matches(q)
                .into_iter()
                .map(|(k, &v)| (k, v))
                .collect();
            assert_eq!(got, expected, "query {query}");
            assert_eq!(
                t.longest_covering(q).map(|(k, &v)| (k, v)),
                expected.last().copied(),
                "query {query}"
            );
        }
    }

    #[test]
    fn iter_yields_all_entries() {
        let entries = [
            (p("0.0.0.0/0"), 0),
            (p("10.0.0.0/8"), 1),
            (p("10.128.0.0/9"), 2),
        ];
        let t: PrefixTrie<i32> = entries.into_iter().collect();
        let got: Vec<(Ipv4Prefix, i32)> = t.iter().map(|(k, &v)| (k, v)).collect();
        assert_eq!(got.len(), 3);
        for e in entries {
            assert!(got.contains(&e));
        }
    }

    #[test]
    fn matches_linear_scan_reference() {
        // Differential check against a brute-force implementation.
        let prefixes = [
            p("0.0.0.0/0"),
            p("10.0.0.0/8"),
            p("10.0.0.0/16"),
            p("10.0.128.0/17"),
            p("192.168.0.0/16"),
            p("192.168.1.0/24"),
            p("192.168.1.128/25"),
        ];
        let mut t = PrefixTrie::new();
        for (i, &prefix) in prefixes.iter().enumerate() {
            t.insert(prefix, i);
        }
        let probes = [
            "10.0.0.1/32",
            "10.0.200.1/32",
            "10.9.9.9/32",
            "192.168.1.200/32",
            "192.168.1.1/32",
            "192.168.2.1/32",
            "8.8.8.8/32",
        ];
        for probe in probes {
            let addr = p(probe).network();
            let expected = prefixes
                .iter()
                .enumerate()
                .filter(|(_, pre)| pre.contains(p(probe)))
                .max_by_key(|(_, pre)| pre.len())
                .map(|(i, &pre)| (pre, i));
            let got = t.longest_match(addr).map(|(pre, &i)| (pre, i));
            assert_eq!(got, expected, "probe {probe}");
        }
    }
}
