//! The MOAS list: the paper's core data structure.

use std::collections::BTreeSet;
use std::fmt;

use crate::{Asn, Community};

/// The set of ASes entitled to originate a particular prefix (§4.1).
///
/// Every AS that legitimately originates a multi-origin prefix attaches an
/// *identical* MOAS list to its announcements, encoded as one
/// `(X : MLVal)` community per member AS. Receivers compare the lists from
/// different announcements **as sets** — "the order in the list may differ,
/// but the set of ASes included in each route announcement must be identical"
/// (§4.2) — and raise an alarm on any inconsistency.
///
/// The internal representation is an ordered set, so equality *is* the
/// paper's consistency check.
///
/// # Example
///
/// ```
/// use bgp_types::{Asn, MoasList};
///
/// let from_as1: MoasList = [Asn(1), Asn(2)].into_iter().collect();
/// let from_as2: MoasList = [Asn(2), Asn(1)].into_iter().collect();
/// assert_eq!(from_as1, from_as2); // order-insensitive
///
/// let forged: MoasList = [Asn(1), Asn(2), Asn(666)].into_iter().collect();
/// assert_ne!(from_as1, forged); // inconsistency ⇒ alarm
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MoasList {
    members: BTreeSet<Asn>,
}

impl MoasList {
    /// The empty list.
    #[must_use]
    pub fn new() -> Self {
        MoasList::default()
    }

    /// The implicit list of a route that carries no MOAS communities.
    ///
    /// Footnote 3 of the paper: "if a route does not contain a MOAS list, it
    /// will be treated as if it carries a MOAS list containing the origin AS."
    #[must_use]
    pub fn implicit(origin: Asn) -> Self {
        let mut members = BTreeSet::new();
        members.insert(origin);
        MoasList { members }
    }

    /// Adds a member, returning `true` if it was newly inserted.
    pub fn insert(&mut self, asn: Asn) -> bool {
        self.members.insert(asn)
    }

    /// Removes a member, returning `true` if it was present.
    pub fn remove(&mut self, asn: Asn) -> bool {
        self.members.remove(&asn)
    }

    /// Returns `true` if `asn` is entitled to originate the prefix.
    #[must_use]
    pub fn contains(&self, asn: Asn) -> bool {
        self.members.contains(&asn)
    }

    /// Number of member ASes. The paper's measurements found 99% of MOAS
    /// cases involve 3 or fewer origins, so lists stay short in practice.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the list has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Set-equality consistency check from §4.2.
    ///
    /// Two announcements for the same prefix are consistent exactly when
    /// their lists contain the same set of ASes. This is just `==`, but the
    /// named method keeps call sites readable and mirrors the paper's text.
    #[must_use]
    pub fn is_consistent_with(&self, other: &MoasList) -> bool {
        self == other
    }

    /// Iterates over members in ascending ASN order.
    pub fn iter(&self) -> impl Iterator<Item = Asn> + '_ {
        self.members.iter().copied()
    }

    /// Encodes the list as `(X : MLVal)` communities, one per member (§4.2,
    /// Figure 7).
    ///
    /// AS 65535 is IANA-reserved and its encoding collides with the RFC 1997
    /// well-known community range; such a member would not survive a decode
    /// round-trip. Real origin ASes can never carry that number.
    #[must_use]
    pub fn to_communities(&self) -> Vec<Community> {
        self.members
            .iter()
            .map(|&a| Community::moas_member(a))
            .collect()
    }

    /// Decodes a MOAS list from the MOAS-member communities attached to a
    /// route. Returns `None` when no MOAS communities are present, which
    /// callers must distinguish from an *empty* advertised list (absence
    /// triggers the implicit-list rule instead).
    #[must_use]
    pub fn from_communities(communities: &[Community]) -> Option<Self> {
        let members: BTreeSet<Asn> = communities
            .iter()
            .filter(|c| c.is_moas_member())
            .map(|c| c.asn())
            .collect();
        if members.is_empty() {
            None
        } else {
            Some(MoasList { members })
        }
    }
}

impl FromIterator<Asn> for MoasList {
    fn from_iter<I: IntoIterator<Item = Asn>>(iter: I) -> Self {
        MoasList {
            members: iter.into_iter().collect(),
        }
    }
}

impl Extend<Asn> for MoasList {
    fn extend<I: IntoIterator<Item = Asn>>(&mut self, iter: I) {
        self.members.extend(iter);
    }
}

impl<'a> IntoIterator for &'a MoasList {
    type Item = Asn;
    type IntoIter = std::iter::Copied<std::collections::btree_set::Iter<'a, Asn>>;

    fn into_iter(self) -> Self::IntoIter {
        self.members.iter().copied()
    }
}

impl fmt::Display for MoasList {
    /// Formats as `{AS1, AS2}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, asn) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{asn}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_is_set_equality() {
        let a: MoasList = [Asn(1), Asn(2)].into_iter().collect();
        let b: MoasList = [Asn(2), Asn(1), Asn(2)].into_iter().collect();
        assert!(a.is_consistent_with(&b));
        let c: MoasList = [Asn(1)].into_iter().collect();
        assert!(!a.is_consistent_with(&c));
    }

    #[test]
    fn implicit_list_contains_only_origin() {
        let l = MoasList::implicit(Asn(52));
        assert_eq!(l.len(), 1);
        assert!(l.contains(Asn(52)));
    }

    #[test]
    fn community_round_trip() {
        let l: MoasList = [Asn(1), Asn(2), Asn(226)].into_iter().collect();
        let communities = l.to_communities();
        assert_eq!(communities.len(), 3);
        let back = MoasList::from_communities(&communities).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn from_communities_ignores_non_moas_values() {
        let mixed = vec![
            Community::new(Asn(701), 120),
            Community::moas_member(Asn(4)),
            Community::NO_EXPORT,
        ];
        let l = MoasList::from_communities(&mixed).unwrap();
        assert_eq!(l.len(), 1);
        assert!(l.contains(Asn(4)));
    }

    #[test]
    fn from_communities_none_when_no_moas_markers() {
        assert!(MoasList::from_communities(&[Community::new(Asn(701), 120)]).is_none());
        assert!(MoasList::from_communities(&[]).is_none());
    }

    #[test]
    fn insert_remove_contains() {
        let mut l = MoasList::new();
        assert!(l.is_empty());
        assert!(l.insert(Asn(4)));
        assert!(!l.insert(Asn(4)));
        assert!(l.contains(Asn(4)));
        assert!(l.remove(Asn(4)));
        assert!(!l.remove(Asn(4)));
        assert!(l.is_empty());
    }

    #[test]
    fn display_is_sorted_and_nonempty() {
        let l: MoasList = [Asn(226), Asn(4)].into_iter().collect();
        assert_eq!(l.to_string(), "{AS4, AS226}");
        assert_eq!(MoasList::new().to_string(), "{}");
    }

    #[test]
    fn forged_superset_is_inconsistent() {
        // §4.1: attacker AS 3 attaches {1, 2, 3}; honest list is {1, 2}.
        let honest: MoasList = [Asn(1), Asn(2)].into_iter().collect();
        let forged: MoasList = [Asn(1), Asn(2), Asn(3)].into_iter().collect();
        assert!(!honest.is_consistent_with(&forged));
    }
}
