//! Property-based tests for the BGP primitive types.

use bgp_types::{AsPath, AsPathSegment, Asn, Community, Ipv4Prefix, MoasList, Route};
use proptest::prelude::*;

fn arb_asn() -> impl Strategy<Value = Asn> {
    // AS 65535 is IANA-reserved (RFC 7300) and its community encoding falls
    // in the RFC 1997 well-known range, so it can never appear in a MOAS
    // list; the generators exclude it like real origin ASNs do.
    (0u32..=65_534).prop_map(Asn)
}

fn arb_prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 0u8..=32).prop_map(|(addr, len)| Ipv4Prefix::new(addr, len))
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    prop::collection::vec(
        prop_oneof![
            prop::collection::vec(arb_asn(), 1..5).prop_map(AsPathSegment::Sequence),
            prop::collection::vec(arb_asn(), 1..4).prop_map(AsPathSegment::Set),
        ],
        0..4,
    )
    .prop_map(AsPath::from_segments)
}

fn arb_moas_list() -> impl Strategy<Value = MoasList> {
    prop::collection::btree_set(arb_asn(), 0..6)
        .prop_map(|set| set.into_iter().collect::<MoasList>())
}

proptest! {
    #[test]
    fn prefix_display_parse_round_trip(p in arb_prefix()) {
        let parsed: Ipv4Prefix = p.to_string().parse().unwrap();
        prop_assert_eq!(parsed, p);
    }

    #[test]
    fn prefix_construction_is_idempotent(p in arb_prefix()) {
        prop_assert_eq!(Ipv4Prefix::new(p.network(), p.len()), p);
    }

    #[test]
    fn prefix_contains_is_reflexive(p in arb_prefix()) {
        prop_assert!(p.contains(p));
    }

    #[test]
    fn prefix_contains_is_antisymmetric(a in arb_prefix(), b in arb_prefix()) {
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn prefix_contains_is_transitive(a in arb_prefix(), b in arb_prefix(), c in arb_prefix()) {
        if a.contains(b) && b.contains(c) {
            prop_assert!(a.contains(c));
        }
    }

    #[test]
    fn prefix_split_children_are_disjoint_and_covered(p in arb_prefix()) {
        if let Some((low, high)) = p.split() {
            prop_assert!(p.contains(low));
            prop_assert!(p.contains(high));
            prop_assert!(!low.overlaps(high));
            prop_assert!(low.is_more_specific_of(p));
            prop_assert!(high.is_more_specific_of(p));
        }
    }

    #[test]
    fn default_route_contains_everything(p in arb_prefix()) {
        prop_assert!(Ipv4Prefix::DEFAULT.contains(p));
    }

    #[test]
    fn as_path_display_parse_round_trip(path in arb_as_path()) {
        let parsed: AsPath = path.to_string().parse().unwrap();
        prop_assert_eq!(parsed, path);
    }

    #[test]
    fn prepend_preserves_origin_and_extends_len(path in arb_as_path(), asn in arb_asn()) {
        let before_origin = path.origin();
        let before_len = path.selection_len();
        let after = path.prepended(asn);
        prop_assert_eq!(after.first(), Some(asn));
        if before_origin.is_some() {
            prop_assert_eq!(after.origin(), before_origin);
        }
        prop_assert_eq!(after.selection_len(), before_len + 1);
        prop_assert!(after.contains(asn));
    }

    #[test]
    fn adjacent_pairs_are_members(path in arb_as_path()) {
        for (a, b) in path.adjacent_pairs() {
            prop_assert!(path.contains(a));
            prop_assert!(path.contains(b));
            prop_assert_ne!(a, b);
        }
    }

    #[test]
    fn moas_list_community_round_trip(list in arb_moas_list()) {
        let encoded = list.to_communities();
        let decoded = MoasList::from_communities(&encoded);
        if list.is_empty() {
            prop_assert!(decoded.is_none());
        } else {
            prop_assert_eq!(decoded.unwrap(), list);
        }
    }

    #[test]
    fn moas_consistency_is_an_equivalence(a in arb_moas_list(), b in arb_moas_list(), c in arb_moas_list()) {
        // reflexive
        prop_assert!(a.is_consistent_with(&a));
        // symmetric
        prop_assert_eq!(a.is_consistent_with(&b), b.is_consistent_with(&a));
        // transitive
        if a.is_consistent_with(&b) && b.is_consistent_with(&c) {
            prop_assert!(a.is_consistent_with(&c));
        }
    }

    #[test]
    fn community_encoding_round_trips_16bit_asns(asn in arb_asn(), value in any::<u16>()) {
        let c = Community::new(asn, value);
        if asn != Asn(0xFFFF) {
            prop_assert_eq!(c.asn(), asn);
        }
        prop_assert_eq!(c.value(), value);
    }

    #[test]
    fn propagation_chain_keeps_origin(origin in arb_asn(), hops in prop::collection::vec(arb_asn(), 0..6)) {
        let prefix = Ipv4Prefix::new(0xC000_0200, 24);
        let mut route = Route::new(prefix, AsPath::origination(origin));
        for hop in &hops {
            route = route.propagated_by(*hop);
        }
        prop_assert_eq!(route.origin_as(), Some(origin));
        prop_assert_eq!(route.as_path().selection_len(), hops.len() + 1);
    }

    #[test]
    fn effective_list_defaults_to_origin(origin in arb_asn()) {
        let prefix = Ipv4Prefix::new(0xC000_0200, 24);
        let route = Route::new(prefix, AsPath::origination(origin));
        prop_assert_eq!(route.effective_moas_list(), Some(MoasList::implicit(origin)));
    }
}
