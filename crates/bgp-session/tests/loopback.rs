//! Two real FSM peers over loopback TCP: the [`BgpListener`] service on a
//! minisock reactor versus the blocking [`replay_updates`] driver.
//!
//! Covers the acceptance path end to end: capability negotiation to
//! `Established`, UPDATE exchange landing in an Adj-RIB identical to the
//! updates fed in, a forced hold-timer expiry (silent peer) answered with
//! a HOLD_TIMER_EXPIRED NOTIFICATION and a close, and a clean reconnect
//! afterwards.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use bgp_session::{
    replay_updates, BgpListener, PeerInfo, ReplayConfig, SessionConfig, SessionHandler,
};
use bgp_types::{AsPath, Asn, Ipv4Prefix, RouteOrigin};
use bgp_wire::bgp::{PathAttributes, UpdateMessage};
use bgp_wire::msg::{encode_keepalive, notif, Message, OpenMessage, MESSAGE_TYPE_NOTIFICATION};
use minisock::{Config, Server};

/// Everything the listener-side handler observed, shared with the test.
#[derive(Default)]
struct Observed {
    updates: Vec<UpdateMessage>,
    established: u32,
    closed: u32,
    peer_asn: Option<Asn>,
}

struct Recorder(Arc<Mutex<Observed>>);

impl SessionHandler for Recorder {
    fn on_update(&mut self, _peer: &PeerInfo, update: UpdateMessage) {
        self.0.lock().unwrap().updates.push(update);
    }

    fn on_established(&mut self, peer: &PeerInfo) {
        let mut obs = self.0.lock().unwrap();
        obs.established += 1;
        obs.peer_asn = Some(peer.asn);
    }

    fn on_session_closed(&mut self) {
        self.0.lock().unwrap().closed += 1;
    }
}

fn announce(prefix: Ipv4Prefix, origin: Asn) -> UpdateMessage {
    UpdateMessage {
        withdrawn: Vec::new(),
        attrs: Some(PathAttributes {
            origin: RouteOrigin::Igp,
            as_path: AsPath::from_sequence([Asn(64_512), origin]),
            next_hop: 0x0A00_0001,
            local_pref: None,
            communities: Vec::new(),
            mp_reach: None,
            mp_unreach: None,
        }),
        nlri: vec![prefix],
    }
}

/// Folds announcements into prefix -> origin, the Adj-RIB shape the
/// acceptance criterion compares.
fn adj_rib(updates: &[UpdateMessage]) -> BTreeMap<(u32, u8), Asn> {
    let mut rib = BTreeMap::new();
    for update in updates {
        let Some(attrs) = &update.attrs else { continue };
        let Some(origin) = attrs.as_path.origin() else {
            continue;
        };
        for prefix in &update.nlri {
            rib.insert((prefix.network(), prefix.len()), origin);
        }
        for prefix in &update.withdrawn {
            rib.remove(&(prefix.network(), prefix.len()));
        }
    }
    rib
}

fn wait_for<F: Fn() -> bool>(deadline: Duration, cond: F) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn loopback_establish_exchange_and_cease() {
    let observed = Arc::new(Mutex::new(Observed::default()));
    let listener = BgpListener::new(
        SessionConfig::new(Asn(65_000), 0x7F00_0001),
        Recorder(Arc::clone(&observed)),
    );
    let server = Server::bind("127.0.0.1:0", listener, Config::default()).expect("bind");

    let sent: Vec<UpdateMessage> = (0u32..40)
        .map(|i| {
            announce(
                Ipv4Prefix::new(0x0A00_0000 | (i << 8), 24),
                Asn(70_000 + u32::from(i % 7 == 0) * 1_000 + i),
            )
        })
        .collect();

    let mut cfg = SessionConfig::new(Asn(70_000), 0x7F00_0002);
    cfg.retry_base_ms = 20;
    let report = replay_updates(
        server.local_addr(),
        &ReplayConfig::new(cfg),
        &mut sent.iter().cloned(),
    )
    .expect("replay succeeds");

    assert_eq!(report.updates_sent, 40);
    assert_eq!(report.connects, 1);
    assert_eq!(report.stats.established, 1);
    assert!(report.stats.keepalives_received >= 1);

    // The Cease races the reactor's close bookkeeping; wait for delivery.
    let delivered = wait_for(Duration::from_secs(5), || {
        let obs = observed.lock().unwrap();
        obs.updates.len() == 40 && obs.closed == 1
    });
    if !delivered {
        let (got, closes) = {
            let obs = observed.lock().unwrap();
            (obs.updates.len(), obs.closed)
        };
        panic!(
            "listener never saw the full replay: {got} updates, {closes} closes, stats {:?}",
            server.stats()
        );
    }

    let obs = observed.lock().unwrap();
    assert_eq!(obs.established, 1);
    assert_eq!(obs.peer_asn, Some(Asn(70_000)));
    // Byte-for-byte the same updates, in order — so the Adj-RIB built from
    // the session equals the one built straight from the source stream.
    assert_eq!(obs.updates, sent);
    assert_eq!(adj_rib(&obs.updates), adj_rib(&sent));
    drop(obs);

    server.shutdown();
}

#[test]
fn hold_expiry_notifies_then_listener_accepts_reconnect() {
    let observed = Arc::new(Mutex::new(Observed::default()));
    let mut template = SessionConfig::new(Asn(65_000), 0x7F00_0001);
    template.hold_time = 3; // RFC floor: negotiated hold = 3 s, keepalive 1 s
    let listener = BgpListener::new(template, Recorder(Arc::clone(&observed)));
    let server = Server::bind("127.0.0.1:0", listener, Config::default()).expect("bind");

    // --- Phase 1: a hand-rolled peer that completes the handshake, then
    // goes silent so the listener's hold timer must fire.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let open = OpenMessage::new(Asn(70_000), 3, 0x7F00_0002)
        .encode()
        .expect("encodes");
    stream.write_all(&open).unwrap();
    stream.write_all(&encode_keepalive()).unwrap();

    assert!(
        wait_for(Duration::from_secs(5), || {
            observed.lock().unwrap().established == 1
        }),
        "listener never established"
    );

    // Read everything the listener sends until it closes on us; the final
    // frame must be NOTIFICATION(HOLD_TIMER_EXPIRED).
    let mut collected = Vec::new();
    let mut buf = [0u8; 4096];
    let silent_since = Instant::now();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => collected.extend_from_slice(&buf[..n]),
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                panic!("listener neither spoke nor closed within the read timeout")
            }
            Err(e) if e.kind() == ErrorKind::ConnectionReset => break,
            Err(e) => panic!("unexpected read error: {e}"),
        }
    }
    // ~3 s of silence must pass before the hold timer may fire.
    assert!(
        silent_since.elapsed() >= Duration::from_millis(2_500),
        "listener closed after only {:?}",
        silent_since.elapsed()
    );

    let mut frames = Vec::new();
    let mut rest: &[u8] = &collected;
    while !rest.is_empty() {
        let (msg, used) = Message::decode_prefix_of(rest, bgp_wire::bgp::AsnEncoding::FourOctet)
            .expect("listener speaks well-formed, complete frames");
        frames.push(msg);
        rest = &rest[used..];
    }
    let last = frames.last().expect("listener sent frames");
    assert_eq!(last.type_code(), MESSAGE_TYPE_NOTIFICATION);
    let Message::Notification(n) = last else {
        panic!("type code said NOTIFICATION but variant disagrees");
    };
    assert_eq!(n.code, notif::HOLD_TIMER_EXPIRED);
    assert!(
        wait_for(Duration::from_secs(5), || {
            observed.lock().unwrap().closed == 1
        }),
        "listener never tore the session down"
    );
    drop(stream);

    // --- Phase 2: the listener must be fully healthy afterwards — a fresh
    // driver session establishes and replays.
    let sent: Vec<UpdateMessage> = vec![announce(Ipv4Prefix::new(0xC0A8_0000, 16), Asn(70_001))];
    let mut cfg = SessionConfig::new(Asn(70_000), 0x7F00_0002);
    cfg.hold_time = 3;
    cfg.retry_base_ms = 20;
    let report = replay_updates(
        server.local_addr(),
        &ReplayConfig::new(cfg),
        &mut sent.iter().cloned(),
    )
    .expect("reconnect replay succeeds");
    assert_eq!(report.updates_sent, 1);
    assert_eq!(report.stats.established, 1);

    let redelivered = wait_for(Duration::from_secs(5), || {
        let obs = observed.lock().unwrap();
        obs.established == 2 && obs.updates.len() == 1 && obs.closed == 2
    });
    if !redelivered {
        let (est, got, closes) = {
            let obs = observed.lock().unwrap();
            (obs.established, obs.updates.len(), obs.closed)
        };
        panic!(
            "reconnected session never delivered: {est} establishes, {got} updates, {closes} closes"
        );
    }
    assert_eq!(adj_rib(&observed.lock().unwrap().updates), adj_rib(&sent));

    server.shutdown();
}
