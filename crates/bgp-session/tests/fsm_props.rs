//! FSM property tests: no event sequence — valid, hostile, or nonsensical
//! — may panic the session, and `Established` is unreachable without a
//! completed OPEN/KEEPALIVE handshake in both directions.

use bgp_session::{Event, Session, SessionConfig, State};
use bgp_types::{AsPath, Asn, Ipv4Prefix, RouteOrigin};
use bgp_wire::bgp::{PathAttributes, UpdateMessage};
use bgp_wire::msg::{encode_keepalive, NotificationMessage, OpenMessage};
use proptest::prelude::*;

/// A scripted input: a time delta plus an event payload.
#[derive(Debug, Clone)]
enum Input {
    ManualStart,
    ManualStop,
    Connected,
    ConnectFailed,
    Closed,
    Tick,
    Garbage(Vec<u8>),
    PeerOpen {
        asn: u32,
        hold: u16,
    },
    PeerKeepalive,
    PeerUpdate,
    PeerNotification,
    /// A prefix of a valid OPEN: exercises the reassembly buffer.
    PartialOpen(usize),
}

fn update_bytes() -> Vec<u8> {
    UpdateMessage {
        withdrawn: Vec::new(),
        attrs: Some(PathAttributes {
            origin: RouteOrigin::Igp,
            as_path: AsPath::from_sequence([Asn(70_000)]),
            next_hop: 0x0A00_0001,
            local_pref: None,
            communities: Vec::new(),
            mp_reach: None,
            mp_unreach: None,
        }),
        nlri: vec![Ipv4Prefix::new(0x0A00_0000, 8)],
    }
    .encode(bgp_wire::bgp::AsnEncoding::FourOctet)
    .expect("encodes")
}

fn input() -> impl Strategy<Value = Input> {
    prop_oneof![
        Just(Input::ManualStart),
        Just(Input::ManualStop),
        Just(Input::Connected),
        Just(Input::ConnectFailed),
        Just(Input::Closed),
        Just(Input::Tick),
        prop::collection::vec(any::<u8>(), 0..64).prop_map(Input::Garbage),
        (1u32..100_000, prop_oneof![Just(0u16), 3u16..300])
            .prop_map(|(asn, hold)| Input::PeerOpen { asn, hold }),
        Just(Input::PeerKeepalive),
        Just(Input::PeerUpdate),
        Just(Input::PeerNotification),
        (1usize..29).prop_map(Input::PartialOpen),
    ]
}

fn apply(session: &mut Session, now: u64, input: &Input) {
    let mut actions = Vec::new();
    match input {
        Input::ManualStart => session.handle(now, &Event::ManualStart, &mut actions),
        Input::ManualStop => session.handle(now, &Event::ManualStop, &mut actions),
        Input::Connected => session.handle(now, &Event::Connected, &mut actions),
        Input::ConnectFailed => session.handle(now, &Event::ConnectFailed, &mut actions),
        Input::Closed => session.handle(now, &Event::Closed, &mut actions),
        Input::Tick => session.handle(now, &Event::Tick, &mut actions),
        Input::Garbage(bytes) => session.handle(now, &Event::Bytes(bytes), &mut actions),
        Input::PeerOpen { asn, hold } => {
            let bytes = OpenMessage::new(Asn(*asn), *hold, 0x0A00_0002)
                .encode()
                .expect("encodes");
            session.handle(now, &Event::Bytes(&bytes), &mut actions);
        }
        Input::PeerKeepalive => {
            session.handle(now, &Event::Bytes(&encode_keepalive()), &mut actions);
        }
        Input::PeerUpdate => {
            let bytes = update_bytes();
            session.handle(now, &Event::Bytes(&bytes), &mut actions);
        }
        Input::PeerNotification => {
            let bytes = NotificationMessage::cease().encode().expect("encodes");
            session.handle(now, &Event::Bytes(&bytes), &mut actions);
        }
        Input::PartialOpen(cut) => {
            let bytes = OpenMessage::new(Asn(65_001), 30, 3)
                .encode()
                .expect("encodes");
            let cut = (*cut).min(bytes.len() - 1);
            session.handle(now, &Event::Bytes(&bytes[..cut]), &mut actions);
        }
    }
}

proptest! {
    /// Arbitrary event storms never panic, and whenever the session shows
    /// `Established` the full handshake has demonstrably happened.
    #[test]
    fn no_event_sequence_panics_or_skips_the_handshake(
        passive in any::<bool>(),
        hold in prop_oneof![Just(0u16), 3u16..300],
        steps in prop::collection::vec((0u64..5_000, input()), 0..60),
    ) {
        let mut cfg = SessionConfig::new(Asn(64_512), 0x0A00_0001);
        cfg.passive = passive;
        cfg.hold_time = hold;
        let mut session = Session::new(cfg);
        let mut now = 0u64;
        for (dt, input) in &steps {
            now += dt;
            apply(&mut session, now, input);
            if session.state() == State::Established {
                prop_assert!(
                    session.handshake_complete(),
                    "Established without a complete handshake after {input:?}"
                );
            }
        }
    }

    /// The only road to `Established` runs through OPEN and KEEPALIVE:
    /// deleting *any* single step from the canonical handshake leaves the
    /// session unestablished.
    #[test]
    fn established_requires_every_handshake_step(skip in 0usize..4) {
        let mut session = Session::new(SessionConfig::new(Asn(64_512), 1));
        let steps: [Input; 4] = [
            Input::ManualStart,
            Input::Connected,
            Input::PeerOpen { asn: 70_000, hold: 30 },
            Input::PeerKeepalive,
        ];
        for (i, step) in steps.iter().enumerate() {
            if i == skip {
                continue;
            }
            apply(&mut session, i as u64, step);
        }
        prop_assert_ne!(session.state(), State::Established);

        // And with no step skipped, the same sequence establishes.
        let mut full = Session::new(SessionConfig::new(Asn(64_512), 1));
        for (i, step) in steps.iter().enumerate() {
            apply(&mut full, i as u64, step);
        }
        prop_assert_eq!(full.state(), State::Established);
        prop_assert!(full.handshake_complete());
    }
}
