//! The sans-IO RFC 4271 session state machine.
//!
//! A [`Session`] is a pure state machine over **virtual time**: every call
//! passes the current clock in milliseconds, events carry everything the
//! outside world knows (connect results, raw bytes, clock ticks), and all
//! effects come back as typed [`SessionAction`]s for the caller to
//! execute. Nothing here touches sockets, threads, or the wall clock —
//! which is what lets the property tests drive it with arbitrary event
//! sequences and the chaos harness replay identical trials from a seed.
//!
//! State chart (RFC 4271 §8, with the two TCP-tracking states collapsed
//! into the retry logic):
//!
//! ```text
//!            ManualStart                Connected
//!   Idle ───────────────▶ Connect ───────────────▶ OpenSent
//!    ▲                      │   ▲                     │ recv OPEN /
//!    │ ManualStop           │   │ retry (backoff)     ▼ send KEEPALIVE
//!    │ (from any state)     ▼   │                  OpenConfirm
//!    │                    Active ◀──────┐             │ recv KEEPALIVE
//!    │                      ▲           │ error /     ▼
//!    └──────────────────────┴───────────┴──────── Established
//!                             hold expiry / NOTIFICATION / TCP loss
//! ```
//!
//! Every error path emits a typed NOTIFICATION before the close: hold
//! expiry sends code 4, a message that arrives in a state that cannot
//! accept it sends code 5 (FSM error), malformed bytes send the header /
//! OPEN / UPDATE error code matching the decoder's complaint, and a
//! manual stop sends Cease. Truncated frames are not errors — the session
//! keeps buffering until the length field's worth of bytes arrive.

use bgp_types::Asn;
use bgp_wire::bgp::{AsnEncoding, UpdateMessage};
use bgp_wire::msg::{
    encode_keepalive, notif, Capability, Message, NotificationMessage, OpenMessage,
};
use bgp_wire::{WireError, WireErrorKind};

use crate::backoff::Backoff;

/// Hold time used while the handshake is still in flight (RFC 4271
/// suggests "a large value"; 4 minutes is the customary choice).
const HANDSHAKE_HOLD_MS: u64 = 240_000;

/// The RFC 4271 session states. `Connect`/`Active` keep their RFC names:
/// `Connect` means "a TCP attempt is in flight", `Active` means "waiting
/// to (re)try or for an inbound connection".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum State {
    /// Nothing happening; only `ManualStart` leaves this state.
    Idle,
    /// An outbound TCP connect is in flight.
    Connect,
    /// Waiting: for the retry timer (active opener) or for an inbound
    /// connection (passive side).
    Active,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPENs exchanged, waiting for the peer's first KEEPALIVE.
    OpenConfirm,
    /// The session is up; UPDATEs flow.
    Established,
}

/// An input to the state machine. `Bytes` borrows the arrival buffer; the
/// session copies what it needs into its internal reassembly buffer.
#[derive(Debug)]
pub enum Event<'a> {
    /// Operator start: begin connecting (or listening, if passive).
    ManualStart,
    /// Operator stop: send Cease and go to `Idle` (no auto-restart).
    ManualStop,
    /// The transport reports an established TCP connection.
    Connected,
    /// The transport reports a failed connect attempt.
    ConnectFailed,
    /// The transport reports the TCP connection is gone (EOF or reset).
    Closed,
    /// Raw bytes arrived from the peer.
    Bytes(&'a [u8]),
    /// The clock advanced; expire any due timers.
    Tick,
}

/// An effect the caller must carry out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionAction {
    /// Open a TCP connection to the configured peer.
    Connect,
    /// Write these bytes to the peer.
    SendBytes(Vec<u8>),
    /// Tear the TCP connection down (any pending output first).
    Close,
    /// A decoded UPDATE for the application (only in `Established`).
    Deliver(UpdateMessage),
}

/// What the peer's OPEN told us, fixed for the life of the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerInfo {
    /// The peer's ASN (via the 4-octet capability when present).
    pub asn: Asn,
    /// The peer's BGP identifier.
    pub bgp_id: u32,
    /// The negotiated hold time: `min(ours, theirs)`, 0 disabling both
    /// keepalives and the hold timer.
    pub hold_time: u16,
    /// Whether both sides speak 4-octet ASNs (selects the UPDATE
    /// encoding).
    pub four_octet: bool,
}

/// Monotonic counters over the session's lifetime (across reconnects).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Outbound TCP connect attempts.
    pub connect_attempts: u64,
    /// Times the session reached `Established`.
    pub established: u64,
    /// OPENs sent / received.
    pub opens_sent: u64,
    /// OPENs received.
    pub opens_received: u64,
    /// KEEPALIVEs sent.
    pub keepalives_sent: u64,
    /// KEEPALIVEs received.
    pub keepalives_received: u64,
    /// UPDATEs sent.
    pub updates_sent: u64,
    /// UPDATEs received (and delivered).
    pub updates_received: u64,
    /// NOTIFICATIONs sent.
    pub notifications_sent: u64,
    /// NOTIFICATIONs received.
    pub notifications_received: u64,
    /// Hold timer expirations (we gave up on a silent peer).
    pub hold_expirations: u64,
    /// Frames rejected by the wire decoder (each closes the session).
    pub decode_errors: u64,
}

/// Static configuration for one session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Our ASN.
    pub asn: Asn,
    /// Our BGP identifier.
    pub bgp_id: u32,
    /// Proposed hold time in seconds: 0 (no keepalives) or >= 3.
    pub hold_time: u16,
    /// Passive sessions never initiate TCP; they wait for `Connected`.
    pub passive: bool,
    /// Refuse peers that do not announce the 4-octet-AS capability
    /// (NOTIFICATION code 2 subcode 7). The chaos capability-mismatch
    /// scenario flips this on.
    pub require_four_octet: bool,
    /// How long an outbound connect may stay in flight before it counts
    /// as failed.
    pub connect_timeout_ms: u64,
    /// First retry delay of the jittered exponential backoff.
    pub retry_base_ms: u64,
    /// Retry delay cap.
    pub retry_max_ms: u64,
    /// Seed for the backoff jitter (determinism).
    pub seed: u64,
}

impl SessionConfig {
    /// A config with the workspace defaults: 90 s hold, active opener,
    /// 1 s → 60 s retry ladder.
    #[must_use]
    pub fn new(asn: Asn, bgp_id: u32) -> Self {
        SessionConfig {
            asn,
            bgp_id,
            hold_time: 90,
            passive: false,
            require_four_octet: false,
            connect_timeout_ms: 30_000,
            retry_base_ms: 1_000,
            retry_max_ms: 60_000,
            seed: 0,
        }
    }
}

/// One BGP session: the deterministic FSM plus its reassembly buffer,
/// timers, and counters.
#[derive(Debug)]
pub struct Session {
    cfg: SessionConfig,
    state: State,
    backoff: Backoff,
    inbuf: Vec<u8>,
    /// Absolute virtual-time deadlines, in ms.
    connect_deadline: Option<u64>,
    hold_deadline: Option<u64>,
    keepalive_deadline: Option<u64>,
    /// Handshake progress flags; `Established` is gated on all of them.
    sent_open: bool,
    recv_open: bool,
    sent_keepalive: bool,
    recv_keepalive: bool,
    peer: Option<PeerInfo>,
    encoding: AsnEncoding,
    stats: SessionStats,
}

impl Session {
    /// Creates a session in `Idle`; feed it `ManualStart` to begin.
    #[must_use]
    pub fn new(cfg: SessionConfig) -> Self {
        let backoff = Backoff::new(cfg.retry_base_ms, cfg.retry_max_ms, cfg.seed);
        Session {
            cfg,
            state: State::Idle,
            backoff,
            inbuf: Vec::new(),
            connect_deadline: None,
            hold_deadline: None,
            keepalive_deadline: None,
            sent_open: false,
            recv_open: false,
            sent_keepalive: false,
            recv_keepalive: false,
            peer: None,
            encoding: AsnEncoding::FourOctet,
            stats: SessionStats::default(),
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> State {
        self.state
    }

    /// The peer's identity once OPENs have been exchanged. Retained after
    /// a teardown (so actions emitted by the closing `handle()` call can
    /// still be attributed); replaced by the next handshake's OPEN.
    #[must_use]
    pub fn peer(&self) -> Option<&PeerInfo> {
        self.peer.as_ref()
    }

    /// Lifetime counters.
    #[must_use]
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The earliest pending timer deadline (virtual ms), if any. Callers
    /// deliver a `Tick` at or after this time.
    #[must_use]
    pub fn next_deadline(&self) -> Option<u64> {
        [
            self.connect_deadline,
            self.hold_deadline,
            self.keepalive_deadline,
        ]
        .into_iter()
        .flatten()
        .min()
    }

    /// Feeds one event at virtual time `now`, appending resulting actions.
    /// Expired timers are processed first, so a late `Tick` (or any other
    /// event) still fires them in order.
    pub fn handle(&mut self, now: u64, event: &Event<'_>, actions: &mut Vec<SessionAction>) {
        self.expire_timers(now, actions);
        match event {
            Event::ManualStart => self.on_manual_start(now, actions),
            Event::ManualStop => self.on_manual_stop(actions),
            Event::Connected => self.on_connected(now, actions),
            Event::ConnectFailed => {
                if self.state == State::Connect {
                    self.schedule_retry(now);
                }
            }
            Event::Closed => {
                if self.is_connected_state() {
                    self.after_close(now);
                }
            }
            Event::Bytes(bytes) => self.on_bytes(now, bytes, actions),
            Event::Tick => {} // expire_timers above did the work
        }
    }

    /// Sends an UPDATE on an established session. Returns `false` (and
    /// does nothing) in any other state.
    pub fn send_update(
        &mut self,
        update: &UpdateMessage,
        actions: &mut Vec<SessionAction>,
    ) -> bool {
        if self.state != State::Established {
            return false;
        }
        match update.encode(self.encoding) {
            Ok(bytes) => {
                self.stats.updates_sent += 1;
                actions.push(SessionAction::SendBytes(bytes));
                true
            }
            Err(_) => false,
        }
    }

    // --- event arms -------------------------------------------------------

    fn on_manual_start(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        if self.state != State::Idle {
            return;
        }
        if self.cfg.passive {
            self.state = State::Active;
        } else {
            self.start_connect(now, actions);
        }
    }

    fn on_manual_stop(&mut self, actions: &mut Vec<SessionAction>) {
        if self.is_connected_state() {
            self.send_notification(&NotificationMessage::cease(), actions);
            actions.push(SessionAction::Close);
        }
        self.reset_to(State::Idle);
    }

    fn on_connected(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        if !matches!(self.state, State::Connect | State::Active) {
            return;
        }
        self.connect_deadline = None;
        self.backoff.reset();
        let open = OpenMessage::new(self.cfg.asn, self.cfg.hold_time, self.cfg.bgp_id);
        match open.encode() {
            Ok(bytes) => {
                self.stats.opens_sent += 1;
                self.sent_open = true;
                actions.push(SessionAction::SendBytes(bytes));
                self.state = State::OpenSent;
                self.hold_deadline = Some(now + HANDSHAKE_HOLD_MS);
            }
            Err(_) => {
                // Unencodable OPEN means a bad local config (hold time 1
                // or 2); nothing will ever work, stop cleanly.
                actions.push(SessionAction::Close);
                self.reset_to(State::Idle);
            }
        }
    }

    fn on_bytes(&mut self, now: u64, bytes: &[u8], actions: &mut Vec<SessionAction>) {
        if !self.is_connected_state() {
            return; // late bytes from a torn-down transport
        }
        self.inbuf.extend_from_slice(bytes);
        loop {
            match Message::decode_prefix_of(&self.inbuf, self.encoding) {
                Ok((message, used)) => {
                    self.inbuf.drain(..used);
                    self.on_message(now, message, actions);
                    if !self.is_connected_state() {
                        self.inbuf.clear();
                        return;
                    }
                }
                Err(err) if matches!(err.kind, WireErrorKind::Truncated { .. }) => return,
                Err(err) => {
                    self.stats.decode_errors += 1;
                    self.send_notification(&notification_for(&err), actions);
                    actions.push(SessionAction::Close);
                    self.after_close(now);
                    return;
                }
            }
        }
    }

    fn on_message(&mut self, now: u64, message: Message, actions: &mut Vec<SessionAction>) {
        match message {
            Message::Open(open) => self.on_open(now, &open, actions),
            Message::Keepalive => self.on_keepalive(now, actions),
            Message::Update(update) => self.on_update(now, update, actions),
            Message::Notification(_) => {
                self.stats.notifications_received += 1;
                // The peer is closing the session; no reply is sent to a
                // NOTIFICATION (RFC 4271 §6).
                actions.push(SessionAction::Close);
                self.after_close(now);
            }
        }
    }

    fn on_open(&mut self, now: u64, open: &OpenMessage, actions: &mut Vec<SessionAction>) {
        self.stats.opens_received += 1;
        if self.state != State::OpenSent {
            self.fsm_error(now, actions);
            return;
        }
        let four_octet = open
            .capabilities
            .iter()
            .any(|c| matches!(c, Capability::FourOctetAs(_)));
        if self.cfg.require_four_octet && !four_octet {
            self.send_notification(
                &NotificationMessage::new(notif::OPEN_MESSAGE_ERROR, notif::UNSUPPORTED_CAPABILITY),
                actions,
            );
            actions.push(SessionAction::Close);
            self.after_close(now);
            return;
        }
        let hold = self.cfg.hold_time.min(open.hold_time);
        self.peer = Some(PeerInfo {
            asn: open.effective_asn(),
            bgp_id: open.bgp_id,
            hold_time: hold,
            four_octet,
        });
        // Our OPEN always carries the 4-octet capability, so the peer's
        // support alone decides the encoding.
        self.encoding = if four_octet {
            AsnEncoding::FourOctet
        } else {
            AsnEncoding::TwoOctet
        };
        self.recv_open = true;
        self.send_keepalive(now, actions);
        self.state = State::OpenConfirm;
        self.hold_deadline = if hold == 0 {
            None
        } else {
            Some(now + u64::from(hold) * 1_000)
        };
    }

    fn on_keepalive(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        self.stats.keepalives_received += 1;
        match self.state {
            State::OpenConfirm => {
                self.recv_keepalive = true;
                debug_assert!(
                    self.sent_open && self.recv_open && self.sent_keepalive,
                    "handshake flags must be complete before Established"
                );
                self.state = State::Established;
                self.stats.established += 1;
                self.refresh_hold(now);
            }
            State::Established => self.refresh_hold(now),
            _ => self.fsm_error(now, actions),
        }
    }

    fn on_update(&mut self, now: u64, update: UpdateMessage, actions: &mut Vec<SessionAction>) {
        if self.state != State::Established {
            self.fsm_error(now, actions);
            return;
        }
        self.stats.updates_received += 1;
        self.refresh_hold(now);
        actions.push(SessionAction::Deliver(update));
    }

    // --- timers -----------------------------------------------------------

    fn expire_timers(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        if let Some(t) = self.connect_deadline {
            if now >= t {
                self.connect_deadline = None;
                match self.state {
                    // The in-flight connect timed out.
                    State::Connect => self.schedule_retry(now),
                    // The retry timer fired: try again.
                    State::Active if !self.cfg.passive => self.start_connect(now, actions),
                    _ => {}
                }
            }
        }
        if let Some(t) = self.hold_deadline {
            if now >= t && self.is_connected_state() {
                self.hold_deadline = None;
                self.stats.hold_expirations += 1;
                self.send_notification(&NotificationMessage::hold_timer_expired(), actions);
                actions.push(SessionAction::Close);
                self.after_close(now);
            }
        }
        if let Some(t) = self.keepalive_deadline {
            if now >= t {
                self.keepalive_deadline = None;
                if matches!(self.state, State::OpenConfirm | State::Established) {
                    self.send_keepalive(now, actions);
                }
            }
        }
    }

    fn refresh_hold(&mut self, now: u64) {
        if let Some(peer) = &self.peer {
            if peer.hold_time > 0 {
                self.hold_deadline = Some(now + u64::from(peer.hold_time) * 1_000);
            }
        }
    }

    // --- shared transitions -----------------------------------------------

    fn start_connect(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        self.stats.connect_attempts += 1;
        self.state = State::Connect;
        self.connect_deadline = Some(now + self.cfg.connect_timeout_ms);
        actions.push(SessionAction::Connect);
    }

    fn schedule_retry(&mut self, now: u64) {
        self.state = State::Active;
        self.connect_deadline = Some(now + self.backoff.next_delay_ms());
    }

    /// Transport-level teardown bookkeeping shared by every close path:
    /// clears per-connection state and decides what happens next (retry
    /// with backoff for active openers, wait for passive ones).
    fn after_close(&mut self, now: u64) {
        self.clear_connection();
        if self.cfg.passive {
            self.state = State::Active;
        } else {
            self.schedule_retry(now);
        }
    }

    fn send_keepalive(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        self.stats.keepalives_sent += 1;
        self.sent_keepalive = true;
        actions.push(SessionAction::SendBytes(encode_keepalive().to_vec()));
        let interval = self
            .peer
            .as_ref()
            .map_or(0, |p| u64::from(p.hold_time) * 1_000 / 3);
        self.keepalive_deadline = if interval == 0 {
            None
        } else {
            Some(now + interval)
        };
    }

    fn send_notification(
        &mut self,
        notification: &NotificationMessage,
        actions: &mut Vec<SessionAction>,
    ) {
        if let Ok(bytes) = notification.encode() {
            self.stats.notifications_sent += 1;
            actions.push(SessionAction::SendBytes(bytes));
        }
    }

    fn fsm_error(&mut self, now: u64, actions: &mut Vec<SessionAction>) {
        self.send_notification(&NotificationMessage::fsm_error(), actions);
        actions.push(SessionAction::Close);
        self.after_close(now);
    }

    fn is_connected_state(&self) -> bool {
        matches!(
            self.state,
            State::OpenSent | State::OpenConfirm | State::Established
        )
    }

    fn clear_connection(&mut self) {
        self.inbuf.clear();
        self.hold_deadline = None;
        self.keepalive_deadline = None;
        self.sent_open = false;
        self.recv_open = false;
        self.sent_keepalive = false;
        self.recv_keepalive = false;
        // `peer` is deliberately NOT cleared: UPDATEs decoded in the same
        // `handle()` call that tore the session down are still routed by
        // callers afterwards, and they need the identity that produced
        // them. The next handshake's OPEN overwrites it.
        self.encoding = AsnEncoding::FourOctet;
    }

    fn reset_to(&mut self, state: State) {
        self.clear_connection();
        self.connect_deadline = None;
        self.state = state;
    }

    /// True once every handshake step has completed. `Established` implies
    /// this; the property tests assert it over arbitrary event sequences.
    #[must_use]
    pub fn handshake_complete(&self) -> bool {
        self.sent_open && self.recv_open && self.sent_keepalive && self.recv_keepalive
    }
}

/// Maps a decoder rejection to the NOTIFICATION RFC 4271 prescribes.
fn notification_for(err: &WireError) -> NotificationMessage {
    match err.kind {
        WireErrorKind::BadMarker
        | WireErrorKind::BadMessageLength(_)
        | WireErrorKind::UnsupportedMessageType(_) => {
            NotificationMessage::new(notif::MESSAGE_HEADER_ERROR, 0)
        }
        WireErrorKind::BadVersion(_) => {
            NotificationMessage::new(notif::OPEN_MESSAGE_ERROR, notif::UNSUPPORTED_VERSION)
        }
        WireErrorKind::BadHoldTime(_) => {
            NotificationMessage::new(notif::OPEN_MESSAGE_ERROR, notif::UNACCEPTABLE_HOLD_TIME)
        }
        WireErrorKind::BadCapabilityLength { .. } => {
            NotificationMessage::new(notif::OPEN_MESSAGE_ERROR, notif::UNSUPPORTED_CAPABILITY)
        }
        WireErrorKind::BadNotificationCode(_) => {
            NotificationMessage::new(notif::MESSAGE_HEADER_ERROR, 0)
        }
        _ => NotificationMessage::new(notif::UPDATE_MESSAGE_ERROR, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn active() -> Session {
        let mut cfg = SessionConfig::new(Asn(64512), 0x0A00_0001);
        cfg.hold_time = 90;
        Session::new(cfg)
    }

    fn take_bytes(actions: &[SessionAction]) -> Vec<u8> {
        let mut out = Vec::new();
        for a in actions {
            if let SessionAction::SendBytes(b) = a {
                out.extend_from_slice(b);
            }
        }
        out
    }

    #[test]
    fn start_connect_open_handshake_reaches_established() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        assert_eq!(s.state(), State::Connect);
        assert!(acts.contains(&SessionAction::Connect));

        acts.clear();
        s.handle(5, &Event::Connected, &mut acts);
        assert_eq!(s.state(), State::OpenSent);
        let open_bytes = take_bytes(&acts);
        assert!(!open_bytes.is_empty());

        // Peer's OPEN arrives.
        acts.clear();
        let peer_open = OpenMessage::new(Asn(70_000), 30, 0x0A00_0002)
            .encode()
            .unwrap();
        s.handle(10, &Event::Bytes(&peer_open), &mut acts);
        assert_eq!(s.state(), State::OpenConfirm);
        assert_eq!(s.peer().unwrap().asn, Asn(70_000));
        assert_eq!(s.peer().unwrap().hold_time, 30);

        // Peer's KEEPALIVE completes the handshake.
        acts.clear();
        s.handle(15, &Event::Bytes(&encode_keepalive()), &mut acts);
        assert_eq!(s.state(), State::Established);
        assert!(s.handshake_complete());
        assert_eq!(s.stats().established, 1);
    }

    #[test]
    fn hold_expiry_notifies_closes_and_schedules_retry() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        let peer_open = OpenMessage::new(Asn(70_000), 3, 0x0A00_0002)
            .encode()
            .unwrap();
        s.handle(0, &Event::Bytes(&peer_open), &mut acts);
        s.handle(0, &Event::Bytes(&encode_keepalive()), &mut acts);
        assert_eq!(s.state(), State::Established);

        // Silence for > 3 s expires the hold timer.
        acts.clear();
        s.handle(3_500, &Event::Tick, &mut acts);
        assert_eq!(s.stats().hold_expirations, 1);
        assert!(acts.contains(&SessionAction::Close));
        let bytes = take_bytes(&acts);
        let (msg, _) = Message::decode_prefix_of(&bytes, AsnEncoding::FourOctet).unwrap();
        assert_eq!(
            msg,
            Message::Notification(NotificationMessage::hold_timer_expired())
        );
        // Active opener: a retry is scheduled, not a dead stop.
        assert_eq!(s.state(), State::Active);
        assert!(s.next_deadline().is_some());
    }

    #[test]
    fn keepalives_are_sent_at_a_third_of_hold() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        let peer_open = OpenMessage::new(Asn(70_000), 30, 0x0A00_0002)
            .encode()
            .unwrap();
        s.handle(0, &Event::Bytes(&peer_open), &mut acts);
        s.handle(0, &Event::Bytes(&encode_keepalive()), &mut acts);
        let sent_before = s.stats().keepalives_sent;

        acts.clear();
        s.handle(10_000, &Event::Tick, &mut acts); // 30/3 = 10 s cadence
        assert_eq!(s.stats().keepalives_sent, sent_before + 1);
        assert_eq!(take_bytes(&acts), encode_keepalive().to_vec());
    }

    #[test]
    fn garbage_bytes_notify_and_close() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        acts.clear();
        s.handle(1, &Event::Bytes(&[0u8; 19]), &mut acts);
        assert_eq!(s.stats().decode_errors, 1);
        assert!(acts.contains(&SessionAction::Close));
        let bytes = take_bytes(&acts);
        let (msg, _) = Message::decode_prefix_of(&bytes, AsnEncoding::FourOctet).unwrap();
        let Message::Notification(n) = msg else {
            panic!("expected NOTIFICATION, got {msg:?}");
        };
        assert_eq!(n.code, notif::MESSAGE_HEADER_ERROR);
    }

    #[test]
    fn partial_frames_buffer_until_complete() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        let peer_open = OpenMessage::new(Asn(70_000), 30, 0x0A00_0002)
            .encode()
            .unwrap();
        // One byte at a time: no errors, OPEN processed at the last byte.
        for (i, b) in peer_open.iter().enumerate() {
            acts.clear();
            s.handle(
                1 + i as u64,
                &Event::Bytes(std::slice::from_ref(b)),
                &mut acts,
            );
        }
        assert_eq!(s.state(), State::OpenConfirm);
        assert_eq!(s.stats().decode_errors, 0);
    }

    #[test]
    fn capability_mismatch_is_refused_when_required() {
        let mut cfg = SessionConfig::new(Asn(64512), 1);
        cfg.require_four_octet = true;
        let mut s = Session::new(cfg);
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        acts.clear();
        let mut bare = OpenMessage::new(Asn(70_000), 30, 2);
        bare.capabilities.clear();
        let bytes = bare.encode().unwrap();
        s.handle(1, &Event::Bytes(&bytes), &mut acts);
        let sent = take_bytes(&acts);
        let (msg, _) = Message::decode_prefix_of(&sent, AsnEncoding::FourOctet).unwrap();
        let Message::Notification(n) = msg else {
            panic!("expected NOTIFICATION, got {msg:?}");
        };
        assert_eq!(n.code, notif::OPEN_MESSAGE_ERROR);
        assert_eq!(n.subcode, notif::UNSUPPORTED_CAPABILITY);
        assert_ne!(s.state(), State::Established);
    }

    #[test]
    fn two_octet_peer_downgrades_update_encoding() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        let mut bare = OpenMessage::new(Asn(64_000), 30, 2);
        bare.capabilities.clear();
        let bytes = bare.encode().unwrap();
        s.handle(1, &Event::Bytes(&bytes), &mut acts);
        assert!(!s.peer().unwrap().four_octet);
        s.handle(2, &Event::Bytes(&encode_keepalive()), &mut acts);
        assert_eq!(s.state(), State::Established);

        // A 4-octet-only path cannot be sent on a 2-octet session.
        use bgp_types::{AsPath, Ipv4Prefix, RouteOrigin};
        use bgp_wire::bgp::PathAttributes;
        let update = UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: AsPath::from_sequence([Asn(70_000)]),
                next_hop: 1,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }),
            nlri: vec![Ipv4Prefix::new(0x0A00_0000, 8)],
        };
        acts.clear();
        assert!(!s.send_update(&update, &mut acts));
        assert!(acts.is_empty());
    }

    #[test]
    fn manual_stop_sends_cease_and_goes_idle() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        acts.clear();
        s.handle(1, &Event::ManualStop, &mut acts);
        let bytes = take_bytes(&acts);
        let (msg, _) = Message::decode_prefix_of(&bytes, AsnEncoding::FourOctet).unwrap();
        assert_eq!(msg, Message::Notification(NotificationMessage::cease()));
        assert_eq!(s.state(), State::Idle);
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn update_before_established_is_an_fsm_error() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        s.handle(0, &Event::Connected, &mut acts);
        acts.clear();
        // A bare KEEPALIVE in OpenSent is out of order.
        s.handle(1, &Event::Bytes(&encode_keepalive()), &mut acts);
        let bytes = take_bytes(&acts);
        let (msg, _) = Message::decode_prefix_of(&bytes, AsnEncoding::FourOctet).unwrap();
        let Message::Notification(n) = msg else {
            panic!("expected NOTIFICATION, got {msg:?}");
        };
        assert_eq!(n.code, notif::FSM_ERROR);
    }

    #[test]
    fn connect_failure_backs_off_exponentially() {
        let mut s = active();
        let mut acts = Vec::new();
        s.handle(0, &Event::ManualStart, &mut acts);
        let mut now = 0;
        let mut delays = Vec::new();
        for _ in 0..4 {
            acts.clear();
            s.handle(now, &Event::ConnectFailed, &mut acts);
            assert_eq!(s.state(), State::Active);
            let deadline = s.next_deadline().unwrap();
            delays.push(deadline - now);
            now = deadline;
            acts.clear();
            s.handle(now, &Event::Tick, &mut acts);
            assert_eq!(s.state(), State::Connect);
            assert!(acts.contains(&SessionAction::Connect));
        }
        // Base 1000 ms doubling ladder (with jitter ≤ 50%): each floor
        // doubles, so delay 3 must exceed delay 0's floor by at least 4x.
        assert!(delays[3] >= 8 * 1_000, "delays: {delays:?}");
        assert!(delays[0] <= 1_500, "delays: {delays:?}");
    }
}
