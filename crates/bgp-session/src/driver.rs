//! Active (connecting) side over real TCP: a blocking driver that opens a
//! session to a listener, replays a stream of UPDATEs once established,
//! and survives connection loss with the FSM's own jittered backoff.
//!
//! This is the engine behind `moas-lab session-replay`: it turns an MRT
//! archive's updates into live BGP traffic against a standing daemon. The
//! FSM stays in charge of *all* protocol decisions — the driver only
//! executes its actions against a real socket and feeds wall-clock time
//! back in as virtual milliseconds.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use bgp_wire::bgp::UpdateMessage;

use crate::fsm::{Event, Session, SessionAction, SessionConfig, SessionStats, State};

/// How long each blocking read waits before the FSM gets a `Tick`.
const READ_SLICE: Duration = Duration::from_millis(20);
/// UPDATEs written per pump iteration once established (bounds memory in
/// the socket buffer, not throughput).
const PUMP_BATCH: usize = 64;

/// Configuration for [`replay_updates`].
#[derive(Debug, Clone)]
pub struct ReplayConfig {
    /// The session identity and timers.
    pub session: SessionConfig,
    /// Give up after this many TCP connect attempts.
    pub max_connect_attempts: u32,
    /// Give up if a single attempt cannot reach `Established` within this
    /// wall-clock budget.
    pub establish_timeout_ms: u64,
}

impl ReplayConfig {
    /// Defaults: 5 attempts, 30 s establishment budget.
    #[must_use]
    pub fn new(session: SessionConfig) -> Self {
        ReplayConfig {
            session,
            max_connect_attempts: 5,
            establish_timeout_ms: 30_000,
        }
    }
}

/// Why a replay run gave up.
#[derive(Debug)]
pub enum DriverError {
    /// TCP-level failure after exhausting every connect attempt.
    ConnectExhausted {
        /// Attempts made.
        attempts: u32,
        /// The last connect error observed.
        last: std::io::Error,
    },
    /// The session never reached `Established` within the budget.
    EstablishTimeout {
        /// The state the FSM was in when the budget ran out.
        state: State,
    },
    /// An I/O error on an established connection with no retry budget
    /// left.
    Io(std::io::Error),
}

impl std::fmt::Display for DriverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DriverError::ConnectExhausted { attempts, last } => {
                write!(f, "gave up after {attempts} connect attempts: {last}")
            }
            DriverError::EstablishTimeout { state } => {
                write!(f, "session stuck in {state:?} past the establish budget")
            }
            DriverError::Io(e) => write!(f, "session I/O error: {e}"),
        }
    }
}

impl std::error::Error for DriverError {}

/// What a completed replay did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayReport {
    /// UPDATEs written into the session.
    pub updates_sent: u64,
    /// TCP connects that succeeded (1 = no reconnects needed).
    pub connects: u32,
    /// Final FSM counters.
    pub stats: SessionStats,
}

/// Connects to `addr`, establishes a BGP session, replays every UPDATE
/// from `updates`, then closes with Cease. Reconnects (resuming where the
/// iterator left off) on connection loss, with the FSM's backoff pacing
/// the attempts.
///
/// # Errors
///
/// [`DriverError::ConnectExhausted`] when TCP never comes up,
/// [`DriverError::EstablishTimeout`] when the handshake stalls, and
/// [`DriverError::Io`] for a mid-session failure with no budget left.
pub fn replay_updates(
    addr: SocketAddr,
    cfg: &ReplayConfig,
    updates: &mut dyn Iterator<Item = UpdateMessage>,
) -> Result<ReplayReport, DriverError> {
    let mut session = Session::new(cfg.session.clone());
    let epoch = Instant::now();
    let now_ms = |epoch: &Instant| u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX);

    let mut report = ReplayReport::default();
    let mut attempts: u32 = 0;
    let mut last_err: Option<std::io::Error> = None;
    let mut pending: Option<UpdateMessage> = None;
    let mut done = false;

    // Kick the FSM; it emits the first Connect.
    let mut actions = Vec::new();
    session.handle(now_ms(&epoch), &Event::ManualStart, &mut actions);

    'attempts: while attempts < cfg.max_connect_attempts {
        // Honor the FSM's retry pacing: wait out its deadline if it is
        // backing off rather than asking to connect right now.
        while !actions.contains(&SessionAction::Connect) {
            match session.next_deadline() {
                Some(t) => {
                    let now = now_ms(&epoch);
                    if t > now {
                        std::thread::sleep(Duration::from_millis(t - now));
                    }
                    actions.clear();
                    session.handle(now_ms(&epoch), &Event::Tick, &mut actions);
                }
                None => break 'attempts, // Idle: nothing will ever fire
            }
        }
        actions.clear();

        attempts += 1;
        let stream = match TcpStream::connect_timeout(
            &addr,
            Duration::from_millis(cfg.session.connect_timeout_ms),
        ) {
            Ok(s) => s,
            Err(e) => {
                last_err = Some(e);
                session.handle(now_ms(&epoch), &Event::ConnectFailed, &mut actions);
                continue;
            }
        };
        if let Err(e) = stream
            .set_nodelay(true)
            .and_then(|()| stream.set_read_timeout(Some(READ_SLICE)))
        {
            last_err = Some(e);
            session.handle(now_ms(&epoch), &Event::ConnectFailed, &mut actions);
            continue;
        }
        report.connects += 1;

        match drive_connection(
            &mut session,
            stream,
            &epoch,
            cfg,
            updates,
            &mut pending,
            &mut report,
            &mut done,
        ) {
            Ok(()) => {
                // Replay finished, Cease sent.
                report.stats = *session.stats();
                return Ok(report);
            }
            Err(ConnectionOutcome::Lost) => {
                // The FSM has already scheduled its retry; loop around.
                actions.clear();
                session.handle(now_ms(&epoch), &Event::Tick, &mut actions);
            }
            Err(ConnectionOutcome::EstablishTimeout) => {
                return Err(DriverError::EstablishTimeout {
                    state: session.state(),
                });
            }
            Err(ConnectionOutcome::Io(e)) => {
                last_err = Some(e);
                actions.clear();
                session.handle(now_ms(&epoch), &Event::Closed, &mut actions);
            }
        }
    }

    Err(DriverError::ConnectExhausted {
        attempts,
        last: last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::TimedOut, "no connect attempt recorded an error")
        }),
    })
}

/// Why one connection's drive loop ended without finishing the replay.
enum ConnectionOutcome {
    /// The FSM closed the connection (error path); retry per its backoff.
    Lost,
    /// Never established within the budget.
    EstablishTimeout,
    /// Socket-level failure.
    Io(std::io::Error),
}

#[allow(clippy::too_many_arguments)]
fn drive_connection(
    session: &mut Session,
    mut stream: TcpStream,
    epoch: &Instant,
    cfg: &ReplayConfig,
    updates: &mut dyn Iterator<Item = UpdateMessage>,
    pending: &mut Option<UpdateMessage>,
    report: &mut ReplayReport,
    done: &mut bool,
) -> Result<(), ConnectionOutcome> {
    let now_ms = |epoch: &Instant| u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX);
    let established_deadline = now_ms(epoch) + cfg.establish_timeout_ms;

    let mut actions = Vec::new();
    session.handle(now_ms(epoch), &Event::Connected, &mut actions);

    let mut buf = [0u8; 64 * 1024];
    loop {
        // Execute pending actions against the socket.
        let mut closed = false;
        for action in actions.drain(..) {
            match action {
                SessionAction::SendBytes(bytes) => {
                    stream.write_all(&bytes).map_err(ConnectionOutcome::Io)?;
                }
                SessionAction::Close => closed = true,
                SessionAction::Connect | SessionAction::Deliver(_) => {}
            }
        }
        if closed {
            let _ = stream.shutdown(std::net::Shutdown::Both);
            if *done {
                // ManualStop path: the Cease went out; replay is complete.
                return Ok(());
            }
            return Err(ConnectionOutcome::Lost);
        }

        if session.state() == State::Established {
            // Pump the replay stream.
            let mut wrote = 0;
            while wrote < PUMP_BATCH {
                let Some(update) = pending.take().or_else(|| updates.next()) else {
                    // Replay finished: Cease and close.
                    *done = true;
                    session.handle(now_ms(epoch), &Event::ManualStop, &mut actions);
                    break;
                };
                if session.send_update(&update, &mut actions) {
                    report.updates_sent += 1;
                    wrote += 1;
                } else {
                    *pending = Some(update);
                    break;
                }
            }
            if !actions.is_empty() {
                continue; // write the batch (and possibly the Cease) out
            }
        } else if now_ms(epoch) > established_deadline {
            return Err(ConnectionOutcome::EstablishTimeout);
        }

        // Wait for input (bounded by the read timeout), then tick.
        match stream.read(&mut buf) {
            Ok(0) => {
                session.handle(now_ms(epoch), &Event::Closed, &mut actions);
                return Err(ConnectionOutcome::Lost);
            }
            Ok(n) => {
                session.handle(now_ms(epoch), &Event::Bytes(&buf[..n]), &mut actions);
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                session.handle(now_ms(epoch), &Event::Tick, &mut actions);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(ConnectionOutcome::Io(e)),
        }
    }
}
