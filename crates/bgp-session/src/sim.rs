//! [`SessionSim`]: a deterministic in-memory two-peer harness.
//!
//! Two [`Session`]s — `a` the active opener, `b` the passive listener —
//! are wired back to back through virtual byte queues under a virtual
//! clock. No sockets and no threads means a trial's entire evolution is a
//! pure function of its inputs, so the chaos scenarios built on top
//! produce byte-identical reports for any `--jobs N`.
//!
//! Faults are injected through explicit hooks rather than probabilistic
//! wrappers: the chaos driver decides *when* (from its own seeded RNG) and
//! calls [`SessionSim::reset_tcp`], [`SessionSim::corrupt_next`],
//! [`SessionSim::inject`], or [`SessionSim::set_drop_keepalives`]; the sim
//! just executes. That keeps the fault schedule in one place — the
//! scenario plan — instead of spread across both layers.

use bgp_wire::bgp::UpdateMessage;
use bgp_wire::msg::MESSAGE_TYPE_KEEPALIVE;

use crate::fsm::{Event, Session, SessionAction, SessionConfig, State};

/// TCP connect latency modeled by the sim, in virtual ms.
const CONNECT_LATENCY_MS: u64 = 5;
/// One-way byte propagation latency, in virtual ms.
const WIRE_LATENCY_MS: u64 = 1;

/// Which peer an operation refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Peer {
    /// The active opener.
    A,
    /// The passive listener.
    B,
}

/// Configuration for a two-peer simulation.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The active opener's session config (`passive` is forced off).
    pub a: SessionConfig,
    /// The passive listener's session config (`passive` is forced on).
    pub b: SessionConfig,
}

/// A chunk in flight on the virtual wire.
#[derive(Debug)]
struct Chunk {
    deliver_at: u64,
    bytes: Vec<u8>,
}

/// A scheduled control event (connect completion).
#[derive(Debug)]
struct PendingConnect {
    fires_at: u64,
}

/// The two-peer in-memory session simulator.
#[derive(Debug)]
pub struct SessionSim {
    /// The active opener.
    pub a: Session,
    /// The passive listener.
    pub b: Session,
    now: u64,
    link_up: bool,
    pending_connect: Option<PendingConnect>,
    wire_ab: Vec<Chunk>,
    wire_ba: Vec<Chunk>,
    drop_keepalives_from_a: bool,
    drop_keepalives_from_b: bool,
    corrupt_next_to_a: bool,
    corrupt_next_to_b: bool,
    delivered_a: Vec<UpdateMessage>,
    delivered_b: Vec<UpdateMessage>,
    /// Count of chunks whose bytes were mutated in flight.
    corrupted_chunks: u64,
    /// Count of simulated TCP resets.
    resets: u64,
}

impl SessionSim {
    /// Builds the pair and feeds both sides `ManualStart` at t=0.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        let mut a_cfg = cfg.a;
        a_cfg.passive = false;
        let mut b_cfg = cfg.b;
        b_cfg.passive = true;
        let mut sim = SessionSim {
            a: Session::new(a_cfg),
            b: Session::new(b_cfg),
            now: 0,
            link_up: false,
            pending_connect: None,
            wire_ab: Vec::new(),
            wire_ba: Vec::new(),
            drop_keepalives_from_a: false,
            drop_keepalives_from_b: false,
            corrupt_next_to_a: false,
            corrupt_next_to_b: false,
            delivered_a: Vec::new(),
            delivered_b: Vec::new(),
            corrupted_chunks: 0,
            resets: 0,
        };
        let mut acts = Vec::new();
        sim.a.handle(0, &Event::ManualStart, &mut acts);
        sim.route_actions(Peer::A, acts);
        let mut acts = Vec::new();
        sim.b.handle(0, &Event::ManualStart, &mut acts);
        sim.route_actions(Peer::B, acts);
        sim
    }

    /// The virtual clock, in ms.
    #[must_use]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Both FSMs report `Established`.
    #[must_use]
    pub fn established(&self) -> bool {
        self.a.state() == State::Established && self.b.state() == State::Established
    }

    /// UPDATEs delivered to the given peer's application so far.
    #[must_use]
    pub fn delivered(&self, peer: Peer) -> &[UpdateMessage] {
        match peer {
            Peer::A => &self.delivered_a,
            Peer::B => &self.delivered_b,
        }
    }

    /// Chunks mutated in flight so far.
    #[must_use]
    pub fn corrupted_chunks(&self) -> u64 {
        self.corrupted_chunks
    }

    /// Simulated TCP resets so far.
    #[must_use]
    pub fn resets(&self) -> u64 {
        self.resets
    }

    // --- fault hooks ------------------------------------------------------

    /// Silently discard KEEPALIVE frames sent by `from` (models a peer
    /// that stops refreshing the hold timer without the TCP dying).
    pub fn set_drop_keepalives(&mut self, from: Peer, enabled: bool) {
        match from {
            Peer::A => self.drop_keepalives_from_a = enabled,
            Peer::B => self.drop_keepalives_from_b = enabled,
        }
    }

    /// Flip one byte (at `position % len`) in the next chunk delivered to
    /// `to`.
    pub fn corrupt_next(&mut self, to: Peer) {
        match to {
            Peer::A => self.corrupt_next_to_a = true,
            Peer::B => self.corrupt_next_to_b = true,
        }
    }

    /// Inject raw bytes into the wire toward `to` (e.g. an unsolicited
    /// NOTIFICATION), as if the peer had sent them.
    pub fn inject(&mut self, to: Peer, bytes: Vec<u8>) {
        if !self.link_up {
            return;
        }
        let chunk = Chunk {
            deliver_at: self.now + WIRE_LATENCY_MS,
            bytes,
        };
        match to {
            Peer::A => self.wire_ba.push(chunk),
            Peer::B => self.wire_ab.push(chunk),
        }
    }

    /// Tear the TCP connection down under both FSMs (RST). In-flight bytes
    /// are lost; the active side will retry with backoff.
    pub fn reset_tcp(&mut self) {
        if !self.link_up {
            return;
        }
        self.resets += 1;
        self.drop_link();
        let mut acts = Vec::new();
        self.a.handle(self.now, &Event::Closed, &mut acts);
        self.route_actions(Peer::A, acts);
        let mut acts = Vec::new();
        self.b.handle(self.now, &Event::Closed, &mut acts);
        self.route_actions(Peer::B, acts);
    }

    /// Send an UPDATE from `from`'s application (only effective once that
    /// side is `Established`). Returns whether the FSM accepted it.
    pub fn send_update(&mut self, from: Peer, update: &UpdateMessage) -> bool {
        let mut acts = Vec::new();
        let ok = match from {
            Peer::A => self.a.send_update(update, &mut acts),
            Peer::B => self.b.send_update(update, &mut acts),
        };
        self.route_actions(from, acts);
        ok
    }

    // --- clock ------------------------------------------------------------

    /// Advances virtual time to `t_end`, processing every intermediate
    /// event (wire deliveries, connect completions, FSM timer deadlines)
    /// in timestamp order.
    pub fn run_until(&mut self, t_end: u64) {
        while self.now < t_end {
            let next = self
                .next_event_time()
                .map_or(t_end, |t| t.clamp(self.now + 1, t_end));
            self.now = next;
            self.dispatch_due();
        }
        // Fire anything due exactly at t_end.
        self.dispatch_due();
    }

    /// Advances until both sides are `Established` or `t_limit` is
    /// reached; returns whether establishment happened.
    pub fn run_until_established(&mut self, t_limit: u64) -> bool {
        while self.now < t_limit && !self.established() {
            let next = self
                .next_event_time()
                .map_or(t_limit, |t| t.clamp(self.now + 1, t_limit));
            self.now = next;
            self.dispatch_due();
        }
        self.established()
    }

    fn next_event_time(&self) -> Option<u64> {
        let wire = self
            .wire_ab
            .iter()
            .chain(self.wire_ba.iter())
            .map(|c| c.deliver_at)
            .min();
        [
            wire,
            self.pending_connect.as_ref().map(|p| p.fires_at),
            self.a.next_deadline(),
            self.b.next_deadline(),
        ]
        .into_iter()
        .flatten()
        .min()
    }

    fn dispatch_due(&mut self) {
        // Connect completion: the link comes up for both sides.
        if let Some(p) = &self.pending_connect {
            if self.now >= p.fires_at {
                self.pending_connect = None;
                self.link_up = true;
                let mut acts = Vec::new();
                self.a.handle(self.now, &Event::Connected, &mut acts);
                self.route_actions(Peer::A, acts);
                let mut acts = Vec::new();
                self.b.handle(self.now, &Event::Connected, &mut acts);
                self.route_actions(Peer::B, acts);
            }
        }

        // Wire deliveries, oldest first (chunks are pushed in send order
        // and share a fixed latency, so the vectors are already sorted).
        while let Some(chunk) = self.pop_due(Peer::B) {
            let mut acts = Vec::new();
            self.b.handle(self.now, &Event::Bytes(&chunk), &mut acts);
            self.route_actions(Peer::B, acts);
        }
        while let Some(chunk) = self.pop_due(Peer::A) {
            let mut acts = Vec::new();
            self.a.handle(self.now, &Event::Bytes(&chunk), &mut acts);
            self.route_actions(Peer::A, acts);
        }

        // FSM timers.
        let mut acts = Vec::new();
        self.a.handle(self.now, &Event::Tick, &mut acts);
        self.route_actions(Peer::A, acts);
        let mut acts = Vec::new();
        self.b.handle(self.now, &Event::Tick, &mut acts);
        self.route_actions(Peer::B, acts);
    }

    /// Pops the next due chunk destined for `to`, applying the
    /// corrupt-next hook.
    fn pop_due(&mut self, to: Peer) -> Option<Vec<u8>> {
        if !self.link_up {
            return None;
        }
        let queue = match to {
            Peer::A => &mut self.wire_ba,
            Peer::B => &mut self.wire_ab,
        };
        if queue.first().is_some_and(|c| c.deliver_at <= self.now) {
            let mut chunk = queue.remove(0);
            let corrupt = match to {
                Peer::A => std::mem::take(&mut self.corrupt_next_to_a),
                Peer::B => std::mem::take(&mut self.corrupt_next_to_b),
            };
            if corrupt && !chunk.bytes.is_empty() {
                // Deterministic position: the length byte region of the
                // header when long enough, else the first byte. Flipping
                // high bits guarantees the frame no longer parses clean.
                let pos = if chunk.bytes.len() > 16 { 16 } else { 0 };
                chunk.bytes[pos] ^= 0xA5;
                self.corrupted_chunks += 1;
            }
            Some(chunk.bytes)
        } else {
            None
        }
    }

    fn drop_link(&mut self) {
        self.link_up = false;
        self.wire_ab.clear();
        self.wire_ba.clear();
        self.pending_connect = None;
    }

    /// Executes the actions one FSM emitted, feeding the wire and the
    /// other FSM's control events.
    fn route_actions(&mut self, from: Peer, actions: Vec<SessionAction>) {
        for action in actions {
            match action {
                SessionAction::Connect => {
                    // Only the active opener connects; model the TCP
                    // round-trip with a fixed latency.
                    self.pending_connect = Some(PendingConnect {
                        fires_at: self.now + CONNECT_LATENCY_MS,
                    });
                }
                SessionAction::SendBytes(bytes) => {
                    if !self.link_up {
                        continue; // bytes into a dead socket vanish
                    }
                    let drop_ka = match from {
                        Peer::A => self.drop_keepalives_from_a,
                        Peer::B => self.drop_keepalives_from_b,
                    };
                    if drop_ka && is_keepalive(&bytes) {
                        continue;
                    }
                    let chunk = Chunk {
                        deliver_at: self.now + WIRE_LATENCY_MS,
                        bytes,
                    };
                    match from {
                        Peer::A => self.wire_ab.push(chunk),
                        Peer::B => self.wire_ba.push(chunk),
                    }
                }
                SessionAction::Close => {
                    if self.link_up {
                        self.drop_link();
                        // The other side sees the close.
                        let mut acts = Vec::new();
                        match from {
                            Peer::A => {
                                self.b.handle(self.now, &Event::Closed, &mut acts);
                                self.route_actions(Peer::B, acts);
                            }
                            Peer::B => {
                                self.a.handle(self.now, &Event::Closed, &mut acts);
                                self.route_actions(Peer::A, acts);
                            }
                        }
                    }
                }
                SessionAction::Deliver(update) => match from {
                    Peer::A => self.delivered_a.push(update),
                    Peer::B => self.delivered_b.push(update),
                },
            }
        }
    }
}

/// A single well-formed KEEPALIVE frame (19 bytes, type 4)?
fn is_keepalive(bytes: &[u8]) -> bool {
    bytes.len() == 19 && bytes[18] == MESSAGE_TYPE_KEEPALIVE
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::{AsPath, Asn, Ipv4Prefix, RouteOrigin};
    use bgp_wire::bgp::PathAttributes;
    use bgp_wire::msg::NotificationMessage;

    fn pair(hold: u16) -> SessionSim {
        let mut a = SessionConfig::new(Asn(64512), 0x0A00_0001);
        a.hold_time = hold;
        a.retry_base_ms = 50;
        a.retry_max_ms = 1_000;
        let mut b = SessionConfig::new(Asn(70_000), 0x0A00_0002);
        b.hold_time = hold;
        SessionSim::new(SimConfig { a, b })
    }

    fn sample_update() -> UpdateMessage {
        UpdateMessage {
            withdrawn: Vec::new(),
            attrs: Some(PathAttributes {
                origin: RouteOrigin::Igp,
                as_path: AsPath::from_sequence([Asn(70_000), Asn(701)]),
                next_hop: 0x0A00_0002,
                local_pref: None,
                communities: Vec::new(),
                mp_reach: None,
                mp_unreach: None,
            }),
            nlri: vec![Ipv4Prefix::new(0xC000_0200, 24)],
        }
    }

    #[test]
    fn pair_establishes_and_exchanges_updates() {
        let mut sim = pair(30);
        assert!(sim.run_until_established(10_000), "never established");
        assert_eq!(sim.a.peer().unwrap().asn, Asn(70_000));
        assert_eq!(sim.b.peer().unwrap().asn, Asn(64512));

        let update = sample_update();
        assert!(sim.send_update(Peer::B, &update));
        sim.run_until(sim.now() + 10);
        assert_eq!(sim.delivered(Peer::A), &[update]);
    }

    #[test]
    fn dropped_keepalives_expire_hold_then_reconnect() {
        let mut sim = pair(3);
        assert!(sim.run_until_established(10_000));
        let established_once = sim.now();

        // B goes silent: its keepalives are dropped on the floor.
        sim.set_drop_keepalives(Peer::B, true);
        sim.run_until(established_once + 5_000);
        assert_eq!(sim.a.stats().hold_expirations, 1);

        // Heal the link; the active side's backoff brings it back.
        sim.set_drop_keepalives(Peer::B, false);
        assert!(
            sim.run_until_established(sim.now() + 30_000),
            "no reconnect"
        );
        assert!(sim.a.stats().established >= 2);
    }

    #[test]
    fn injected_notification_closes_then_recovers() {
        let mut sim = pair(30);
        assert!(sim.run_until_established(10_000));
        let notif = NotificationMessage::cease().encode().unwrap();
        sim.inject(Peer::A, notif);
        sim.run_until(sim.now() + 10);
        assert_eq!(sim.a.stats().notifications_received, 1);
        assert!(!sim.established());
        assert!(sim.run_until_established(sim.now() + 30_000), "no recovery");
    }

    #[test]
    fn corruption_triggers_notification_and_reconnect() {
        let mut sim = pair(30);
        assert!(sim.run_until_established(10_000));
        sim.corrupt_next(Peer::A);
        let update = sample_update();
        sim.send_update(Peer::B, &update);
        sim.run_until(sim.now() + 10);
        assert_eq!(sim.corrupted_chunks(), 1);
        assert_eq!(sim.a.stats().decode_errors, 1);
        assert!(sim.run_until_established(sim.now() + 30_000), "no recovery");
    }

    #[test]
    fn tcp_reset_reconnects_with_backoff() {
        let mut sim = pair(30);
        assert!(sim.run_until_established(10_000));
        for _ in 0..3 {
            sim.reset_tcp();
            assert!(!sim.established());
            assert!(sim.run_until_established(sim.now() + 60_000), "no recovery");
        }
        assert_eq!(sim.resets(), 3);
        assert_eq!(sim.a.stats().established, 4);
    }

    #[test]
    fn same_seed_same_trace() {
        let run = || {
            let mut sim = pair(3);
            sim.run_until_established(10_000);
            sim.set_drop_keepalives(Peer::B, true);
            sim.run_until(20_000);
            (
                *sim.a.stats(),
                *sim.b.stats(),
                sim.now(),
                sim.a.state(),
                sim.b.state(),
            )
        };
        assert_eq!(run(), run());
    }
}
