//! Live BGP sessions for the MOAS workspace: a deterministic RFC 4271
//! finite-state machine with retry/backoff and hold timers, runnable
//! against pure event sequences (property tests, chaos trials) *and* over
//! real loopback TCP.
//!
//! The paper's pipeline consumes routing data as MRT archives; everything
//! upstream of those archives — the BGP sessions collectors maintain with
//! their peers — was out of scope until now. This crate closes that gap
//! with three layers:
//!
//! * [`fsm`] — the sans-IO core. A [`Session`] consumes typed events
//!   (connect results, raw bytes, clock ticks) at an explicit virtual time
//!   and emits typed actions (connect requests, wire bytes, delivered
//!   UPDATEs). No sockets, no threads, no wall clock: the same FSM drives
//!   unit tests, seeded chaos trials, and production sockets byte for
//!   byte.
//! * [`sim`] — [`SessionSim`], an in-memory two-peer harness that shuttles
//!   bytes between two FSMs under a virtual clock, with seeded fault
//!   injection hooks (dropped keepalives, NOTIFICATION storms, TCP resets,
//!   byte corruption). The session-level chaos scenarios run here, which
//!   is what keeps their reports byte-identical across `--jobs N`.
//! * [`service`] / [`driver`] — the real-IO shells: a [`minisock`]
//!   [`Service`](minisock::Service) adapter for the passive (listening)
//!   side and a blocking active-open driver with bounded, jittered
//!   reconnect for the `session-replay` tool.
//!
//! [`backoff`] carries the shared jittered-exponential-backoff helper; the
//! daemon's feed client reuses it so "how we retry" has exactly one
//! definition in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod driver;
pub mod fsm;
pub mod service;
pub mod sim;

pub use backoff::Backoff;
pub use driver::{replay_updates, DriverError, ReplayConfig, ReplayReport};
pub use fsm::{Event, PeerInfo, Session, SessionAction, SessionConfig, SessionStats, State};
pub use service::{BgpListener, SessionHandler};
pub use sim::{SessionSim, SimConfig};
