//! Jittered exponential backoff, shared by every reconnect path in the
//! workspace (the FSM's ConnectRetry timer, the daemon feed client, the
//! replay driver).
//!
//! The schedule is the classic doubling ladder with full-range jitter on
//! the upper half: attempt `n` waits `base * 2^n` capped at `max`, then
//! adds a uniformly random extra of up to half that value. Jitter comes
//! from a caller-seeded [`SmallRng`], so a given seed always produces the
//! same delay sequence — chaos trials depend on that.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A deterministic jittered exponential backoff schedule.
#[derive(Debug, Clone)]
pub struct Backoff {
    base_ms: u64,
    max_ms: u64,
    attempt: u32,
    rng: SmallRng,
}

impl Backoff {
    /// Creates a schedule starting at `base_ms` and capping at `max_ms`,
    /// with jitter drawn from `seed`. A `base_ms` of zero is clamped to 1
    /// so the schedule always makes progress.
    #[must_use]
    pub fn new(base_ms: u64, max_ms: u64, seed: u64) -> Self {
        let base_ms = base_ms.max(1);
        Backoff {
            base_ms,
            max_ms: max_ms.max(base_ms),
            attempt: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The delay before the next attempt, in milliseconds, advancing the
    /// schedule. Deterministic for a given seed and call sequence.
    pub fn next_delay_ms(&mut self) -> u64 {
        let doubled = self
            .base_ms
            .saturating_mul(1u64.checked_shl(self.attempt).unwrap_or(u64::MAX))
            .min(self.max_ms);
        self.attempt = self.attempt.saturating_add(1);
        let jitter_span = doubled / 2;
        let jitter = if jitter_span == 0 {
            0
        } else {
            self.rng.gen_range(0..=jitter_span)
        };
        doubled.saturating_add(jitter).min(self.max_ms)
    }

    /// How many delays have been handed out since the last reset.
    #[must_use]
    pub fn attempts(&self) -> u32 {
        self.attempt
    }

    /// Restarts the schedule from the base delay (e.g. after a successful
    /// connection). The jitter stream keeps advancing — resets do not
    /// replay old delays.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_and_cap() {
        let mut b = Backoff::new(100, 5_000, 7);
        let mut prev_floor = 0;
        for n in 0..12 {
            let d = b.next_delay_ms();
            let floor = (100u64 << n.min(10)).min(5_000);
            assert!(d >= floor.min(5_000), "attempt {n}: {d} < floor {floor}");
            assert!(d <= 5_000, "attempt {n}: {d} above cap");
            assert!(floor >= prev_floor);
            prev_floor = floor;
        }
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = Backoff::new(50, 10_000, 42);
        let mut b = Backoff::new(50, 10_000, 42);
        for _ in 0..20 {
            assert_eq!(a.next_delay_ms(), b.next_delay_ms());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Backoff::new(50, 10_000, 1);
        let mut b = Backoff::new(50, 10_000, 2);
        let same = (0..20)
            .filter(|_| a.next_delay_ms() == b.next_delay_ms())
            .count();
        assert!(same < 20, "jitter streams should differ between seeds");
    }

    #[test]
    fn reset_restarts_the_ladder() {
        let mut b = Backoff::new(100, 5_000, 3);
        for _ in 0..6 {
            b.next_delay_ms();
        }
        assert_eq!(b.attempts(), 6);
        b.reset();
        assert_eq!(b.attempts(), 0);
        // First post-reset delay is back to base + jitter ≤ 1.5 * base.
        let d = b.next_delay_ms();
        assert!((100..=150).contains(&d), "post-reset delay {d}");
    }

    #[test]
    fn zero_base_is_clamped() {
        let mut b = Backoff::new(0, 10, 0);
        assert!(b.next_delay_ms() >= 1);
    }
}
