//! Passive (listening) side over real TCP: a [`minisock::Service`]
//! adapter that runs one [`Session`] per accepted connection.
//!
//! The reactor owns the sockets and the clock; this adapter translates
//! between the two worlds. Bytes from `on_data` become [`Event::Bytes`];
//! the reactor's tick drives [`Event::Tick`] through the per-connection
//! sweep hook, which is also how FSM-initiated closes (hold expiry,
//! malformed frames) actually reach the socket; decoded UPDATEs go to the
//! embedding application through [`SessionHandler`].

use std::collections::HashMap;
use std::time::Instant;

use minisock::{Action, ConnId, Service};

use bgp_wire::bgp::UpdateMessage;

use crate::fsm::{Event, PeerInfo, Session, SessionAction, SessionConfig};

/// Where decoded traffic and session lifecycle events go.
pub trait SessionHandler: Send + 'static {
    /// An UPDATE arrived on an established session.
    fn on_update(&mut self, peer: &PeerInfo, update: UpdateMessage);

    /// A session completed its handshake.
    fn on_established(&mut self, peer: &PeerInfo) {
        let _ = peer;
    }

    /// A session's connection closed (any cause).
    fn on_session_closed(&mut self) {}
}

/// Per-connection state: the FSM plus edge-detection for establishment.
struct PerConn {
    session: Session,
    /// Value of `stats().established` already reported to the handler.
    /// A counter, not a bool: a session can establish and tear down within
    /// a single `handle()` call, which a state comparison would miss.
    established_seen: u64,
}

/// A BGP listener service: every accepted connection gets a passive
/// [`Session`] cloned from the template config.
pub struct BgpListener<H> {
    template: SessionConfig,
    handler: H,
    epoch: Instant,
    conns: HashMap<ConnId, PerConn>,
}

impl<H: SessionHandler> BgpListener<H> {
    /// Creates the service. `template.passive` is forced on.
    #[must_use]
    pub fn new(mut template: SessionConfig, handler: H) -> Self {
        template.passive = true;
        BgpListener {
            template,
            handler,
            epoch: Instant::now(),
            conns: HashMap::new(),
        }
    }

    /// Milliseconds since the service started — the virtual clock handed
    /// to the FSMs.
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Routes one FSM's emitted actions; returns whether the FSM asked to
    /// close the connection.
    fn route(
        handler: &mut H,
        conn: &mut PerConn,
        actions: Vec<SessionAction>,
        out: &mut Vec<u8>,
    ) -> bool {
        // Establishment precedes any Deliver produced by the same
        // `handle()` call, so report it first.
        let established = conn.session.stats().established;
        if established > conn.established_seen {
            conn.established_seen = established;
            if let Some(peer) = conn.session.peer() {
                handler.on_established(peer);
            }
        }
        let mut close = false;
        for action in actions {
            match action {
                SessionAction::SendBytes(bytes) => out.extend_from_slice(&bytes),
                SessionAction::Deliver(update) => {
                    if let Some(peer) = conn.session.peer() {
                        handler.on_update(peer, update);
                    }
                }
                SessionAction::Close => close = true,
                // Passive sessions never initiate connections.
                SessionAction::Connect => {}
            }
        }
        close
    }
}

impl<H: SessionHandler> Service for BgpListener<H> {
    fn on_open(&mut self, conn: ConnId, out: &mut Vec<u8>) {
        let now = self.now_ms();
        let mut session = Session::new(self.template.clone());
        let mut actions = Vec::new();
        session.handle(now, &Event::ManualStart, &mut actions);
        session.handle(now, &Event::Connected, &mut actions);
        let mut pc = PerConn {
            session,
            established_seen: 0,
        };
        // A close at accept time cannot happen (the OPEN always encodes:
        // the template's hold time is validated by SessionConfig users),
        // but routing ignores it gracefully if it ever does.
        let _ = Self::route(&mut self.handler, &mut pc, actions, out);
        self.conns.insert(conn, pc);
    }

    fn on_data(&mut self, conn: ConnId, inbuf: &mut Vec<u8>, out: &mut Vec<u8>) -> Action {
        let now = self.now_ms();
        let Some(pc) = self.conns.get_mut(&conn) else {
            inbuf.clear();
            return Action::CloseAfterFlush;
        };
        // The FSM reassembles frames internally; hand everything over.
        let bytes = std::mem::take(inbuf);
        let mut actions = Vec::new();
        pc.session.handle(now, &Event::Bytes(&bytes), &mut actions);
        if Self::route(&mut self.handler, pc, actions, out) {
            Action::CloseAfterFlush
        } else {
            Action::Continue
        }
    }

    fn on_sweep(&mut self, conn: ConnId, out: &mut Vec<u8>) -> Action {
        let now = self.now_ms();
        let Some(pc) = self.conns.get_mut(&conn) else {
            return Action::CloseAfterFlush;
        };
        if pc.session.next_deadline().is_some_and(|t| t > now) {
            return Action::Continue;
        }
        let mut actions = Vec::new();
        pc.session.handle(now, &Event::Tick, &mut actions);
        if Self::route(&mut self.handler, pc, actions, out) {
            Action::CloseAfterFlush
        } else {
            Action::Continue
        }
    }

    fn on_close(&mut self, conn: ConnId) {
        if self.conns.remove(&conn).is_some() {
            self.handler.on_session_closed();
        }
    }
}
