//! Figure 10 — Experiment 2: comparison between the 25-AS, 46-AS and 63-AS
//! topologies, with and without MOAS detection.

use std::sync::Once;

use as_topology::paper::PaperTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{experiment2, run_trial, SweepConfig, TrialConfig};
use moas_core::Deployment;

static PRINTED: Once = Once::new();

fn regenerate_figure() -> String {
    let config = SweepConfig::paper();
    let mut out = String::new();
    for origins in [1, 2] {
        out.push_str(&experiment2(origins, &config).render_table());
        out.push('\n');
    }
    out
}

fn bench_fig10(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Figure 10 — Experiment 2: impact of topology size on robustness",
        &regenerate_figure(),
    );

    let mut group = c.benchmark_group("fig10");
    group.sample_size(20);
    for topology in PaperTopology::ALL {
        let graph = topology.graph();
        let stubs = graph.stub_asns();
        let origins = vec![stubs[0]];
        let attackers: Vec<_> = stubs[1..3].to_vec();
        group.bench_function(format!("trial_{topology}_full_moas"), |b| {
            let config = TrialConfig::new(origins.clone(), attackers.clone(), Deployment::Full);
            b.iter(|| run_trial(graph, &config));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
