//! End-to-end MRT-archive → RIB ingest throughput: the zero-copy view path
//! (`OriginTable::from_mrt`) against the owned-decode baseline
//! (`OriginTable::from_mrt_owned`) on the same synthetic archive.
//!
//! Like `sweep_throughput` this target has a custom `main`: besides
//! printing MiB/s and records/s it writes `BENCH_ingest.json` at the
//! repository root, the perf-trajectory record tracked across PRs. Both
//! paths must produce identical tables — asserted on every run, so the
//! bench doubles as a coarse differential test. `--test` (what CI's bench
//! smoke passes) runs a reduced archive and skips the file write.

use std::time::Instant;

use bgp_types::{AsPath, Asn, Ipv4Prefix, Route};
use bgp_wire::bgp::PathAttributes;
use bgp_wire::mrt::{
    MrtBody, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast,
};
use bgp_wire::{day_to_timestamp, DailyDumpStream};
use moas_daemon::OriginTable;

/// Repetitions per timed path; the minimum is reported.
const REPS: usize = 3;

/// Deterministic xorshift64 — no external PRNG needed for archive shaping.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// The archive's collector roster.
fn peers() -> Vec<PeerEntry> {
    [7018u32, 701, 1239, 3356, 2914, 174, 6453, 3257]
        .iter()
        .enumerate()
        .map(|(i, &asn)| PeerEntry {
            bgp_id: 0x0A00_0000 + i as u32,
            addr: 0xC0A8_0000 + i as u32,
            asn: Asn(asn),
        })
        .collect()
}

/// A pool of distinct AS paths. Real dumps repeat a modest set of paths
/// across a huge number of entries — the shape hash-consing exploits.
fn path_pool(rng: &mut Rng, size: usize) -> Vec<AsPath> {
    (0..size)
        .map(|_| {
            let hops = 3 + rng.below(4) as usize;
            AsPath::from_sequence((0..hops).map(|_| Asn(1 + rng.below(60_000) as u32)))
        })
        .collect()
}

/// Builds a `days`-day table-dump archive: each day re-announces every
/// prefix from `entries_per_prefix` peers with paths drawn from the pool.
/// Returns the encoded bytes plus the MRT record and RIB entry counts.
fn make_archive(prefixes: usize, entries_per_prefix: usize, days: u32) -> (Vec<u8>, usize, usize) {
    let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
    let pool = path_pool(&mut rng, 512);
    let roster = peers();
    let mut writer = MrtWriter::new(Vec::new());
    let mut records = 0usize;
    let mut entries = 0usize;
    for day in 0..days {
        let timestamp = day_to_timestamp(day);
        writer
            .write_record(&MrtRecord {
                timestamp,
                body: MrtBody::PeerIndexTable(PeerIndexTable {
                    collector_id: 0x0A00_00FE,
                    view_name: "bench".into(),
                    peers: roster.clone(),
                }),
            })
            .unwrap();
        records += 1;
        for i in 0..prefixes {
            let prefix = Ipv4Prefix::new(
                (10u32 << 24) | ((i as u32) << 8),
                if i % 5 == 0 { 16 } else { 24 },
            );
            let rib_entries: Vec<RibEntry> = (0..entries_per_prefix)
                .map(|e| {
                    let path = &pool[rng.below(pool.len() as u64) as usize];
                    RibEntry {
                        peer_index: ((i + e) % roster.len()) as u16,
                        originated_time: timestamp,
                        attrs: PathAttributes::from_route(&Route::new(prefix, path.clone())),
                    }
                })
                .collect();
            entries += rib_entries.len();
            writer
                .write_record(&MrtRecord {
                    timestamp,
                    body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                        sequence: i as u32,
                        prefix,
                        entries: rib_entries,
                    }),
                })
                .unwrap();
            records += 1;
        }
    }
    (writer.finish().unwrap(), records, entries)
}

struct Measurement {
    seconds: f64,
    mib_per_s: f64,
    records_per_s: f64,
    entries_per_s: f64,
}

/// Times `build` over `REPS` repetitions, keeping the fastest.
fn measure(
    bytes: &[u8],
    records: usize,
    entries: usize,
    build: impl Fn(&[u8]) -> OriginTable,
) -> (OriginTable, Measurement) {
    let mut best = f64::INFINITY;
    let mut table = build(bytes);
    for _ in 0..REPS {
        let start = Instant::now();
        table = build(bytes);
        best = best.min(start.elapsed().as_secs_f64());
    }
    let mib = bytes.len() as f64 / (1024.0 * 1024.0);
    let m = Measurement {
        seconds: best,
        mib_per_s: mib / best,
        records_per_s: records as f64 / best,
        entries_per_s: entries as f64 / best,
    };
    (table, m)
}

/// Differential check: both paths must return the same table state.
fn assert_identical(owned: &OriginTable, zero_copy: &OriginTable) {
    assert_eq!(
        owned.snapshot(),
        zero_copy.snapshot(),
        "zero-copy ingest diverged from the owned baseline"
    );
    assert_eq!(owned.prefix_count(), zero_copy.prefix_count());
    assert_eq!(owned.entry_count(), zero_copy.entry_count());
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // Smoke: a small archive, differential checks, no file write.
        let (bytes, _records, _entries) = make_archive(200, 2, 2);
        let owned = OriginTable::from_mrt_owned(&bytes[..], 1).unwrap();
        let zero_copy = OriginTable::from_mrt(&bytes[..], 1).unwrap();
        assert_identical(&owned, &zero_copy);
        assert!(owned.prefix_count() > 0, "smoke archive imported nothing");
        // The day-grouped streaming path must see every entry too.
        let mut stream = DailyDumpStream::new(&bytes[..]);
        let mut stream_entries = 0usize;
        while let Some(day) = stream.next_day().unwrap() {
            stream_entries += day.rib_entries;
        }
        assert_eq!(stream_entries, 200 * 2 * 2);
        assert_eq!(stream.bytes_read(), bytes.len() as u64);
        println!(
            "bench ingest_throughput: smoke OK ({} prefixes)",
            owned.prefix_count()
        );
        return;
    }

    let (bytes, records, entries) = make_archive(20_000, 3, 2);
    let mib = bytes.len() as f64 / (1024.0 * 1024.0);
    println!("archive: {mib:.1} MiB, {records} MRT records, {entries} RIB entries");

    let (owned_table, owned) = measure(&bytes, records, entries, |b| {
        OriginTable::from_mrt_owned(b, 1).unwrap()
    });
    println!(
        "bench ingest_throughput/owned      {:>7.1} MiB/s  {:>9.0} records/s  {:>10.0} entries/s ({:.3} s)",
        owned.mib_per_s, owned.records_per_s, owned.entries_per_s, owned.seconds
    );
    let (view_table, zero_copy) = measure(&bytes, records, entries, |b| {
        OriginTable::from_mrt(b, 1).unwrap()
    });
    let speedup = owned.seconds / zero_copy.seconds;
    println!(
        "bench ingest_throughput/zero_copy  {:>7.1} MiB/s  {:>9.0} records/s  {:>10.0} entries/s ({:.3} s, {speedup:.2}x)",
        zero_copy.mib_per_s, zero_copy.records_per_s, zero_copy.entries_per_s, zero_copy.seconds
    );
    assert_identical(&owned_table, &view_table);

    // The day-grouped streaming importer on the same archive (origin
    // counting only), for the measurement pipeline's point of view.
    let mut stream_best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        let mut stream = DailyDumpStream::new(&bytes[..]);
        while stream.next_day().unwrap().is_some() {}
        stream_best = stream_best.min(start.elapsed().as_secs_f64());
    }
    println!(
        "bench ingest_throughput/daily_stream {:>5.1} MiB/s  {:>9.0} records/s  {:>10.0} entries/s ({:.3} s)",
        mib / stream_best,
        records as f64 / stream_best,
        entries as f64 / stream_best,
        stream_best
    );

    let json = format!(
        "{{\n  \"bench\": \"ingest_throughput\",\n  \"archive\": {{ \"mib\": {:.2}, \"mrt_records\": {}, \"rib_entries\": {}, \"days\": 2, \"distinct_paths\": 512 }},\n  \"owned\": {{ \"seconds\": {:.4}, \"mib_per_s\": {:.1}, \"records_per_s\": {:.0}, \"rib_entries_per_s\": {:.0} }},\n  \"zero_copy\": {{ \"seconds\": {:.4}, \"mib_per_s\": {:.1}, \"records_per_s\": {:.0}, \"rib_entries_per_s\": {:.0} }},\n  \"daily_stream\": {{ \"seconds\": {:.4}, \"mib_per_s\": {:.1}, \"records_per_s\": {:.0}, \"rib_entries_per_s\": {:.0} }},\n  \"speedup_zero_copy_vs_owned\": {:.2},\n  \"notes\": \"Fastest of {} repetitions on a synthetic 2-day table-dump archive (20k prefixes x 3 peers/day, 512 distinct AS paths). owned = OriginTable::from_mrt_owned (per-record owned decode, per-prefix map); zero_copy = OriginTable::from_mrt (MrtViewReader reusable buffer, wire-level origin extraction, sorted bulk trie load); daily_stream = DailyDumpStream (view path with day grouping, origins only). Both table builders are asserted snapshot-identical every run.\"\n}}\n",
        mib,
        records,
        entries,
        owned.seconds,
        owned.mib_per_s,
        owned.records_per_s,
        owned.entries_per_s,
        zero_copy.seconds,
        zero_copy.mib_per_s,
        zero_copy.records_per_s,
        zero_copy.entries_per_s,
        stream_best,
        mib / stream_best,
        records as f64 / stream_best,
        entries as f64 / stream_best,
        speedup,
        REPS,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
