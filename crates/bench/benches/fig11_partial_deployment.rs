//! Figure 11 — Experiment 3: partial vs complete deployment of MOAS
//! detection (46-AS and 63-AS panels).

use std::sync::Once;

use as_topology::paper::PaperTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{experiment3, run_trial, SweepConfig, TrialConfig};
use moas_core::Deployment;

static PRINTED: Once = Once::new();

fn regenerate_figure() -> String {
    let config = SweepConfig::paper();
    let mut out = String::new();
    for topology in [PaperTopology::As46, PaperTopology::As63] {
        out.push_str(&experiment3(topology, &config).render_table());
        out.push('\n');
    }
    out
}

fn bench_fig11(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Figure 11 — Experiment 3: partial deployment of MOAS checking",
        &regenerate_figure(),
    );

    let graph = PaperTopology::As63.graph();
    let stubs = graph.stub_asns();
    let asns: Vec<_> = graph.asns().collect();
    let origins = vec![stubs[0]];
    let attackers: Vec<_> = stubs[1..4].to_vec();

    let mut group = c.benchmark_group("fig11");
    group.sample_size(20);
    for fraction in [0.0, 0.5, 1.0] {
        let deployment = Deployment::sample(&asns, fraction, 42);
        group.bench_function(
            format!("trial_63as_deploy_{:.0}pct", fraction * 100.0),
            |b| {
                let config =
                    TrialConfig::new(origins.clone(), attackers.clone(), deployment.clone());
                b.iter(|| run_trial(graph, &config));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
