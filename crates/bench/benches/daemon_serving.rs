//! Daemon serving throughput: `/validity` queries/s over the HTTP endpoint
//! and feed-update fanout latency (apply → every connected feed client has
//! the diff), against a ~1M-prefix synthetic table.
//!
//! Like `sweep_throughput` this target has a custom `main`: besides printing
//! the numbers it writes `BENCH_daemon.json` at the repository root. `--test`
//! (what CI's bench smoke passes) runs a reduced workload and skips the file
//! write.
//!
//! The daemon, its listener threads, and the benchmarking clients all share
//! the host's CPU allotment, so on a 1-CPU container these numbers include
//! the scheduling cost of that contention — they are end-to-end loopback
//! figures, not isolated server-side costs.

use std::fmt::Write as _;
use std::time::Instant;

use bgp_types::{Asn, Ipv4Prefix};
use moas_daemon::client::{FeedClient, HttpClient, SyncOutcome};
use moas_daemon::{Daemon, DaemonConfig, OriginTable, TableUpdate};

/// Repetitions per timed configuration; the minimum is reported.
const REPS: usize = 3;

/// Queries per timed repetition.
const QUERIES: usize = 20_000;

/// Feed clients mirroring the table during the fanout measurement.
const FEED_CLIENTS: usize = 4;

/// Update rounds per fanout repetition.
const FANOUT_ROUNDS: usize = 50;

/// Dense /24s under 16.0.0.0/4 — 2^20 = 1,048,576 prefixes.
const FULL_PREFIXES: usize = 1 << 20;

/// A small xorshift so the query mix is deterministic without `rand`.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The i-th synthetic /24 under 16.0.0.0/4 and its two origins.
fn synthetic_entry(i: usize) -> (Ipv4Prefix, Asn, Asn) {
    let addr = (16u32 << 24) | ((i as u32) << 8);
    let prefix = Ipv4Prefix::new(addr, 24);
    let first = Asn(64_512 + (i as u32 % 128));
    let second = Asn(65_000 + (i as u32 % 64));
    (prefix, first, second)
}

/// Builds the synthetic table: `count` dense /24s, two origins each.
fn build_table(count: usize) -> OriginTable {
    let mut table = OriginTable::new(9);
    for i in 0..count {
        let (prefix, first, second) = synthetic_entry(i);
        table.insert(prefix, [first, second].into_iter().collect());
    }
    table
}

/// Times `QUERIES` `/validity` lookups over one persistent HTTP connection.
/// The mix is two-thirds hits (half valid, half invalid origin) and
/// one-third misses outside the populated range.
fn measure_queries(daemon: &Daemon, queries: usize, table_size: usize) -> f64 {
    let mut http = HttpClient::connect(daemon.http_addr()).expect("connect to daemon");
    let mut rng = XorShift(0x9E37_79B9_7F4A_7C15);
    let mut path = String::with_capacity(64);
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        rng.0 = 0x9E37_79B9_7F4A_7C15;
        let start = Instant::now();
        for _ in 0..queries {
            let roll = rng.next();
            let i = (roll as usize >> 8) % table_size;
            let (prefix, valid_origin, _) = synthetic_entry(i);
            let (prefix, asn) = match roll % 3 {
                0 => (prefix, valid_origin),
                1 => (prefix, Asn(64_000)),
                _ => (Ipv4Prefix::new(198u32 << 24, 24), Asn(64_000)),
            };
            path.clear();
            write!(path, "/validity?prefix={prefix}&asn={}", asn.0)
                .expect("write to String cannot fail");
            let (status, body) = http.get(&path).expect("query the daemon");
            assert_eq!(status, 200, "query failed: {body}");
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    queries as f64 / best
}

/// Times fanout: one `apply` on the daemon until every connected feed client
/// has synced the diff. Returns the mean per-round latency in seconds,
/// fastest repetition of `REPS`.
fn measure_fanout(daemon: &Daemon, clients: usize, rounds: usize) -> f64 {
    let mut feeds: Vec<FeedClient> = (0..clients)
        .map(|_| FeedClient::connect(daemon.feed_addr()).expect("connect feed client"))
        .collect();
    for feed in &mut feeds {
        feed.reset_sync().expect("initial full sync");
    }
    // The churn prefix sits outside the populated range so the table ends
    // each repetition exactly as it started.
    let churn = Ipv4Prefix::new(100u32 << 24, 24);
    let churn_asn = Asn(64_999);
    let mut announced = false;
    let mut best = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        for _ in 0..rounds {
            let update = if announced {
                TableUpdate::withdraw(churn, churn_asn)
            } else {
                TableUpdate::announce(churn, churn_asn)
            };
            announced = !announced;
            daemon.apply(&[update]);
            for feed in &mut feeds {
                let notified = feed.wait_notify().expect("serial notify");
                assert!(notified > 0, "notify carried serial 0");
                match feed.serial_sync().expect("diff sync") {
                    SyncOutcome::Diff {
                        announced,
                        withdrawn,
                        ..
                    } => assert_eq!(announced + withdrawn, 1, "diff must carry the one change"),
                    SyncOutcome::CacheReset => panic!("in-window diff answered with cache reset"),
                }
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    // Rounds may have left the churn prefix announced; withdraw it so the
    // table ends exactly as it started.
    if announced {
        daemon.apply(&[TableUpdate::withdraw(churn, churn_asn)]);
    }
    best / rounds as f64
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let (prefixes, queries, rounds) = if test_mode {
        (4_096, 200, 5)
    } else {
        (FULL_PREFIXES, QUERIES, FANOUT_ROUNDS)
    };

    let build_start = Instant::now();
    let table = build_table(prefixes);
    let build_seconds = build_start.elapsed().as_secs_f64();
    assert_eq!(table.prefix_count(), prefixes);

    let daemon = Daemon::start(DaemonConfig::loopback(), table).expect("start daemon");
    let queries_per_s = measure_queries(&daemon, queries, prefixes);
    let fanout_seconds = measure_fanout(&daemon, FEED_CLIENTS, rounds);
    daemon.shutdown();

    if test_mode {
        assert!(queries_per_s > 0.0 && fanout_seconds > 0.0);
        println!("bench daemon_serving: smoke OK ({prefixes} prefixes, {queries} queries)");
        return;
    }

    let host_cpus = minipool::available_jobs();
    println!("bench daemon_serving/table      {prefixes} prefixes built in {build_seconds:.3} s");
    println!(
        "bench daemon_serving/queries    {queries_per_s:>8.0} queries/s ({queries} per rep, fastest of {REPS})"
    );
    println!(
        "bench daemon_serving/fanout     {:>8.1} us mean apply->all-{FEED_CLIENTS}-clients-synced ({rounds} rounds)",
        fanout_seconds * 1e6
    );

    let json = format!(
        "{{\n  \"bench\": \"daemon_serving\",\n  \"table\": {{ \"prefixes\": {prefixes}, \"origins_per_prefix\": 2, \"shape\": \"dense /24s under 16.0.0.0/4\", \"build_seconds\": {build_seconds:.3} }},\n  \"host_cpus\": {host_cpus},\n  \"validity_queries\": {{ \"queries_per_s\": {queries_per_s:.0}, \"queries_per_rep\": {queries}, \"mix\": \"1/3 valid, 1/3 invalid origin, 1/3 not-found\", \"transport\": \"persistent HTTP/1.1 over loopback TCP\" }},\n  \"feed_fanout\": {{ \"clients\": {FEED_CLIENTS}, \"rounds\": {rounds}, \"mean_apply_to_all_synced_us\": {:.1}, \"note\": \"one-entry diff; latency spans apply, serial notify push, and each client's serial-query/diff round-trip, clients drained sequentially\" }},\n  \"notes\": \"Fastest of {REPS} repetitions, recorded as measured. host_cpus is the cgroup-reported available_parallelism; daemon listener threads and the bench clients share that allotment, so these are contended end-to-end loopback numbers, not isolated server-side costs.\"\n}}\n",
        fanout_seconds * 1e6
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_daemon.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
