//! Wire-codec throughput: RFC 4271 UPDATE and RFC 6396 TABLE_DUMP_V2
//! encode/decode over synthetic snapshots shaped like a day of Route Views
//! data (a peer index table followed by thousands of RIB records).
//!
//! The vendored criterion stand-in times a single pass, so each benchmark
//! also prints an explicit throughput line (MB/s and records/s) measured
//! over the same workload.

use std::time::{Duration, Instant};

use bgp_types::{AsPath, Asn, Ipv4Prefix, Route};
use bgp_wire::bgp::{AsnEncoding, PathAttributes, UpdateMessage};
use bgp_wire::mrt::{
    MrtBody, MrtReader, MrtRecord, MrtWriter, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast,
};
use bgp_wire::{day_to_timestamp, DailyDumpStream};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const UPDATES: usize = 4_000;
const RIB_RECORDS: usize = 4_000;

fn report(name: &str, records: usize, bytes: usize, elapsed: Duration) {
    let secs = elapsed.as_secs_f64().max(1e-9);
    println!(
        "throughput {name:<28} {:>8.1} MB/s {:>12.0} records/s",
        bytes as f64 / 1e6 / secs,
        records as f64 / secs,
    );
}

fn synth_route(i: u32) -> Route {
    Route::new(
        Ipv4Prefix::new((10 << 24) | ((i % 60_000) << 8), 24),
        AsPath::from_sequence([
            Asn(701),
            Asn(1239),
            Asn(3_000 + i % 500),
            Asn(64_512 + i % 1_000),
        ]),
    )
}

fn synth_updates(n: usize) -> Vec<UpdateMessage> {
    (0..n)
        .map(|i| UpdateMessage::announce(&synth_route(i as u32)))
        .collect()
}

fn synth_table_dump(records: usize) -> Vec<MrtRecord> {
    let peers = [Asn(701), Asn(1239)]
        .into_iter()
        .map(|asn| PeerEntry {
            bgp_id: asn.0,
            addr: asn.0,
            asn,
        })
        .collect();
    let mut out = Vec::with_capacity(records + 1);
    out.push(MrtRecord {
        timestamp: day_to_timestamp(0),
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 0,
            view_name: String::from("bench"),
            peers,
        }),
    });
    for i in 0..records as u32 {
        let entries = (0..2)
            .map(|peer| RibEntry {
                peer_index: peer,
                originated_time: day_to_timestamp(0),
                attrs: PathAttributes::from_route(&synth_route(i + peer as u32)),
            })
            .collect();
        out.push(MrtRecord {
            timestamp: day_to_timestamp(0),
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: i,
                prefix: Ipv4Prefix::new((10 << 24) | ((i % 60_000) << 8), 24),
                entries,
            }),
        });
    }
    out
}

fn bench_update_codec(c: &mut Criterion) {
    let updates = synth_updates(UPDATES);

    c.bench_function("wire/update_encode_4000", |b| {
        b.iter(|| {
            let mut bytes = 0usize;
            for update in &updates {
                bytes += update.encode(AsnEncoding::FourOctet).unwrap().len();
            }
            bytes
        });
    });
    let start = Instant::now();
    let encoded: Vec<Vec<u8>> = updates
        .iter()
        .map(|u| u.encode(AsnEncoding::FourOctet).unwrap())
        .collect();
    let update_bytes: usize = encoded.iter().map(Vec::len).sum();
    report(
        "update_encode",
        updates.len(),
        update_bytes,
        start.elapsed(),
    );

    c.bench_function("wire/update_decode_4000", |b| {
        b.iter(|| {
            for bytes in &encoded {
                black_box(UpdateMessage::decode(bytes, AsnEncoding::FourOctet).unwrap());
            }
        });
    });
    let start = Instant::now();
    for bytes in &encoded {
        black_box(UpdateMessage::decode(bytes, AsnEncoding::FourOctet).unwrap());
    }
    report(
        "update_decode",
        encoded.len(),
        update_bytes,
        start.elapsed(),
    );
}

fn bench_table_dump_codec(c: &mut Criterion) {
    let records = synth_table_dump(RIB_RECORDS);

    c.bench_function("wire/table_dump_v2_encode_4000", |b| {
        b.iter(|| {
            let mut writer = MrtWriter::new(Vec::new());
            for record in &records {
                writer.write_record(record).unwrap();
            }
            writer.finish().unwrap().len()
        });
    });
    let start = Instant::now();
    let mut writer = MrtWriter::new(Vec::new());
    for record in &records {
        writer.write_record(record).unwrap();
    }
    let bytes = writer.finish().unwrap();
    report(
        "table_dump_v2_encode",
        records.len(),
        bytes.len(),
        start.elapsed(),
    );

    c.bench_function("wire/table_dump_v2_decode_4000", |b| {
        b.iter(|| {
            let mut reader = MrtReader::new(bytes.as_slice());
            let mut decoded = 0usize;
            while let Some(record) = reader.next_record().unwrap() {
                black_box(&record);
                decoded += 1;
            }
            decoded
        });
    });
    let start = Instant::now();
    let mut reader = MrtReader::new(bytes.as_slice());
    let mut decoded = 0usize;
    while let Some(record) = reader.next_record().unwrap() {
        black_box(&record);
        decoded += 1;
    }
    report(
        "table_dump_v2_decode",
        decoded,
        bytes.len(),
        start.elapsed(),
    );

    c.bench_function("wire/streaming_import_4000", |b| {
        b.iter(|| {
            let mut stream = DailyDumpStream::new(bytes.as_slice());
            let mut days = 0usize;
            while let Some(day) = stream.next_day().unwrap() {
                black_box(&day);
                days += 1;
            }
            days
        });
    });
    let start = Instant::now();
    let mut stream = DailyDumpStream::new(bytes.as_slice());
    while let Some(day) = stream.next_day().unwrap() {
        black_box(&day);
    }
    report(
        "streaming_import",
        records.len(),
        bytes.len(),
        start.elapsed(),
    );
}

criterion_group!(wire_codec, bench_update_codec, bench_table_dump_codec);
criterion_main!(wire_codec);
