//! Sweep throughput: trials/s and delivered BGP events/s for the §5.2
//! attacker-fraction sweep, serial vs `--jobs N`.
//!
//! Unlike the figure benches this target has a custom `main`: besides
//! printing the numbers it updates its sections of `BENCH_sweep.json` at the
//! repository root, the perf-trajectory record tracked across PRs (the file
//! is co-owned with `convergence_70k`, which maintains its own section).
//! `--test` (what CI's bench smoke passes) runs a reduced workload and skips
//! the file write.

use std::time::Instant;

use as_topology::paper::PaperTopology;
use experiments::json::Json;
use experiments::{run_sweep_jobs, run_sweep_metrics_jobs, SweepConfig, SweepPoint};

/// Repetitions per timed configuration; the minimum is reported.
const REPS: usize = 3;

/// The worker counts measured against the serial path.
const JOBS: [usize; 2] = [2, 4];

/// The workload: the quick protocol's fractions with the paper's full
/// 15-runs-per-point averaging — 45 trials per sweep on the 46-AS topology.
fn workload() -> SweepConfig {
    let mut config = SweepConfig::paper();
    config.attacker_fractions = vec![0.05, 0.15, 0.30];
    config
}

/// Total trials a sweep of `config` runs.
fn trial_count(config: &SweepConfig) -> usize {
    config.attacker_fractions.len() * config.runs_per_point()
}

/// Total delivered BGP update messages across a sweep's trials, recovered
/// from the per-point means (each point averages `runs_per_point` trials).
fn delivered_events(points: &[SweepPoint], runs_per_point: usize) -> f64 {
    points
        .iter()
        .map(|p| p.mean_messages * runs_per_point as f64)
        .sum()
}

struct Measurement {
    jobs: usize,
    seconds: f64,
    trials_per_s: f64,
    events_per_s: f64,
}

/// Times `run_sweep_jobs` over `REPS` repetitions, keeping the fastest.
fn measure(config: &SweepConfig, jobs: usize) -> Measurement {
    let graph = PaperTopology::As46.graph();
    let mut best = f64::INFINITY;
    let mut events = 0.0;
    for _ in 0..REPS {
        let start = Instant::now();
        let points = run_sweep_jobs(graph, config, jobs);
        let elapsed = start.elapsed().as_secs_f64();
        events = delivered_events(&points, config.runs_per_point());
        best = best.min(elapsed);
    }
    Measurement {
        jobs,
        seconds: best,
        trials_per_s: trial_count(config) as f64 / best,
        events_per_s: events / best,
    }
}

/// Times the recording-sink path (`run_sweep_metrics_jobs`, serial) the same
/// way — the observability layer's cost when a `--metrics` snapshot *is*
/// requested. The default `run_sweep_jobs` path above goes through
/// `NoopSink`, whose `ENABLED = false` compiles the instrumentation away;
/// the gap between the two numbers is the price of recording.
fn measure_recording(config: &SweepConfig) -> Measurement {
    let graph = PaperTopology::As46.graph();
    let mut best = f64::INFINITY;
    let mut events = 0.0;
    for _ in 0..REPS {
        let start = Instant::now();
        let (points, _metrics) = run_sweep_metrics_jobs(graph, config, 1);
        let elapsed = start.elapsed().as_secs_f64();
        events = delivered_events(&points, config.runs_per_point());
        best = best.min(elapsed);
    }
    Measurement {
        jobs: 1,
        seconds: best,
        trials_per_s: trial_count(config) as f64 / best,
        events_per_s: events / best,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // Smoke: one reduced serial-vs-parallel pass, no file write.
        let config = SweepConfig::quick();
        let graph = PaperTopology::As46.graph();
        let serial = run_sweep_jobs(graph, &config, 1);
        let parallel = run_sweep_jobs(graph, &config, 4);
        assert_eq!(serial, parallel, "jobs=4 must be bit-identical to serial");
        let (recorded, metrics) = run_sweep_metrics_jobs(graph, &config, 4);
        assert_eq!(recorded, serial, "recording must not perturb the figure");
        assert!(!metrics.is_empty(), "recording sweep produced no metrics");
        println!(
            "bench sweep_throughput: smoke OK ({} trials)",
            trial_count(&config)
        );
        return;
    }

    let config = workload();
    let host_cpus = minipool::available_jobs();
    let serial = measure(&config, 1);
    println!(
        "bench sweep_throughput/serial   {:>8.1} trials/s  {:>12.0} events/s ({:.3} s)",
        serial.trials_per_s, serial.events_per_s, serial.seconds
    );
    let parallel: Vec<Measurement> = JOBS.iter().map(|&jobs| measure(&config, jobs)).collect();
    for m in &parallel {
        println!(
            "bench sweep_throughput/jobs={}   {:>8.1} trials/s  {:>12.0} events/s ({:.3} s, {:.2}x)",
            m.jobs,
            m.trials_per_s,
            m.events_per_s,
            m.seconds,
            serial.seconds / m.seconds
        );
    }
    let recording = measure_recording(&config);
    println!(
        "bench sweep_throughput/recording{:>8.1} trials/s  {:>12.0} events/s ({:.3} s, {:+.1}% vs no-op)",
        recording.trials_per_s,
        recording.events_per_s,
        recording.seconds,
        100.0 * (recording.seconds / serial.seconds - 1.0)
    );

    // Round before storing: `Json::Num` prints shortest-round-trip f64, so
    // pre-rounding keeps the record file readable.
    let round = |x: f64, places: i32| {
        let scale = 10f64.powi(places);
        (x * scale).round() / scale
    };
    let measurement_json = |m: &Measurement, with_speedup: bool| {
        let mut fields = vec![
            ("seconds".to_string(), Json::Num(round(m.seconds, 4))),
            (
                "trials_per_s".to_string(),
                Json::Num(round(m.trials_per_s, 1)),
            ),
            (
                "delivered_events_per_s".to_string(),
                Json::Num(m.events_per_s.round()),
            ),
        ];
        if with_speedup {
            fields.insert(0, ("jobs".to_string(), Json::Num(m.jobs as f64)));
            fields.push((
                "speedup_vs_serial".to_string(),
                Json::Num(round(serial.seconds / m.seconds, 3)),
            ));
        }
        Json::Obj(fields)
    };
    let updates = vec![
        ("bench", Json::Str("sweep_throughput".to_string())),
        ("topology", Json::Str("46-AS".to_string())),
        ("trials_per_sweep", Json::Num(trial_count(&config) as f64)),
        ("runs_per_point", Json::Num(config.runs_per_point() as f64)),
        ("host_cpus", Json::Num(host_cpus as f64)),
        ("serial", measurement_json(&serial, false)),
        (
            "parallel",
            Json::Arr(parallel.iter().map(|m| measurement_json(m, true)).collect()),
        ),
        (
            "metrics_recording",
            Json::Obj(vec![
                (
                    "seconds".to_string(),
                    Json::Num(round(recording.seconds, 4)),
                ),
                (
                    "trials_per_s".to_string(),
                    Json::Num(round(recording.trials_per_s, 1)),
                ),
                (
                    "overhead_vs_noop_pct".to_string(),
                    Json::Num(round(100.0 * (recording.seconds / serial.seconds - 1.0), 1)),
                ),
                (
                    "note".to_string(),
                    Json::Str(
                        "serial run_sweep_metrics_jobs: per-trial RecordingSink snapshots \
                         merged in plan order; the default no-op path compiles the \
                         instrumentation away. This overhead is dominated by one-shot \
                         dynamic session.*/link.* keys inserted into a fresh per-trial \
                         sink plus the plan-order snapshot merge — costs the token/cache \
                         fast path cannot serve; tokens remove the per-observation \
                         hashing where a key repeats within one export (the per-router \
                         net.adj_rib_in.size histogram: 46 observations here, 70k in \
                         the sharded engine's export)"
                            .to_string(),
                    ),
                ),
            ]),
        ),
        (
            "baseline",
            Json::Obj(vec![
                ("commit".to_string(), Json::Str("2d74cd5".to_string())),
                (
                    "note".to_string(),
                    Json::Str(
                        "pre-observability engine (no metrics instrumentation), same \
                         workload shape; the no-op-sink serial number above must stay \
                         within 1% of it"
                            .to_string(),
                    ),
                ),
                ("trials_per_s".to_string(), Json::Num(1125.3)),
                ("delivered_events_per_s".to_string(), Json::Num(1278932.0)),
            ]),
        ),
        (
            "notes",
            Json::Str(format!(
                "Fastest of {REPS} repetitions, recorded as measured. host_cpus is the \
                 cgroup-reported available_parallelism; the scheduler may grant more (or \
                 fewer) cycles, so the parallel speedup reflects the actual CPU allotment, \
                 not the nominal count. Determinism: every jobs value returns bit-identical \
                 SweepPoints and metrics snapshots (pinned by \
                 crates/experiments/tests/parallel_determinism.rs and \
                 metrics_determinism.rs)."
            )),
        ),
    ];
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    bench::upsert_bench_sections(path, updates);
}
