//! Sweep throughput: trials/s and delivered BGP events/s for the §5.2
//! attacker-fraction sweep, serial vs `--jobs N`.
//!
//! Unlike the figure benches this target has a custom `main`: besides
//! printing the numbers it writes `BENCH_sweep.json` at the repository root,
//! the perf-trajectory record tracked across PRs. `--test` (what CI's bench
//! smoke passes) runs a reduced workload and skips the file write.

use std::time::Instant;

use as_topology::paper::PaperTopology;
use experiments::{run_sweep_jobs, run_sweep_metrics_jobs, SweepConfig, SweepPoint};

/// Repetitions per timed configuration; the minimum is reported.
const REPS: usize = 3;

/// The worker counts measured against the serial path.
const JOBS: [usize; 2] = [2, 4];

/// The workload: the quick protocol's fractions with the paper's full
/// 15-runs-per-point averaging — 45 trials per sweep on the 46-AS topology.
fn workload() -> SweepConfig {
    let mut config = SweepConfig::paper();
    config.attacker_fractions = vec![0.05, 0.15, 0.30];
    config
}

/// Total trials a sweep of `config` runs.
fn trial_count(config: &SweepConfig) -> usize {
    config.attacker_fractions.len() * config.runs_per_point()
}

/// Total delivered BGP update messages across a sweep's trials, recovered
/// from the per-point means (each point averages `runs_per_point` trials).
fn delivered_events(points: &[SweepPoint], runs_per_point: usize) -> f64 {
    points
        .iter()
        .map(|p| p.mean_messages * runs_per_point as f64)
        .sum()
}

struct Measurement {
    jobs: usize,
    seconds: f64,
    trials_per_s: f64,
    events_per_s: f64,
}

/// Times `run_sweep_jobs` over `REPS` repetitions, keeping the fastest.
fn measure(config: &SweepConfig, jobs: usize) -> Measurement {
    let graph = PaperTopology::As46.graph();
    let mut best = f64::INFINITY;
    let mut events = 0.0;
    for _ in 0..REPS {
        let start = Instant::now();
        let points = run_sweep_jobs(graph, config, jobs);
        let elapsed = start.elapsed().as_secs_f64();
        events = delivered_events(&points, config.runs_per_point());
        best = best.min(elapsed);
    }
    Measurement {
        jobs,
        seconds: best,
        trials_per_s: trial_count(config) as f64 / best,
        events_per_s: events / best,
    }
}

/// Times the recording-sink path (`run_sweep_metrics_jobs`, serial) the same
/// way — the observability layer's cost when a `--metrics` snapshot *is*
/// requested. The default `run_sweep_jobs` path above goes through
/// `NoopSink`, whose `ENABLED = false` compiles the instrumentation away;
/// the gap between the two numbers is the price of recording.
fn measure_recording(config: &SweepConfig) -> Measurement {
    let graph = PaperTopology::As46.graph();
    let mut best = f64::INFINITY;
    let mut events = 0.0;
    for _ in 0..REPS {
        let start = Instant::now();
        let (points, _metrics) = run_sweep_metrics_jobs(graph, config, 1);
        let elapsed = start.elapsed().as_secs_f64();
        events = delivered_events(&points, config.runs_per_point());
        best = best.min(elapsed);
    }
    Measurement {
        jobs: 1,
        seconds: best,
        trials_per_s: trial_count(config) as f64 / best,
        events_per_s: events / best,
    }
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    if test_mode {
        // Smoke: one reduced serial-vs-parallel pass, no file write.
        let config = SweepConfig::quick();
        let graph = PaperTopology::As46.graph();
        let serial = run_sweep_jobs(graph, &config, 1);
        let parallel = run_sweep_jobs(graph, &config, 4);
        assert_eq!(serial, parallel, "jobs=4 must be bit-identical to serial");
        let (recorded, metrics) = run_sweep_metrics_jobs(graph, &config, 4);
        assert_eq!(recorded, serial, "recording must not perturb the figure");
        assert!(!metrics.is_empty(), "recording sweep produced no metrics");
        println!(
            "bench sweep_throughput: smoke OK ({} trials)",
            trial_count(&config)
        );
        return;
    }

    let config = workload();
    let host_cpus = minipool::available_jobs();
    let serial = measure(&config, 1);
    println!(
        "bench sweep_throughput/serial   {:>8.1} trials/s  {:>12.0} events/s ({:.3} s)",
        serial.trials_per_s, serial.events_per_s, serial.seconds
    );
    let parallel: Vec<Measurement> = JOBS.iter().map(|&jobs| measure(&config, jobs)).collect();
    for m in &parallel {
        println!(
            "bench sweep_throughput/jobs={}   {:>8.1} trials/s  {:>12.0} events/s ({:.3} s, {:.2}x)",
            m.jobs,
            m.trials_per_s,
            m.events_per_s,
            m.seconds,
            serial.seconds / m.seconds
        );
    }
    let recording = measure_recording(&config);
    println!(
        "bench sweep_throughput/recording{:>8.1} trials/s  {:>12.0} events/s ({:.3} s, {:+.1}% vs no-op)",
        recording.trials_per_s,
        recording.events_per_s,
        recording.seconds,
        100.0 * (recording.seconds / serial.seconds - 1.0)
    );

    let parallel_json: Vec<String> = parallel
        .iter()
        .map(|m| {
            format!(
                "    {{ \"jobs\": {}, \"seconds\": {:.4}, \"trials_per_s\": {:.1}, \"delivered_events_per_s\": {:.0}, \"speedup_vs_serial\": {:.3} }}",
                m.jobs, m.seconds, m.trials_per_s, m.events_per_s, serial.seconds / m.seconds
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"sweep_throughput\",\n  \"topology\": \"46-AS\",\n  \"trials_per_sweep\": {},\n  \"runs_per_point\": {},\n  \"host_cpus\": {},\n  \"serial\": {{ \"seconds\": {:.4}, \"trials_per_s\": {:.1}, \"delivered_events_per_s\": {:.0} }},\n  \"parallel\": [\n{}\n  ],\n  \"metrics_recording\": {{ \"seconds\": {:.4}, \"trials_per_s\": {:.1}, \"overhead_vs_noop_pct\": {:.1}, \"note\": \"serial run_sweep_metrics_jobs: per-trial RecordingSink snapshots merged in plan order; the default no-op path compiles the instrumentation away\" }},\n  \"baseline\": {{\n    \"commit\": \"2d74cd5\",\n    \"note\": \"pre-observability engine (no metrics instrumentation), same workload shape; the no-op-sink serial number above must stay within 1% of it\",\n    \"trials_per_s\": 1125.3,\n    \"delivered_events_per_s\": 1278932.0\n  }},\n  \"notes\": \"Fastest of {} repetitions, recorded as measured. host_cpus is the cgroup-reported available_parallelism; the scheduler may grant more (or fewer) cycles, so the parallel speedup reflects the actual CPU allotment, not the nominal count. Determinism: every jobs value returns bit-identical SweepPoints and metrics snapshots (pinned by crates/experiments/tests/parallel_determinism.rs and metrics_determinism.rs).\"\n}}\n",
        trial_count(&config),
        config.runs_per_point(),
        host_cpus,
        serial.seconds,
        serial.trials_per_s,
        serial.events_per_s,
        parallel_json.join(",\n"),
        recording.seconds,
        recording.trials_per_s,
        100.0 * (recording.seconds / serial.seconds - 1.0),
        REPS,
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
