//! Ablations for the §4.3 limitations: sub-prefix hijacks, community
//! stripping, list-forgery strategies, and unresolved-verifier policies.

use std::sync::Once;

use as_topology::paper::PaperTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{
    forgery_ablation, moas_list_overhead, stripping_ablation, subprefix_ablation,
    unresolved_policy_ablation, valley_free_ablation, WireModel,
};
use route_measurement::{generate_timeline, TimelineConfig};

static PRINTED: Once = Once::new();

fn regenerate_tables() -> String {
    let graph = PaperTopology::As46.graph();
    let mut out = String::new();

    let sub = subprefix_ablation(graph, 10, 0xAB1);
    out.push_str(
        "## ablation-subprefix — §4.3 limitation: more-specific prefix hijack (full deployment)\n",
    );
    out.push_str(&format!(
        "   sub-prefix hijack adoption: {:>6.1}%   alarms: {:.1}  (detection blind, as §4.3 predicts)\n",
        sub.subprefix_adoption_pct, sub.subprefix_alarms
    ));
    out.push_str(&format!(
        "   exact-prefix attack adoption: {:>4.1}%   (same parties, caught by the MOAS list)\n\n",
        sub.exact_prefix_adoption_pct
    ));

    out.push_str("## ablation-stripping — §4.3 hazard: community attributes dropped in transit\n");
    out.push_str("   strip%   adoption%   false-alarms   confirmed-alarms\n");
    for p in stripping_ablation(graph, &[0.0, 0.1, 0.25, 0.5], 10, 0xAB2) {
        out.push_str(&format!(
            "   {:>5.0}% {:>10.2} {:>13.1} {:>17.1}\n",
            100.0 * p.stripper_fraction,
            p.mean_adoption_pct,
            p.mean_false_alarms,
            p.mean_confirmed_alarms
        ));
    }
    out.push('\n');

    out.push_str("## ablation-forgery — attacker list-forgery strategies (full deployment)\n");
    out.push_str("   strategy                 adoption%   alarms\n");
    for p in forgery_ablation(graph, 10, 0xAB3) {
        out.push_str(&format!(
            "   {:<24} {:>8.2} {:>8.1}\n",
            p.forgery, p.mean_adoption_pct, p.mean_alarms
        ));
    }
    out.push('\n');

    out.push_str("## ablation-unresolved — policy when the MOASRR lookup returns nothing\n");
    for (label, adoption) in unresolved_policy_ablation(graph, 10, 0xAB4) {
        out.push_str(&format!("   {label:<24} adoption {adoption:>6.2}%\n"));
    }
    out.push('\n');

    out.push_str("## ablation-valley-free — does detection survive Gao-Rexford policy routing?\n");
    out.push_str("   routing        normal-BGP%   full-MOAS%   suppressed-ads\n");
    for p in valley_free_ablation(10, 0xAB5) {
        out.push_str(&format!(
            "   {:<14} {:>10.2} {:>12.2} {:>14.1}\n",
            p.routing, p.normal_adoption_pct, p.moas_adoption_pct, p.mean_suppressed
        ));
    }
    out.push('\n');

    out.push_str("## overhead — §4.3 cost of attaching MOAS lists (calibrated table)\n");
    let timeline = generate_timeline(&TimelineConfig::paper().with_days(30));
    let report = moas_list_overhead(timeline.dumps.last().unwrap(), WireModel::default());
    out.push_str(&format!("   {report}\n"));
    out.push_str(&format!(
        "   against a 100k-route 2001 table: {:.4}% added\n",
        100.0 * report.added_bytes as f64 / (100_000.0 * 36.0)
    ));
    out
}

fn bench_ablations(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Ablations — §4.3 limitations and design choices",
        &regenerate_tables(),
    );

    let graph = PaperTopology::As25.graph();
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    group.bench_function("subprefix_3runs_25as", |b| {
        b.iter(|| subprefix_ablation(graph, 3, 1));
    });
    group.bench_function("forgery_3runs_25as", |b| {
        b.iter(|| forgery_ablation(graph, 3, 1));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
