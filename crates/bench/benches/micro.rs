//! Micro-benchmarks of the building blocks: MOAS-list checking, the BGP
//! decision pipeline, topology generation and derivation, and full-network
//! convergence.

use as_topology::{derive, infer_graph, InternetModel, RouteTable};
use bgp_engine::Network;
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use criterion::{criterion_group, criterion_main, Criterion};
use moas_core::find_conflict;

fn bench_moas_check(c: &mut Criterion) {
    let prefix: Ipv4Prefix = "208.8.0.0/16".parse().unwrap();
    let list: MoasList = [Asn(1), Asn(2), Asn(3)].into_iter().collect();
    let incoming = Route::new(prefix, AsPath::origination(Asn(1))).with_moas_list(list.clone());
    let existing: Vec<(Option<Asn>, Route)> = (0..8)
        .map(|i| {
            (
                Some(Asn(100 + i)),
                Route::new(prefix, AsPath::origination(Asn(2))).with_moas_list(list.clone()),
            )
        })
        .collect();

    c.bench_function("moas_check_consistent_8_existing", |b| {
        b.iter(|| find_conflict(&incoming, &existing));
    });

    let forged = Route::new(prefix, AsPath::origination(Asn(66)))
        .with_moas_list([Asn(1), Asn(2), Asn(3), Asn(66)].into_iter().collect());
    c.bench_function("moas_check_conflicting_8_existing", |b| {
        b.iter(|| find_conflict(&forged, &existing));
    });
}

fn bench_list_encoding(c: &mut Criterion) {
    let list: MoasList = (1..=3).map(Asn).collect();
    c.bench_function("moas_list_encode_decode_3", |b| {
        b.iter(|| {
            let communities = list.to_communities();
            MoasList::from_communities(&communities)
        });
    });
}

fn bench_topology_pipeline(c: &mut Criterion) {
    let model = InternetModel::new().transit_count(20).stub_count(150);
    c.bench_function("internet_model_build_170", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            model.build(seed)
        });
    });

    let truth = model.build(1);
    c.bench_function("route_table_synthesize_3_vantages", |b| {
        b.iter(|| RouteTable::synthesize(&truth, &[0, 5, 10], 1));
    });

    let table = RouteTable::synthesize(&truth, &[0, 5, 10], 1);
    c.bench_function("infer_graph_from_table", |b| {
        b.iter(|| infer_graph(table.entries()));
    });

    let inferred = infer_graph(table.entries());
    c.bench_function("derive_pipeline_30pct", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            derive(&inferred, 0.3, seed)
        });
    });
}

fn bench_convergence(c: &mut Criterion) {
    let graph = InternetModel::new()
        .transit_count(15)
        .stub_count(85)
        .build(3);
    let victim = graph.stub_asns()[0];
    let prefix = as_topology::prefix_for_asn(victim);
    c.bench_function("bgp_convergence_100as_single_origin", |b| {
        b.iter(|| {
            let mut net = Network::new(&graph);
            net.originate(victim, prefix, None);
            net.run().unwrap();
            net.stats().total_messages()
        });
    });
}

criterion_group!(
    benches,
    bench_moas_check,
    bench_list_encoding,
    bench_topology_pipeline,
    bench_convergence
);
criterion_main!(benches);
