//! Internet-scale convergence through the sharded engine: one ~70k-AS
//! origination driven to quiescence at several shard counts.
//!
//! This is the tentpole's headline measurement: the synthetic scale-free
//! topology (`ScaleFreeModel`, preferential attachment, ~70k ASes) converges
//! once per shard count, the engine asserts that every run lands on the same
//! routing fingerprint, converged tick, and message totals, and the
//! wall-clock plus events/s land in the `convergence_70k` section of
//! `BENCH_sweep.json` (co-owned with `sweep_throughput`, which maintains its
//! own sections). `--test` (CI's bench smoke) runs a reduced ~5k-AS topology
//! and skips the file write.
//!
//! On a 1-CPU bench host every shard count executes its rounds sequentially,
//! so shards > 1 mostly measures the coordination overhead rather than a
//! speedup — the numbers are recorded as measured and annotated as such.

use std::time::Instant;

use as_topology::ScaleFreeModel;
use bgp_engine::ShardedNetwork;
use bgp_types::Ipv4Prefix;
use experiments::json::Json;

/// Topology seed; the graph (and therefore the whole run) is a pure function
/// of this and the AS count.
const SEED: u64 = 9107;

/// Per-link delay jitter bound, matching the experiment trials.
const MAX_LINK_DELAY: u64 = 4;

/// Shard counts measured; all must produce bit-identical outcomes.
const SHARDS: [usize; 3] = [1, 2, 4];

struct Run {
    shards: usize,
    seconds: f64,
    events: u64,
    messages: u64,
    converged_ticks: u64,
    fingerprint: u64,
}

/// Builds the graph, runs one full convergence per shard count, and asserts
/// the outcomes agree exactly.
fn measure(as_count: usize, jobs: usize) -> (f64, Vec<Run>) {
    let build_start = Instant::now();
    let graph = ScaleFreeModel::new().as_count(as_count).build(SEED);
    let build_seconds = build_start.elapsed().as_secs_f64();
    assert_eq!(graph.len(), as_count);

    let prefix: Ipv4Prefix = "208.8.0.0/16".parse().expect("victim prefix literal");
    let origin = graph.stub_asns()[0];

    let runs: Vec<Run> = SHARDS
        .iter()
        .map(|&shards| {
            let mut net = ShardedNetwork::with_monitor_and_jitter(
                &graph,
                shards,
                jobs,
                SEED,
                MAX_LINK_DELAY,
                || bgp_engine::NoopMonitor,
            );
            net.originate(origin, prefix, None);
            let start = Instant::now();
            let converged = net.run().expect("scale-free origination converges");
            let seconds = start.elapsed().as_secs_f64();
            Run {
                shards,
                seconds,
                events: net.events_fired(),
                messages: net.stats().total_messages(),
                converged_ticks: converged.ticks(),
                fingerprint: net.routing_fingerprint(),
            }
        })
        .collect();

    let first = &runs[0];
    for run in &runs[1..] {
        assert_eq!(
            run.fingerprint, first.fingerprint,
            "shards={} diverged from shards={} on routing fingerprint",
            run.shards, first.shards
        );
        assert_eq!(
            run.converged_ticks, first.converged_ticks,
            "shards={} diverged on converged tick",
            run.shards
        );
        assert_eq!(
            run.messages, first.messages,
            "shards={} diverged on delivered messages",
            run.shards
        );
        assert_eq!(
            run.events, first.events,
            "shards={} diverged on events fired",
            run.shards
        );
    }
    (build_seconds, runs)
}

fn main() {
    let test_mode = std::env::args().any(|a| a == "--test");
    let as_count = if test_mode { 5_000 } else { 70_000 };
    let jobs = minipool::available_jobs();

    let (build_seconds, runs) = measure(as_count, jobs);

    if test_mode {
        assert!(runs.iter().all(|r| r.events > 0 && r.seconds > 0.0));
        println!(
            "bench convergence_70k: smoke OK ({as_count} ASes, {} events, identical across shards {:?})",
            runs[0].events, SHARDS
        );
        return;
    }

    println!("bench convergence_70k/topology  {as_count} ASes built in {build_seconds:.3} s");
    let serial_seconds = runs[0].seconds;
    for run in &runs {
        println!(
            "bench convergence_70k/shards={}  {:>8.3} s  {:>12.0} events/s ({:.2}x vs shards=1)",
            run.shards,
            run.seconds,
            run.events as f64 / run.seconds,
            serial_seconds / run.seconds
        );
    }

    let round = |x: f64, places: i32| {
        let scale = 10f64.powi(places);
        (x * scale).round() / scale
    };
    let shard_entries: Vec<Json> = runs
        .iter()
        .map(|run| {
            Json::Obj(vec![
                ("shards".to_string(), Json::Num(run.shards as f64)),
                ("seconds".to_string(), Json::Num(round(run.seconds, 3))),
                (
                    "events_per_s".to_string(),
                    Json::Num((run.events as f64 / run.seconds).round()),
                ),
                (
                    "speedup_vs_shards_1".to_string(),
                    Json::Num(round(serial_seconds / run.seconds, 3)),
                ),
            ])
        })
        .collect();
    let section = Json::Obj(vec![
        ("as_count".to_string(), Json::Num(as_count as f64)),
        ("topology_seed".to_string(), Json::Num(SEED as f64)),
        (
            "build_seconds".to_string(),
            Json::Num(round(build_seconds, 3)),
        ),
        ("host_cpus".to_string(), Json::Num(jobs as f64)),
        ("events_fired".to_string(), Json::Num(runs[0].events as f64)),
        (
            "delivered_messages".to_string(),
            Json::Num(runs[0].messages as f64),
        ),
        (
            "converged_ticks".to_string(),
            Json::Num(runs[0].converged_ticks as f64),
        ),
        ("shard_runs".to_string(), Json::Arr(shard_entries)),
        (
            "note".to_string(),
            Json::Str(format!(
                "One origination of the victim prefix on the seeded scale-free topology, \
                 run to quiescence once per shard count; routing fingerprint, converged \
                 tick, events and message totals are asserted identical across shards \
                 {SHARDS:?}. host_cpus is the cgroup-reported available_parallelism — on \
                 a 1-CPU host the shard rounds execute sequentially, so shards > 1 \
                 measures coordination overhead, not speedup; recorded as measured."
            )),
        ),
    ]);

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    bench::upsert_bench_sections(path, vec![("convergence_70k", section)]);
}
