//! Figure 4 — the number of MOAS cases per day, 11/1997 - 7/2001.

use std::sync::Once;

use criterion::{criterion_group, criterion_main, Criterion};
use route_measurement::{
    daily_moas_counts, generate_timeline, median, MeasurementSummary, TimelineConfig,
};

static PRINTED: Once = Once::new();

fn regenerate_figure() -> String {
    let timeline = generate_timeline(&TimelineConfig::paper());
    let counts = daily_moas_counts(&timeline.dumps);
    let summary = MeasurementSummary::compute(&timeline.dumps);

    let mut out = String::new();
    out.push_str("## fig4 — Daily MOAS conflict counts (1279-day synthetic Route Views period)\n");
    out.push_str(
        "   day window        median    min    max   (paper: median 683 in 1998 -> 1294 in 2001)\n",
    );
    for (label, range) in [
        ("1997-11..1998-11", 0..365usize),
        ("1998-11..1999-11", 365..730),
        ("1999-11..2000-11", 730..1096),
        ("2000-11..2001-07", 1096..counts.len()),
    ] {
        let window = &counts[range.clone()];
        let min = window.iter().min().copied().unwrap_or(0);
        let max = window.iter().max().copied().unwrap_or(0);
        out.push_str(&format!(
            "   {label:<18} {:>6.0} {min:>6} {max:>6}\n",
            median(window)
        ));
    }
    out.push_str(&format!(
        "   peak day {} with {} cases (paper: 1998-04-07 and 2001-04-06 spikes)\n",
        summary.peak_day, summary.peak_count
    ));
    let event_day_count = counts[1245];
    out.push_str(&format!(
        "   2001-04-06 (day 1245): {event_day_count} cases, event share ~{:.1}% (paper: 5532/6627 = 83.5%)\n",
        100.0 * 5532.0 / event_day_count as f64
    ));
    out
}

fn bench_fig4(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Figure 4 — number of MOAS cases per day",
        &regenerate_figure(),
    );

    let short = TimelineConfig::paper().with_days(120);
    let timeline = generate_timeline(&short);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("generate_120day_timeline", |b| {
        b.iter(|| generate_timeline(&short));
    });
    group.bench_function("daily_counts_120days", |b| {
        b.iter(|| daily_moas_counts(&timeline.dumps));
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
