//! Figure 9 — Experiment 1: spoof-resilience of the MOAS scheme in the 46-AS
//! topology, 1 and 2 origin ASes, Normal BGP vs Full MOAS Detection.

use std::sync::Once;

use as_topology::paper::PaperTopology;
use criterion::{criterion_group, criterion_main, Criterion};
use experiments::{experiment1, run_trial, SweepConfig, TrialConfig};
use moas_core::Deployment;

static PRINTED: Once = Once::new();

fn regenerate_figure() -> String {
    let config = SweepConfig::paper();
    let mut out = String::new();
    for origins in [1, 2] {
        out.push_str(&experiment1(origins, &config).render_table());
        out.push('\n');
    }
    out
}

fn bench_fig9(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Figure 9 — Experiment 1: effectiveness of the MOAS list (46-AS topology)",
        &regenerate_figure(),
    );

    let graph = PaperTopology::As46.graph();
    let stubs = graph.stub_asns();
    let origins = vec![stubs[0]];
    let attackers: Vec<_> = stubs[1..4].to_vec();

    let mut group = c.benchmark_group("fig9");
    group.sample_size(20);
    group.bench_function("trial_46as_normal_bgp", |b| {
        let config = TrialConfig::new(origins.clone(), attackers.clone(), Deployment::None);
        b.iter(|| run_trial(graph, &config));
    });
    group.bench_function("trial_46as_full_moas", |b| {
        let config = TrialConfig::new(origins.clone(), attackers.clone(), Deployment::Full);
        b.iter(|| run_trial(graph, &config));
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
