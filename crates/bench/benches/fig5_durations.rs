//! Figure 5 — the duration histogram of MOAS cases.

use std::sync::Once;

use bgp_types::Asn;
use criterion::{criterion_group, criterion_main, Criterion};
use route_measurement::{
    duration_histogram, generate_timeline, FaultEvent, MeasurementSummary, TimelineConfig,
};

static PRINTED: Once = Once::new();

/// The duration study runs on the period with the 1998 fault only, matching
/// the paper's one-day statistics (35.9% one-day cases, 82.7% of them from
/// the 1998-04-07 fault); see DESIGN.md on the 2001 event's duration.
fn duration_config() -> TimelineConfig {
    TimelineConfig::paper().with_events(vec![FaultEvent {
        day: 150,
        faulty_as: Asn(8584),
        prefix_count: 1135,
        duration_days: 1,
    }])
}

fn regenerate_figure() -> String {
    let timeline = generate_timeline(&duration_config());
    let histogram = duration_histogram(&timeline.dumps);
    let summary = MeasurementSummary::compute(&timeline.dumps);

    let mut out = String::new();
    out.push_str("## fig5 — Duration of MOAS cases (log-binned)\n");
    out.push_str("   duration (days)     cases\n");
    let mut lo = 1u32;
    while lo <= 1279 {
        let hi = (lo * 4).min(1280);
        let count: usize = histogram
            .iter()
            .filter(|(&d, _)| d >= lo && d < hi)
            .map(|(_, &n)| n)
            .sum();
        out.push_str(&format!("   {:>6} - {:<6} {count:>10}\n", lo, hi - 1));
        lo = hi;
    }
    out.push_str(&format!(
        "   one-day cases: {} of {} = {:.1}% (paper: 1373 = 35.9%)\n",
        summary.one_day_cases,
        summary.total_cases,
        100.0 * summary.one_day_fraction
    ));
    out.push_str(&format!(
        "   one-day cases on the 1998-04-07 spike: {:.1}% (paper: 82.7%)\n",
        100.0 * summary.one_day_spike_fraction()
    ));
    out
}

fn bench_fig5(c: &mut Criterion) {
    bench::print_figure_once(
        &PRINTED,
        "Figure 5 — duration of MOAS cases",
        &regenerate_figure(),
    );

    let short = duration_config().with_days(120);
    let timeline = generate_timeline(&short);
    let mut group = c.benchmark_group("fig5");
    group.sample_size(10);
    group.bench_function("duration_histogram_120days", |b| {
        b.iter(|| duration_histogram(&timeline.dumps));
    });
    group.bench_function("summary_120days", |b| {
        b.iter(|| MeasurementSummary::compute(&timeline.dumps));
    });
    group.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
