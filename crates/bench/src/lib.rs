//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each bench target regenerates one table/figure of the paper's evaluation:
//! it prints the reproduced series once (the rows EXPERIMENTS.md records) and
//! then benchmarks the underlying computation with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Once;

/// Prints a reproduction banner plus body exactly once per process, so
/// Criterion's repeated calls don't spam the log.
pub fn print_figure_once(once: &'static Once, header: &str, body: &str) {
    once.call_once(|| {
        println!("\n================================================================");
        println!("{header}");
        println!("================================================================");
        println!("{body}");
    });
}
