//! Shared helpers for the figure-regeneration benchmarks.
//!
//! Each bench target regenerates one table/figure of the paper's evaluation:
//! it prints the reproduced series once (the rows EXPERIMENTS.md records) and
//! then benchmarks the underlying computation with Criterion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Once;

use experiments::json::Json;

/// Prints a reproduction banner plus body exactly once per process, so
/// Criterion's repeated calls don't spam the log.
pub fn print_figure_once(once: &'static Once, header: &str, body: &str) {
    once.call_once(|| {
        println!("\n================================================================");
        println!("{header}");
        println!("================================================================");
        println!("{body}");
    });
}

/// Read-modify-writes a benchmark record file co-owned by several bench
/// targets (`BENCH_sweep.json`): parses the existing top-level object if the
/// file is present and well-formed (starting fresh otherwise), replaces or
/// appends each `(key, value)` pair in order, and writes the object back
/// pretty-printed. Keys not named in `updates` survive untouched, so each
/// bench rewrites only its own sections.
pub fn upsert_bench_sections(path: &str, updates: Vec<(&str, Json)>) {
    let mut fields = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|json| match json {
            Json::Obj(fields) => Some(fields),
            _ => None,
        })
        .unwrap_or_default();
    for (key, value) in updates {
        match fields.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => fields.push((key.to_string(), value)),
        }
    }
    let mut out = Json::Obj(fields).pretty();
    out.push('\n');
    match std::fs::write(path, &out) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("cannot write {path}: {e}"),
    }
}
