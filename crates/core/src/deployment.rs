//! Which ASes run the MOAS check.

use std::collections::BTreeSet;
use std::fmt;

use bgp_types::Asn;

/// The deployment state of MOAS-list checking across the network.
///
/// §5.4 evaluates partial deployment: "we randomly select 50% of the nodes to
/// have the capability of processing MOAS List... The other nodes ignore the
/// MOAS List."
///
/// # Example
///
/// ```
/// use bgp_types::Asn;
/// use moas_core::Deployment;
///
/// let asns = vec![Asn(1), Asn(2), Asn(3), Asn(4)];
/// let half = Deployment::sample(&asns, 0.5, 7);
/// assert_eq!(half.capable_count(), 2);
/// assert!(Deployment::Full.is_capable(Asn(99)));
/// assert!(!Deployment::None.is_capable(Asn(99)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Deployment {
    /// No AS checks MOAS lists — the paper's "Normal BGP" baseline.
    None,
    /// Every AS checks — "Full MOAS Detection".
    Full,
    /// Only the listed ASes check — e.g. "Half MOAS Detection".
    Partial(BTreeSet<Asn>),
}

impl Deployment {
    /// Randomly selects `fraction` of `asns` as capable, deterministically in
    /// `seed`.
    #[must_use]
    pub fn sample(asns: &[Asn], fraction: f64, seed: u64) -> Deployment {
        let fraction = fraction.clamp(0.0, 1.0);
        if fraction >= 1.0 {
            return Deployment::Full;
        }
        if fraction <= 0.0 {
            return Deployment::None;
        }
        let take = ((asns.len() as f64) * fraction).round() as usize;
        let mut rng = sim_engine::rng::from_seed(seed);
        let picked = sim_engine::rng::sample_distinct(&mut rng, asns, take);
        Deployment::Partial(picked.into_iter().collect())
    }

    /// Returns `true` if `asn` processes MOAS lists.
    #[must_use]
    pub fn is_capable(&self, asn: Asn) -> bool {
        match self {
            Deployment::None => false,
            Deployment::Full => true,
            Deployment::Partial(set) => set.contains(&asn),
        }
    }

    /// Number of capable ASes in a partial deployment; meaningful only for
    /// [`Deployment::Partial`] (returns 0 for `None`, `usize::MAX` for
    /// `Full`).
    #[must_use]
    pub fn capable_count(&self) -> usize {
        match self {
            Deployment::None => 0,
            Deployment::Full => usize::MAX,
            Deployment::Partial(set) => set.len(),
        }
    }
}

impl Default for Deployment {
    /// Defaults to [`Deployment::Full`]: the configuration the paper's
    /// headline experiments assume.
    fn default() -> Self {
        Deployment::Full
    }
}

impl fmt::Display for Deployment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Deployment::None => f.write_str("no deployment"),
            Deployment::Full => f.write_str("full deployment"),
            Deployment::Partial(set) => write!(f, "partial deployment ({} ASes)", set.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_extremes_collapse_to_variants() {
        let asns = vec![Asn(1), Asn(2)];
        assert_eq!(Deployment::sample(&asns, 1.0, 1), Deployment::Full);
        assert_eq!(Deployment::sample(&asns, 0.0, 1), Deployment::None);
        assert_eq!(Deployment::sample(&asns, 2.0, 1), Deployment::Full);
        assert_eq!(Deployment::sample(&asns, -0.5, 1), Deployment::None);
    }

    #[test]
    fn sample_is_deterministic() {
        let asns: Vec<Asn> = (1..=100).map(Asn).collect();
        assert_eq!(
            Deployment::sample(&asns, 0.5, 9),
            Deployment::sample(&asns, 0.5, 9)
        );
        assert_ne!(
            Deployment::sample(&asns, 0.5, 9),
            Deployment::sample(&asns, 0.5, 10)
        );
    }

    #[test]
    fn sample_size_matches_fraction() {
        let asns: Vec<Asn> = (1..=100).map(Asn).collect();
        let d = Deployment::sample(&asns, 0.3, 4);
        assert_eq!(d.capable_count(), 30);
    }

    #[test]
    fn capability_checks() {
        let set: BTreeSet<Asn> = [Asn(1)].into_iter().collect();
        let d = Deployment::Partial(set);
        assert!(d.is_capable(Asn(1)));
        assert!(!d.is_capable(Asn(2)));
    }

    #[test]
    fn display_variants() {
        assert_eq!(Deployment::None.to_string(), "no deployment");
        assert_eq!(Deployment::Full.to_string(), "full deployment");
        let d = Deployment::Partial([Asn(1), Asn(2)].into_iter().collect());
        assert_eq!(d.to_string(), "partial deployment (2 ASes)");
    }
}
