//! Attacker models.
//!
//! §5's threat model: "we assume a model where attackers inject false routing
//! announcements at randomly selected locations" — a compromised or
//! misconfigured AS originates a route to a prefix it cannot reach
//! (Figure 3). [`FalseOriginAttack`] covers that model with every list-forgery
//! variant an attacker might try against the MOAS check; [`SubPrefixHijack`]
//! implements the §4.3 limitation the mechanism deliberately does *not*
//! catch, so the ablation benches can demonstrate the boundary.

use std::fmt;

use bgp_engine::{Network, RouteMonitor};
use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};

/// How a false-origin attacker manipulates the MOAS list on its bogus
/// announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ListForgery {
    /// Attach no list at all. Receivers apply the implicit `{attacker}`
    /// rule, which conflicts with the victims' advertised list. This is what
    /// an *accidental* misorigination (a configuration fault) looks like.
    #[default]
    None,
    /// Attach the valid list **plus** the attacker itself — the §4.1
    /// adversary: "AS 3 could attach its own MOAS list that includes AS 1,
    /// AS 2, and AS 3". Still inconsistent with the honest list.
    IncludeSelf,
    /// Copy the valid list verbatim without adding the attacker. Defeats the
    /// pairwise comparison but fails the origin-membership self-test.
    CopyValid,
}

impl fmt::Display for ListForgery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ListForgery::None => "no list",
            ListForgery::IncludeSelf => "valid list plus self",
            ListForgery::CopyValid => "copied valid list",
        })
    }
}

/// A compromised AS originating a route to a prefix it cannot reach.
///
/// # Example
///
/// ```
/// use bgp_types::{Asn, MoasList};
/// use moas_core::{FalseOriginAttack, ListForgery};
///
/// let attack = FalseOriginAttack::new(ListForgery::IncludeSelf);
/// let valid: MoasList = [Asn(1), Asn(2)].into_iter().collect();
/// let route = attack.forged_route("10.0.0.0/16".parse().unwrap(), Asn(666), &valid);
/// // The forged list names the attacker alongside the real origins.
/// assert!(route.moas_list().unwrap().contains(Asn(666)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FalseOriginAttack {
    forgery: ListForgery,
}

impl FalseOriginAttack {
    /// Creates an attack with the given list-forgery strategy.
    #[must_use]
    pub fn new(forgery: ListForgery) -> Self {
        FalseOriginAttack { forgery }
    }

    /// The forgery strategy.
    #[must_use]
    pub fn forgery(&self) -> ListForgery {
        self.forgery
    }

    /// Builds the bogus route `attacker` would originate for `prefix`, given
    /// the legitimate origins' list.
    #[must_use]
    pub fn forged_route(&self, prefix: Ipv4Prefix, attacker: Asn, valid_list: &MoasList) -> Route {
        let route = Route::new(prefix, AsPath::new());
        match self.forgery {
            ListForgery::None => route,
            ListForgery::IncludeSelf => {
                let mut list = valid_list.clone();
                list.insert(attacker);
                route.with_moas_list(list)
            }
            ListForgery::CopyValid => route.with_moas_list(valid_list.clone()),
        }
    }

    /// Injects the attack into a running network: `attacker` starts
    /// originating `prefix`. Call [`Network::run`] afterwards to propagate.
    ///
    /// # Panics
    ///
    /// Panics if `attacker` is not part of the network.
    pub fn launch<M: RouteMonitor>(
        &self,
        net: &mut Network<M>,
        attacker: Asn,
        prefix: Ipv4Prefix,
        valid_list: &MoasList,
    ) {
        net.originate_route(attacker, self.forged_route(prefix, attacker, valid_list));
    }
}

/// The §4.3 limitation: announcing a *more-specific* prefix of the victim.
///
/// "it could falsely announce a route to a prefix longer than p where p is an
/// IP address prefix belonging to another AS. [...] our simple MOAS solution
/// [...] may not be effective in detecting more complex forms of invalid
/// routing announcements." Because the sub-prefix is a *different* prefix,
/// no MOAS conflict ever arises; longest-match forwarding still prefers the
/// hijacker. The ablation benches use this to chart the mechanism's boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubPrefixHijack;

impl SubPrefixHijack {
    /// Creates the attack.
    #[must_use]
    pub fn new() -> Self {
        SubPrefixHijack
    }

    /// The more-specific prefix the hijacker announces: the lower half of the
    /// victim's block, one bit longer. Returns `None` if the victim prefix is
    /// already a host route.
    #[must_use]
    pub fn hijacked_prefix(&self, victim_prefix: Ipv4Prefix) -> Option<Ipv4Prefix> {
        victim_prefix.split().map(|(low, _)| low)
    }

    /// Injects the hijack: `attacker` originates the more-specific prefix
    /// with no MOAS list. Returns the announced prefix.
    ///
    /// # Panics
    ///
    /// Panics if `attacker` is not part of the network, or if the victim
    /// prefix is a /32 (nothing more specific exists).
    pub fn launch<M: RouteMonitor>(
        &self,
        net: &mut Network<M>,
        attacker: Asn,
        victim_prefix: Ipv4Prefix,
    ) -> Ipv4Prefix {
        let sub = self
            .hijacked_prefix(victim_prefix)
            .expect("cannot hijack a more-specific of a /32");
        net.originate(attacker, sub, None);
        sub
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MoasMonitor, RegistryVerifier};
    use as_topology::{AsGraph, AsRole};

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn diamond_with_attacker() -> AsGraph {
        // Figure 3 topology: victim AS 4 behind transits 2 and 3; attacker 52
        // adjacent to observer AS 1.
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        g.add_as(Asn(52), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(4), Asn(2));
        g.add_link(Asn(4), Asn(3));
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(3), Asn(1));
        g.add_link(Asn(52), Asn(1));
        g
    }

    #[test]
    fn forged_route_variants() {
        let valid: MoasList = [Asn(1), Asn(2)].into_iter().collect();
        let none = FalseOriginAttack::new(ListForgery::None).forged_route(p(), Asn(9), &valid);
        assert!(none.moas_list().is_none());

        let with_self =
            FalseOriginAttack::new(ListForgery::IncludeSelf).forged_route(p(), Asn(9), &valid);
        let list = with_self.moas_list().unwrap();
        assert_eq!(list.len(), 3);
        assert!(list.contains(Asn(9)));

        let copied =
            FalseOriginAttack::new(ListForgery::CopyValid).forged_route(p(), Asn(9), &valid);
        assert_eq!(copied.moas_list().unwrap(), valid);
    }

    #[test]
    fn all_forgeries_are_caught_by_full_deployment() {
        for forgery in [
            ListForgery::None,
            ListForgery::IncludeSelf,
            ListForgery::CopyValid,
        ] {
            let g = diamond_with_attacker();
            let valid = MoasList::implicit(Asn(4));
            let mut registry = RegistryVerifier::new();
            registry.register(p(), valid.clone());
            let mut net = Network::with_monitor(&g, MoasMonitor::full(registry));
            net.originate(Asn(4), p(), Some(valid.clone()));
            FalseOriginAttack::new(forgery).launch(&mut net, Asn(52), p(), &valid);
            net.run().unwrap();
            assert_eq!(
                net.best_origin(Asn(1), p()),
                Some(Asn(4)),
                "forgery {forgery} slipped through"
            );
        }
    }

    #[test]
    fn subprefix_hijack_evades_moas_detection() {
        let g = diamond_with_attacker();
        let valid = MoasList::implicit(Asn(4));
        let mut registry = RegistryVerifier::new();
        registry.register(p(), valid.clone());
        let mut net = Network::with_monitor(&g, MoasMonitor::full(registry));
        net.originate(Asn(4), p(), Some(valid));
        let sub = SubPrefixHijack::new().launch(&mut net, Asn(52), p());
        net.run().unwrap();
        // No alarm — the sub-prefix is a different prefix entirely.
        assert!(net.monitor().alarms().is_empty());
        // The hijacker owns the more-specific route everywhere.
        assert_eq!(net.best_origin(Asn(1), sub), Some(Asn(52)));
        assert!(sub.is_more_specific_of(p()));
        // The covering prefix is untouched.
        assert_eq!(net.best_origin(Asn(1), p()), Some(Asn(4)));
    }

    #[test]
    fn hijacked_prefix_of_host_route_is_none() {
        assert!(SubPrefixHijack::new()
            .hijacked_prefix("1.2.3.4/32".parse().unwrap())
            .is_none());
    }

    #[test]
    fn display_of_forgeries() {
        assert_eq!(ListForgery::None.to_string(), "no list");
        assert_eq!(ListForgery::IncludeSelf.to_string(), "valid list plus self");
        assert_eq!(ListForgery::CopyValid.to_string(), "copied valid list");
    }
}
