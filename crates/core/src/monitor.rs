//! The in-line MOAS monitor: §4's mechanism plugged into BGP.

use std::collections::BTreeSet;

use bgp_engine::{ExportAction, ImportContext, ImportDecision, RouteMonitor};
use bgp_types::{Asn, Route};
use sim_engine::SimTime;

use crate::alarm::{Alarm, AlarmLog, Resolution};
use crate::deployment::Deployment;
use crate::detector::find_conflict;
use crate::verifier::OriginVerifier;

/// What a capable router does when a conflict cannot be adjudicated because
/// the verifier had no answer (§4.4's lookup failed or returned nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UnresolvedPolicy {
    /// Install the route anyway; the alarm still fires. Conservative default:
    /// availability is never sacrificed on an unconfirmed suspicion.
    #[default]
    Accept,
    /// Refuse the arriving route until the dispute is resolved. More
    /// aggressive; risks blackholing valid routes on false alarms.
    RejectIncoming,
}

/// Configuration of the MOAS monitor.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MoasConfig {
    /// Which ASes process MOAS lists (§5.4 evaluates `Full` vs 50% partial).
    pub deployment: Deployment,
    /// ASes that drop community attributes on export — the §4.3 hazard
    /// ("some routers may drop community attribute values associated with a
    /// route announcement, an allowed behavior under the current
    /// specification").
    pub strippers: BTreeSet<Asn>,
    /// Behaviour when verification comes back empty.
    pub on_unresolved: UnresolvedPolicy,
}

/// The paper's mechanism as a [`RouteMonitor`]: detects MOAS-list conflicts
/// on import, raises alarms, verifies the true origin set, and stops false
/// routes (rejecting the newcomer or evicting an already-installed route).
///
/// Non-capable ASes pass routes through untouched, and stripper ASes remove
/// MOAS communities on export, so a single monitor instance models the whole
/// heterogeneous network.
///
/// # Example
///
/// ```
/// use as_topology::{AsGraph, AsRole};
/// use bgp_engine::Network;
/// use bgp_types::{Asn, MoasList};
/// use moas_core::{MoasMonitor, RegistryVerifier};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 3 with detection: AS 52 falsely originates AS 4's prefix.
/// let mut g = AsGraph::new();
/// g.add_as(Asn(4), AsRole::Stub);
/// g.add_as(Asn(52), AsRole::Stub);
/// for t in [1, 2, 3] { g.add_as(Asn(t), AsRole::Transit); }
/// g.add_link(Asn(4), Asn(2));
/// g.add_link(Asn(4), Asn(3));
/// g.add_link(Asn(2), Asn(1));
/// g.add_link(Asn(3), Asn(1));
/// g.add_link(Asn(52), Asn(1));
///
/// let prefix = "208.8.0.0/16".parse()?;
/// let valid = MoasList::implicit(Asn(4));
/// let mut registry = RegistryVerifier::new();
/// registry.register(prefix, valid.clone());
///
/// let mut net = Network::with_monitor(&g, MoasMonitor::full(registry));
/// net.originate(Asn(4), prefix, Some(valid));
/// net.originate(Asn(52), prefix, None);
/// net.run()?;
///
/// // Without detection AS 1 would adopt the attacker's shorter route
/// // (see bgp-engine's tests); with it, AS 1 keeps the true origin.
/// assert_eq!(net.best_origin(Asn(1), prefix), Some(Asn(4)));
/// assert!(net.monitor().alarms().confirmed_count() > 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MoasMonitor<V> {
    config: MoasConfig,
    verifier: V,
    alarms: AlarmLog,
    /// The simulation clock, fed through [`RouteMonitor::on_clock`]; stamps
    /// every alarm so experiments can measure detection latency.
    now: SimTime,
}

impl<V: OriginVerifier> MoasMonitor<V> {
    /// Creates a monitor with explicit configuration.
    #[must_use]
    pub fn new(config: MoasConfig, verifier: V) -> Self {
        MoasMonitor {
            config,
            verifier,
            alarms: AlarmLog::new(),
            now: SimTime::ZERO,
        }
    }

    /// Full deployment, no strippers, conservative unresolved policy — the
    /// §5.2 "Full MOAS Detection" configuration.
    #[must_use]
    pub fn full(verifier: V) -> Self {
        MoasMonitor::new(
            MoasConfig {
                deployment: Deployment::Full,
                ..MoasConfig::default()
            },
            verifier,
        )
    }

    /// Partial deployment over the given capable set — §5.4.
    #[must_use]
    pub fn partial(capable: BTreeSet<Asn>, verifier: V) -> Self {
        MoasMonitor::new(
            MoasConfig {
                deployment: Deployment::Partial(capable),
                ..MoasConfig::default()
            },
            verifier,
        )
    }

    /// The alarms raised so far.
    #[must_use]
    pub fn alarms(&self) -> &AlarmLog {
        &self.alarms
    }

    /// Mutable alarm log (e.g. to clear between phases).
    #[must_use]
    pub fn alarms_mut(&mut self) -> &mut AlarmLog {
        &mut self.alarms
    }

    /// The configured verifier.
    #[must_use]
    pub fn verifier(&self) -> &V {
        &self.verifier
    }

    /// Mutable verifier access (e.g. to publish records mid-run).
    #[must_use]
    pub fn verifier_mut(&mut self) -> &mut V {
        &mut self.verifier
    }

    /// The monitor configuration.
    #[must_use]
    pub fn config(&self) -> &MoasConfig {
        &self.config
    }
}

impl<V: OriginVerifier> RouteMonitor for MoasMonitor<V> {
    fn on_import(&mut self, ctx: &ImportContext<'_>) -> ImportDecision {
        if !self.config.deployment.is_capable(ctx.local) {
            return ImportDecision::accept();
        }
        let Some(conflict) = find_conflict(ctx.route, ctx.existing) else {
            return ImportDecision::accept();
        };

        // §4.4: alarm raised; now adjudicate against the verifier.
        let (decision, resolution) = match self.verifier.valid_origins(ctx.route.prefix()) {
            Some(valid) => {
                let incoming_valid = ctx
                    .route
                    .origin_as()
                    .is_some_and(|origin| valid.contains(origin));
                let mut decision = if incoming_valid {
                    ImportDecision::accept()
                } else {
                    ImportDecision::reject()
                };
                let mut any_confirmed = !incoming_valid;
                for (peer, held) in ctx.existing {
                    // A locally originated route has an empty path; its
                    // origin is the local AS itself (this matters when the
                    // *local* AS is the bogus originator — its self-conflict
                    // is a confirmed detection, not a false alarm).
                    let origin = held
                        .origin_as()
                        .or_else(|| peer.is_none().then_some(ctx.local));
                    let held_valid = origin.is_some_and(|o| valid.contains(o));
                    if !held_valid {
                        any_confirmed = true;
                        if let Some(peer) = peer {
                            decision = decision.with_eviction(*peer);
                        }
                    }
                }
                let resolution = if any_confirmed {
                    Resolution::Confirmed
                } else {
                    Resolution::FalseAlarm
                };
                (decision, resolution)
            }
            None => {
                let decision = match self.config.on_unresolved {
                    UnresolvedPolicy::Accept => ImportDecision::accept(),
                    UnresolvedPolicy::RejectIncoming => ImportDecision::reject(),
                };
                (decision, Resolution::Unresolved)
            }
        };

        self.alarms.record(Alarm {
            observer: ctx.local,
            prefix: ctx.route.prefix(),
            kind: conflict.kind,
            suspect_origin: conflict.incoming_origin,
            resolution,
            at: self.now,
        });
        decision
    }

    fn on_clock(&mut self, now: SimTime) {
        self.now = now;
    }

    fn on_export(
        &mut self,
        local: Asn,
        _to_peer: Asn,
        _learned_from: Option<Asn>,
        route: &Route,
    ) -> ExportAction {
        if self.config.strippers.contains(&local) && route.moas_list().is_some() {
            // Optional transitive attribute dropped in transit (§4.3). Only
            // this case pays for a route clone; everyone else shares the
            // router's single outbound allocation.
            let mut stripped = route.clone();
            stripped.set_moas_list(None);
            return ExportAction::Replace(stripped);
        }
        ExportAction::Forward
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::RegistryVerifier;
    use bgp_types::{AsPath, Ipv4Prefix, MoasList};

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn valid_route(origin: u32, list: &[u32]) -> Route {
        Route::new(p(), AsPath::origination(Asn(origin)))
            .with_moas_list(list.iter().map(|&a| Asn(a)).collect())
    }

    fn registry(valid: &[u32]) -> RegistryVerifier {
        let mut reg = RegistryVerifier::new();
        reg.register(p(), valid.iter().map(|&a| Asn(a)).collect::<MoasList>());
        reg
    }

    fn ctx<'a>(route: &'a Route, existing: &'a [(Option<Asn>, &'a Route)]) -> ImportContext<'a> {
        ImportContext {
            local: Asn(100),
            from_peer: Asn(200),
            route,
            existing,
        }
    }

    #[test]
    fn consistent_announcements_pass_without_queries() {
        let mut m = MoasMonitor::full(registry(&[1, 2]));
        let incoming = valid_route(1, &[1, 2]);
        let held = valid_route(2, &[1, 2]);
        let existing = vec![(Some(Asn(5)), &held)];
        assert_eq!(
            m.on_import(&ctx(&incoming, &existing)),
            ImportDecision::accept()
        );
        assert!(m.alarms().is_empty());
        assert_eq!(
            m.verifier().query_count(),
            0,
            "no conflict, no lookup (§4.4)"
        );
    }

    #[test]
    fn false_origin_is_rejected_and_alarm_confirmed() {
        let mut m = MoasMonitor::full(registry(&[4]));
        let incoming = Route::new(p(), AsPath::origination(Asn(52)));
        let held = Route::new(p(), AsPath::origination(Asn(4)));
        let existing = vec![(Some(Asn(5)), &held)];
        let d = m.on_import(&ctx(&incoming, &existing));
        assert!(d.reject);
        assert_eq!(m.alarms().confirmed_count(), 1);
        assert_eq!(m.verifier().query_count(), 1);
    }

    #[test]
    fn installed_false_route_is_evicted_when_valid_route_arrives() {
        let mut m = MoasMonitor::full(registry(&[4]));
        let incoming = Route::new(p(), AsPath::origination(Asn(4)));
        let held = Route::new(p(), AsPath::origination(Asn(52)));
        let existing = vec![(Some(Asn(7)), &held)];
        let d = m.on_import(&ctx(&incoming, &existing));
        assert!(!d.reject, "the valid route must be installed");
        assert_eq!(d.evict_peers, vec![Asn(7)], "the stale false route must go");
        assert_eq!(m.alarms().confirmed_count(), 1);
    }

    #[test]
    fn dropped_list_is_a_false_alarm_and_route_kept() {
        // §4.3: both origins are valid; one announcement lost its list.
        let mut m = MoasMonitor::full(registry(&[1, 2]));
        let stripped = Route::new(p(), AsPath::origination(Asn(1)));
        let held = valid_route(2, &[1, 2]);
        let existing = vec![(Some(Asn(5)), &held)];
        let d = m.on_import(&ctx(&stripped, &existing));
        assert!(!d.reject);
        assert!(d.evict_peers.is_empty());
        assert_eq!(m.alarms().false_alarm_count(), 1);
    }

    #[test]
    fn non_capable_as_ignores_everything() {
        let mut m = MoasMonitor::partial(BTreeSet::new(), registry(&[4]));
        let incoming = Route::new(p(), AsPath::origination(Asn(52)));
        let held = Route::new(p(), AsPath::origination(Asn(4)));
        let existing = vec![(Some(Asn(5)), &held)];
        assert_eq!(
            m.on_import(&ctx(&incoming, &existing)),
            ImportDecision::accept()
        );
        assert!(m.alarms().is_empty());
    }

    #[test]
    fn unresolved_policy_accept_keeps_route_with_alarm() {
        let mut m = MoasMonitor::full(RegistryVerifier::new()); // no records
        let incoming = Route::new(p(), AsPath::origination(Asn(52)));
        let held = Route::new(p(), AsPath::origination(Asn(4)));
        let existing = vec![(Some(Asn(5)), &held)];
        let d = m.on_import(&ctx(&incoming, &existing));
        assert!(!d.reject);
        assert_eq!(m.alarms().unresolved_count(), 1);
    }

    #[test]
    fn unresolved_policy_reject_refuses_route() {
        let config = MoasConfig {
            deployment: Deployment::Full,
            on_unresolved: UnresolvedPolicy::RejectIncoming,
            ..MoasConfig::default()
        };
        let mut m = MoasMonitor::new(config, RegistryVerifier::new());
        let incoming = Route::new(p(), AsPath::origination(Asn(52)));
        let held = Route::new(p(), AsPath::origination(Asn(4)));
        let existing = vec![(Some(Asn(5)), &held)];
        assert!(m.on_import(&ctx(&incoming, &existing)).reject);
    }

    #[test]
    fn stripper_removes_list_on_export_only_for_configured_as() {
        let config = MoasConfig {
            strippers: [Asn(9)].into_iter().collect(),
            ..MoasConfig::default()
        };
        let mut m = MoasMonitor::new(config, registry(&[1]));
        let route = valid_route(1, &[1, 2]);
        let ExportAction::Replace(stripped) = m.on_export(Asn(9), Asn(2), None, &route) else {
            panic!("stripper must replace the route");
        };
        assert!(stripped.moas_list().is_none());
        assert_eq!(
            m.on_export(Asn(8), Asn(2), None, &route),
            ExportAction::Forward,
            "non-strippers forward the shared payload untouched"
        );
    }

    #[test]
    fn stripper_with_no_list_forwards_without_cloning() {
        let config = MoasConfig {
            strippers: [Asn(9)].into_iter().collect(),
            ..MoasConfig::default()
        };
        let mut m = MoasMonitor::new(config, registry(&[1]));
        let bare = Route::new(p(), AsPath::origination(Asn(1)));
        assert_eq!(
            m.on_export(Asn(9), Asn(2), None, &bare),
            ExportAction::Forward
        );
    }

    #[test]
    fn forged_list_attack_rejected_even_when_it_arrives_first() {
        // The attacker's announcement (with forged list including itself)
        // arrives at an empty RIB: no conflict yet, accepted. When the valid
        // route arrives the conflict fires and the attacker route is evicted.
        let mut m = MoasMonitor::full(registry(&[1, 2]));
        let forged = valid_route(66, &[1, 2, 66]);
        let d1 = m.on_import(&ctx(&forged, &[]));
        assert!(!d1.reject, "no conflict visible yet");
        let valid = valid_route(1, &[1, 2]);
        let existing = vec![(Some(Asn(6)), &forged)];
        let d2 = m.on_import(&ctx(&valid, &existing));
        assert!(!d2.reject);
        assert_eq!(d2.evict_peers, vec![Asn(6)]);
    }

    #[test]
    fn alarms_carry_the_clock_fed_through_on_clock() {
        let mut m = MoasMonitor::full(registry(&[4]));
        m.on_clock(SimTime::from_ticks(42));
        let incoming = Route::new(p(), AsPath::origination(Asn(52)));
        let held = Route::new(p(), AsPath::origination(Asn(4)));
        let existing = vec![(Some(Asn(5)), &held)];
        m.on_import(&ctx(&incoming, &existing));
        let alarm = m.alarms().iter().next().unwrap();
        assert_eq!(alarm.at, SimTime::from_ticks(42));
    }

    #[test]
    fn accessors_expose_state() {
        let mut m = MoasMonitor::full(registry(&[4]));
        assert_eq!(m.config().deployment, Deployment::Full);
        m.alarms_mut().clear();
        m.verifier_mut()
            .register("10.0.0.0/8".parse().unwrap(), MoasList::implicit(Asn(1)));
        assert_eq!(m.verifier().len(), 2);
    }
}
