//! Alarm records raised on detected conflicts.

use std::fmt;

use bgp_types::{Asn, Ipv4Prefix};
use sim_engine::SimTime;

use crate::detector::ConflictKind;

/// How an alarm was resolved by the origin verifier (§4.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// The verifier confirmed a false origin: a true positive.
    Confirmed,
    /// All involved origins turned out to be valid — the inconsistency came
    /// from a dropped/altered list (§4.3), not a bogus route.
    FalseAlarm,
    /// The verifier had no record or was unavailable.
    Unresolved,
}

impl fmt::Display for Resolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Resolution::Confirmed => "confirmed",
            Resolution::FalseAlarm => "false alarm",
            Resolution::Unresolved => "unresolved",
        })
    }
}

/// One alarm: a router observed a MOAS conflict (§4.2: "whenever a BGP router
/// notices any inconsistency in the MOAS Lists received, it should generate
/// an alarm signal").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alarm {
    /// The AS that noticed the conflict.
    pub observer: Asn,
    /// The disputed prefix.
    pub prefix: Ipv4Prefix,
    /// The kind of inconsistency.
    pub kind: ConflictKind,
    /// Origin of the announcement that triggered the alarm.
    pub suspect_origin: Option<Asn>,
    /// How the follow-up verification resolved it.
    pub resolution: Resolution,
    /// Simulated time when the alarm fired. [`SimTime::ZERO`] when the
    /// observation happened outside a running simulation (e.g. the monitor
    /// driven directly in unit tests). Chaos experiments subtract the attack
    /// injection time from this to measure detection latency.
    pub at: SimTime,
}

impl fmt::Display for Alarm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} saw {} on {} at {} (suspect {:?}, {})",
            self.observer, self.kind, self.prefix, self.at, self.suspect_origin, self.resolution
        )
    }
}

/// An append-only log of alarms with simple aggregation queries.
///
/// # Example
///
/// ```
/// use moas_core::{Alarm, AlarmLog, ConflictKind, Resolution};
/// use bgp_types::Asn;
/// use sim_engine::SimTime;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut log = AlarmLog::new();
/// log.record(Alarm {
///     observer: Asn(1),
///     prefix: "10.0.0.0/16".parse()?,
///     kind: ConflictKind::InconsistentLists,
///     suspect_origin: Some(Asn(52)),
///     resolution: Resolution::Confirmed,
///     at: SimTime::from_ticks(12),
/// });
/// assert_eq!(log.len(), 1);
/// assert_eq!(log.confirmed_count(), 1);
/// assert_eq!(log.observers().count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AlarmLog {
    alarms: Vec<Alarm>,
}

impl AlarmLog {
    /// Creates an empty log.
    #[must_use]
    pub fn new() -> Self {
        AlarmLog::default()
    }

    /// Appends an alarm.
    pub fn record(&mut self, alarm: Alarm) {
        self.alarms.push(alarm);
    }

    /// Number of alarms recorded.
    #[must_use]
    pub fn len(&self) -> usize {
        self.alarms.len()
    }

    /// Returns `true` when no alarms have fired.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.alarms.is_empty()
    }

    /// All alarms, in the order they fired.
    pub fn iter(&self) -> impl Iterator<Item = &Alarm> {
        self.alarms.iter()
    }

    /// Alarms concerning one prefix.
    pub fn for_prefix(&self, prefix: Ipv4Prefix) -> impl Iterator<Item = &Alarm> {
        self.alarms.iter().filter(move |a| a.prefix == prefix)
    }

    /// Distinct ASes that raised at least one alarm, ascending.
    pub fn observers(&self) -> impl Iterator<Item = Asn> {
        let set: std::collections::BTreeSet<Asn> = self.alarms.iter().map(|a| a.observer).collect();
        set.into_iter()
    }

    /// Number of verifier-confirmed (true positive) alarms.
    #[must_use]
    pub fn confirmed_count(&self) -> usize {
        self.count_with(Resolution::Confirmed)
    }

    /// Number of false alarms (all origins valid; list was dropped/mangled).
    #[must_use]
    pub fn false_alarm_count(&self) -> usize {
        self.count_with(Resolution::FalseAlarm)
    }

    /// Number of alarms the verifier could not adjudicate.
    #[must_use]
    pub fn unresolved_count(&self) -> usize {
        self.count_with(Resolution::Unresolved)
    }

    fn count_with(&self, resolution: Resolution) -> usize {
        self.alarms
            .iter()
            .filter(|a| a.resolution == resolution)
            .count()
    }

    /// Discards all alarms (e.g. between experiment phases).
    pub fn clear(&mut self) {
        self.alarms.clear();
    }
}

impl<'a> IntoIterator for &'a AlarmLog {
    type Item = &'a Alarm;
    type IntoIter = std::slice::Iter<'a, Alarm>;

    fn into_iter(self) -> Self::IntoIter {
        self.alarms.iter()
    }
}

impl Extend<Alarm> for AlarmLog {
    fn extend<I: IntoIterator<Item = Alarm>>(&mut self, iter: I) {
        self.alarms.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alarm(observer: u32, resolution: Resolution) -> Alarm {
        Alarm {
            observer: Asn(observer),
            prefix: "10.0.0.0/16".parse().unwrap(),
            kind: ConflictKind::InconsistentLists,
            suspect_origin: Some(Asn(52)),
            resolution,
            at: SimTime::from_ticks(5),
        }
    }

    #[test]
    fn counting_by_resolution() {
        let mut log = AlarmLog::new();
        log.record(alarm(1, Resolution::Confirmed));
        log.record(alarm(2, Resolution::Confirmed));
        log.record(alarm(2, Resolution::FalseAlarm));
        log.record(alarm(3, Resolution::Unresolved));
        assert_eq!(log.len(), 4);
        assert_eq!(log.confirmed_count(), 2);
        assert_eq!(log.false_alarm_count(), 1);
        assert_eq!(log.unresolved_count(), 1);
    }

    #[test]
    fn observers_are_distinct_and_sorted() {
        let mut log = AlarmLog::new();
        log.record(alarm(3, Resolution::Confirmed));
        log.record(alarm(1, Resolution::Confirmed));
        log.record(alarm(3, Resolution::Confirmed));
        assert_eq!(log.observers().collect::<Vec<_>>(), vec![Asn(1), Asn(3)]);
    }

    #[test]
    fn for_prefix_filters() {
        let mut log = AlarmLog::new();
        log.record(alarm(1, Resolution::Confirmed));
        let mut other = alarm(2, Resolution::Confirmed);
        other.prefix = "10.1.0.0/16".parse().unwrap();
        log.record(other);
        assert_eq!(log.for_prefix("10.0.0.0/16".parse().unwrap()).count(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut log = AlarmLog::new();
        log.record(alarm(1, Resolution::Confirmed));
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn display_mentions_parties() {
        let s = alarm(1, Resolution::FalseAlarm).to_string();
        assert!(s.contains("AS1"));
        assert!(s.contains("false alarm"));
    }

    #[test]
    fn extend_and_iterate() {
        let mut log = AlarmLog::new();
        log.extend([
            alarm(1, Resolution::Confirmed),
            alarm(2, Resolution::Confirmed),
        ]);
        assert_eq!((&log).into_iter().count(), 2);
        assert_eq!(log.iter().count(), 2);
    }
}
