//! The off-line monitoring deployment path (§4.2).
//!
//! "One could deploy the MOAS List checking quickly in the operational
//! Internet via an off-line monitoring process, which periodically downloads
//! the BGP routing messages and checks the MOAS List consistency from
//! multiple peers." This module implements that process over collected
//! routes — e.g. the best routes of a set of vantage ASes in a simulation,
//! or any [`Route`] collection assembled from table dumps.

use std::collections::BTreeMap;
use std::fmt;

use bgp_engine::{Network, RouteMonitor};
use bgp_types::{Asn, Ipv4Prefix, MoasList, Route};

use crate::detector::{find_conflict, ConflictKind};

/// One prefix flagged by the off-line monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OfflineFinding {
    /// The disputed prefix.
    pub prefix: Ipv4Prefix,
    /// The kind of inconsistency observed among collected routes.
    pub kind: ConflictKind,
    /// Every origin AS observed announcing the prefix.
    pub origins: Vec<Asn>,
    /// Every distinct effective MOAS list observed.
    pub lists: Vec<MoasList>,
}

impl fmt::Display for OfflineFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} origins, {} distinct lists)",
            self.prefix,
            self.kind,
            self.origins.len(),
            self.lists.len()
        )
    }
}

/// Periodically scans collected routes for MOAS-list inconsistencies without
/// touching the routers — the incremental-deployment story of §4.2.
///
/// # Example
///
/// ```
/// use bgp_types::{AsPath, Asn, Route};
/// use moas_core::OfflineMonitor;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = "208.8.0.0/16".parse()?;
/// let valid = Route::new(p, AsPath::origination(Asn(4)));
/// let bogus = Route::new(p, AsPath::origination(Asn(52)));
/// let findings = OfflineMonitor::new().scan([valid, bogus]);
/// assert_eq!(findings.len(), 1);
/// assert_eq!(findings[0].origins, vec![Asn(4), Asn(52)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OfflineMonitor;

impl OfflineMonitor {
    /// Creates the monitor.
    #[must_use]
    pub fn new() -> Self {
        OfflineMonitor
    }

    /// Checks a batch of collected routes, returning one finding per
    /// conflicted prefix (in ascending prefix order).
    #[must_use]
    pub fn scan<I: IntoIterator<Item = Route>>(&self, routes: I) -> Vec<OfflineFinding> {
        let mut by_prefix: BTreeMap<Ipv4Prefix, Vec<Route>> = BTreeMap::new();
        for route in routes {
            by_prefix.entry(route.prefix()).or_default().push(route);
        }

        let mut findings = Vec::new();
        for (prefix, routes) in by_prefix {
            let mut kind: Option<ConflictKind> = None;
            for (i, route) in routes.iter().enumerate() {
                let others: Vec<(Option<Asn>, Route)> = routes
                    .iter()
                    .enumerate()
                    .filter(|&(j, _)| j != i)
                    .map(|(_, r)| (None, r.clone()))
                    .collect();
                if let Some(conflict) = find_conflict(route, &others) {
                    kind = Some(conflict.kind);
                    break;
                }
            }
            let Some(kind) = kind else { continue };

            let mut origins: Vec<Asn> = Vec::new();
            let mut lists: Vec<MoasList> = Vec::new();
            for route in &routes {
                if let Some(origin) = route.origin_as() {
                    if !origins.contains(&origin) {
                        origins.push(origin);
                    }
                }
                if let Some(list) = route.effective_moas_list() {
                    if !lists.contains(&list) {
                        lists.push(list);
                    }
                }
            }
            origins.sort_unstable();
            findings.push(OfflineFinding {
                prefix,
                kind,
                origins,
                lists,
            });
        }
        findings
    }

    /// Convenience: collects the best routes a set of vantage ASes hold for
    /// `prefix` in a simulated network (mimicking Route Views' multiple
    /// peerings) and scans them.
    #[must_use]
    pub fn scan_network<M: RouteMonitor>(
        &self,
        net: &Network<M>,
        vantages: &[Asn],
        prefix: Ipv4Prefix,
    ) -> Vec<OfflineFinding> {
        let collected: Vec<Route> = vantages
            .iter()
            .filter_map(|&asn| net.best_route(asn, prefix).cloned())
            .collect();
        self.scan(collected)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use as_topology::{AsGraph, AsRole};
    use bgp_types::AsPath;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn route(origin: u32, list: Option<&[u32]>) -> Route {
        let mut r = Route::new(p(), AsPath::origination(Asn(origin)));
        if let Some(members) = list {
            r = r.with_moas_list(members.iter().map(|&a| Asn(a)).collect());
        }
        r
    }

    #[test]
    fn clean_tables_produce_no_findings() {
        let findings = OfflineMonitor::new().scan([
            route(1, Some(&[1, 2])),
            route(2, Some(&[1, 2])),
            route(1, Some(&[1, 2])),
        ]);
        assert!(findings.is_empty());
    }

    #[test]
    fn conflicting_origins_are_flagged_once_per_prefix() {
        let findings =
            OfflineMonitor::new().scan([route(4, None), route(52, None), route(4, None)]);
        assert_eq!(findings.len(), 1);
        let f = &findings[0];
        assert_eq!(f.kind, ConflictKind::InconsistentLists);
        assert_eq!(f.origins, vec![Asn(4), Asn(52)]);
        assert_eq!(f.lists.len(), 2);
    }

    #[test]
    fn multiple_prefixes_sorted() {
        let mut other = route(4, None);
        other = Route::new("10.0.0.0/8".parse().unwrap(), other.as_path().clone());
        let findings = OfflineMonitor::new().scan([
            route(4, None),
            route(52, None),
            other.clone(),
            Route::new("10.0.0.0/8".parse().unwrap(), AsPath::origination(Asn(9))),
        ]);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].prefix, "10.0.0.0/8".parse().unwrap());
        assert_eq!(findings[1].prefix, p());
    }

    #[test]
    fn self_test_violation_flagged_from_single_route() {
        let findings = OfflineMonitor::new().scan([route(3, Some(&[1, 2]))]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].kind, ConflictKind::OriginNotInList);
    }

    #[test]
    fn empty_scan_is_empty() {
        assert!(OfflineMonitor::new().scan([]).is_empty());
    }

    #[test]
    fn scan_network_collects_vantage_best_routes() {
        // Figure 3 network under plain BGP: the offline monitor still sees
        // the conflict across vantages even though no router blocked it.
        let mut g = AsGraph::new();
        g.add_as(Asn(4), AsRole::Stub);
        g.add_as(Asn(52), AsRole::Stub);
        for t in [1, 2, 3] {
            g.add_as(Asn(t), AsRole::Transit);
        }
        g.add_link(Asn(4), Asn(2));
        g.add_link(Asn(4), Asn(3));
        g.add_link(Asn(2), Asn(1));
        g.add_link(Asn(3), Asn(1));
        g.add_link(Asn(52), Asn(1));
        let mut net = Network::new(&g);
        net.originate(Asn(4), p(), None);
        net.originate(Asn(52), p(), None);
        net.run().unwrap();

        let findings = OfflineMonitor::new().scan_network(&net, &[Asn(1), Asn(2), Asn(3)], p());
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].origins, vec![Asn(4), Asn(52)]);
    }

    #[test]
    fn display_summarizes_finding() {
        let findings = OfflineMonitor::new().scan([route(4, None), route(52, None)]);
        let s = findings[0].to_string();
        assert!(s.contains("208.8.0.0/16"));
        assert!(s.contains("2 origins"));
    }
}
