//! The §4.2 consistency check, as a pure function.

use std::fmt;

use bgp_types::{Asn, Ipv4Prefix, MoasList, Route};

/// Why two announcements for the same prefix conflict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConflictKind {
    /// A route's origin AS is not a member of its own (effective) MOAS list.
    ///
    /// §4.1: "a faulty route's origin AS will not be in p's MOAS list" — the
    /// self-test form, detectable from a single announcement when the
    /// attacker copies the honest list verbatim without adding itself.
    OriginNotInList,
    /// Two announcements carry different MOAS list sets (§4.2: "the set of
    /// ASes included in each route announcement must be identical").
    InconsistentLists,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConflictKind::OriginNotInList => "origin AS not in its own MOAS list",
            ConflictKind::InconsistentLists => "inconsistent MOAS lists",
        })
    }
}

/// A detected MOAS conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The prefix under dispute.
    pub prefix: Ipv4Prefix,
    /// What kind of inconsistency was observed.
    pub kind: ConflictKind,
    /// Origin of the route that triggered the check.
    pub incoming_origin: Option<Asn>,
    /// The MOAS list (effective) of the triggering route.
    pub incoming_list: MoasList,
    /// For [`ConflictKind::InconsistentLists`]: the first existing route the
    /// incoming one disagreed with, as `(peer it was learned from, origin)`.
    pub conflicting_with: Option<(Option<Asn>, Option<Asn>)>,
}

impl fmt::Display for Conflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (origin {:?})",
            self.prefix, self.kind, self.incoming_origin
        )
    }
}

/// Checks an arriving route against the routes already held for its prefix,
/// returning the first conflict found.
///
/// `existing` entries are `(learned-from peer, route)` pairs; `None` marks a
/// locally originated route. The route side is generic over
/// [`Borrow<Route>`](std::borrow::Borrow), so callers can pass owned routes
/// or `&Route` references straight out of a RIB without cloning. Routes
/// without an attached list are treated as carrying the implicit `{origin}`
/// list (footnote 3). Routes with no well-defined origin and no list (empty
/// path aggregates) cannot be checked and never conflict.
///
/// This is deliberately a pure function: the in-line [`MoasMonitor`]
/// (§4.2's modified-BGP deployment) and the [`OfflineMonitor`] (§4.2's
/// monitoring-process deployment) both call it.
///
/// [`MoasMonitor`]: crate::MoasMonitor
/// [`OfflineMonitor`]: crate::OfflineMonitor
#[must_use]
pub fn find_conflict<R: std::borrow::Borrow<Route>>(
    route: &Route,
    existing: &[(Option<Asn>, R)],
) -> Option<Conflict> {
    let incoming_list = route.effective_moas_list()?;

    // Self-test: a route whose origin is not in its own list is malformed.
    if let Some(origin) = route.origin_as() {
        if !incoming_list.contains(origin) {
            return Some(Conflict {
                prefix: route.prefix(),
                kind: ConflictKind::OriginNotInList,
                incoming_origin: Some(origin),
                incoming_list,
                conflicting_with: None,
            });
        }
    }

    // Pairwise set comparison against every held route for this prefix.
    for (peer, held) in existing {
        let held = held.borrow();
        if held.prefix() != route.prefix() {
            continue;
        }
        let Some(held_list) = held.effective_moas_list() else {
            continue;
        };
        if !incoming_list.is_consistent_with(&held_list) {
            return Some(Conflict {
                prefix: route.prefix(),
                kind: ConflictKind::InconsistentLists,
                incoming_origin: route.origin_as(),
                incoming_list,
                conflicting_with: Some((*peer, held.origin_as())),
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::AsPath;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    fn route(origin: u32, list: Option<&[u32]>) -> Route {
        let mut r = Route::new(p(), AsPath::origination(Asn(origin)));
        if let Some(members) = list {
            r = r.with_moas_list(members.iter().map(|&a| Asn(a)).collect());
        }
        r
    }

    #[test]
    fn consistent_lists_do_not_conflict() {
        let a = route(1, Some(&[1, 2]));
        let b = route(2, Some(&[1, 2]));
        assert!(find_conflict(&a, &[(Some(Asn(9)), b)]).is_none());
    }

    #[test]
    fn single_origin_implicit_lists_agree() {
        // Two paths to the same origin: implicit lists are both {4}.
        let a = route(4, None);
        let b = route(4, None);
        assert!(find_conflict(&a, &[(Some(Asn(9)), b)]).is_none());
    }

    #[test]
    fn different_origins_without_lists_conflict() {
        // Figure 3: implicit {4} vs implicit {52}.
        let valid = route(4, None);
        let false_route = route(52, None);
        let conflict = find_conflict(&false_route, &[(Some(Asn(9)), valid)]).unwrap();
        assert_eq!(conflict.kind, ConflictKind::InconsistentLists);
        assert_eq!(conflict.incoming_origin, Some(Asn(52)));
        assert_eq!(
            conflict.conflicting_with,
            Some((Some(Asn(9)), Some(Asn(4))))
        );
    }

    #[test]
    fn forged_superset_list_conflicts() {
        // §4.1: AS 3 attaches {1, 2, 3}; honest list is {1, 2}.
        let honest = route(1, Some(&[1, 2]));
        let forged = route(3, Some(&[1, 2, 3]));
        let conflict = find_conflict(&forged, &[(None, honest)]).unwrap();
        assert_eq!(conflict.kind, ConflictKind::InconsistentLists);
    }

    #[test]
    fn copying_the_honest_list_fails_the_self_test() {
        // Attacker copies {1, 2} exactly but originates from AS 3.
        let forged = route(3, Some(&[1, 2]));
        let conflict = find_conflict::<Route>(&forged, &[]).unwrap();
        assert_eq!(conflict.kind, ConflictKind::OriginNotInList);
        assert_eq!(conflict.incoming_origin, Some(Asn(3)));
    }

    #[test]
    fn dropped_list_raises_false_alarm_against_multi_origin_prefix() {
        // §4.3: a transit dropped the community; implicit {1} now disagrees
        // with the advertised {1, 2}. Detection fires (a false alarm, to be
        // cleared by the verifier).
        let with_list = route(2, Some(&[1, 2]));
        let stripped = route(1, None);
        let conflict = find_conflict(&stripped, &[(Some(Asn(9)), with_list)]).unwrap();
        assert_eq!(conflict.kind, ConflictKind::InconsistentLists);
    }

    #[test]
    fn no_origin_and_no_list_is_uncheckable() {
        let aggregate = Route::new(p(), AsPath::new());
        assert!(find_conflict::<Route>(&aggregate, &[]).is_none());
    }

    #[test]
    fn different_prefix_entries_are_ignored() {
        let other = Route::new("10.0.0.0/8".parse().unwrap(), AsPath::origination(Asn(7)));
        let incoming = route(4, None);
        assert!(find_conflict(&incoming, &[(Some(Asn(9)), other)]).is_none());
    }

    #[test]
    fn first_conflicting_entry_is_reported() {
        let incoming = route(4, None);
        let same = route(4, None);
        let different = route(5, None);
        let conflict = find_conflict(
            &incoming,
            &[(Some(Asn(1)), same), (Some(Asn(2)), different)],
        )
        .unwrap();
        assert_eq!(
            conflict.conflicting_with,
            Some((Some(Asn(2)), Some(Asn(5))))
        );
    }

    #[test]
    fn display_formats() {
        let incoming = route(52, None);
        let valid = route(4, None);
        let conflict = find_conflict(&incoming, &[(None, valid)]).unwrap();
        let s = conflict.to_string();
        assert!(s.contains("208.8.0.0/16"));
        assert!(s.contains("inconsistent"));
        assert_eq!(
            ConflictKind::OriginNotInList.to_string(),
            "origin AS not in its own MOAS list"
        );
    }
}
