//! Origin verification back-ends (§4.4).
//!
//! Detection only says *something* is wrong; "once an alarm is raised, the
//! router (or network administrator) needs to distinguish the route with
//! correct origin AS(es) from the one with the false origin" (§4.4). The
//! paper sketches a DNS-based lookup (`MOASRR` resource records); related
//! work uses the Internet Route Registry. Both are modeled here as
//! implementations of [`OriginVerifier`].

use std::collections::BTreeMap;

use bgp_types::{Ipv4Prefix, MoasList};
use rand::rngs::SmallRng;

/// Resolves the legitimate origin set of a prefix after an alarm.
///
/// Returns `None` when the verifier cannot answer (no record registered, or
/// the lookup service is unreachable); the caller then applies its
/// [`UnresolvedPolicy`](crate::UnresolvedPolicy).
pub trait OriginVerifier {
    /// Looks up the valid origin set for `prefix`.
    ///
    /// Takes `&mut self` so implementations can count queries and model
    /// transient availability.
    fn valid_origins(&mut self, prefix: Ipv4Prefix) -> Option<MoasList>;

    /// Number of lookups performed so far. The paper argues MOAS-triggered
    /// lookups keep this low ("only in cases of invalid MOAS or dropped MOAS
    /// lists will DNS queries be triggered", §4.4); experiments assert it.
    fn query_count(&self) -> u64;
}

/// A static registry mapping prefixes to their legitimate origin sets.
///
/// Used two ways in the reproduction:
///
/// * built from simulation ground truth, it is the *oracle* the §5
///   experiments assume ("they stop the further propagation of a false route,
///   e.g. by checking with DNS");
/// * built from deliberately stale data, it models the Internet Route
///   Registry critique of §2 ("some IRR records are outdated or inaccurate").
///
/// # Example
///
/// ```
/// use bgp_types::{Asn, MoasList};
/// use moas_core::{OriginVerifier, RegistryVerifier};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut reg = RegistryVerifier::new();
/// reg.register("208.8.0.0/16".parse()?, [Asn(1), Asn(2)].into_iter().collect());
/// let origins = reg.valid_origins("208.8.0.0/16".parse()?).unwrap();
/// assert!(origins.contains(Asn(1)));
/// assert_eq!(reg.query_count(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegistryVerifier {
    records: BTreeMap<Ipv4Prefix, MoasList>,
    queries: u64,
}

impl RegistryVerifier {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        RegistryVerifier::default()
    }

    /// Registers (or replaces) the valid origin set for a prefix.
    pub fn register(&mut self, prefix: Ipv4Prefix, origins: MoasList) {
        self.records.insert(prefix, origins);
    }

    /// Removes a record, returning it if present. Models registry decay.
    pub fn unregister(&mut self, prefix: Ipv4Prefix) -> Option<MoasList> {
        self.records.remove(&prefix)
    }

    /// Number of registered prefixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` when no prefixes are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

impl OriginVerifier for RegistryVerifier {
    fn valid_origins(&mut self, prefix: Ipv4Prefix) -> Option<MoasList> {
        self.queries += 1;
        self.records.get(&prefix).cloned()
    }

    fn query_count(&self) -> u64 {
        self.queries
    }
}

impl FromIterator<(Ipv4Prefix, MoasList)> for RegistryVerifier {
    fn from_iter<I: IntoIterator<Item = (Ipv4Prefix, MoasList)>>(iter: I) -> Self {
        RegistryVerifier {
            records: iter.into_iter().collect(),
            queries: 0,
        }
    }
}

/// A DNS-backed verifier holding `MOASRR` records, with imperfect
/// availability.
///
/// §2 and §4.4 note the circular dependency: "DNS operations rely on the
/// routing to function correctly". `availability` is the probability a
/// lookup succeeds; failed lookups return `None` and are counted, letting
/// ablations quantify how much the mechanism degrades when its resolver is
/// partly unreachable (as it would be during the very incidents it guards
/// against).
///
/// # Example
///
/// ```
/// use bgp_types::{Asn, MoasList};
/// use moas_core::{DnsMoasVerifier, OriginVerifier};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut dns = DnsMoasVerifier::new(1.0, 7); // always reachable
/// dns.register("208.8.0.0/16".parse()?, MoasList::implicit(Asn(4)));
/// assert!(dns.valid_origins("208.8.0.0/16".parse()?).is_some());
/// assert_eq!(dns.failed_lookups(), 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DnsMoasVerifier {
    records: BTreeMap<Ipv4Prefix, MoasList>,
    availability: f64,
    rng: SmallRng,
    queries: u64,
    failures: u64,
}

impl DnsMoasVerifier {
    /// Creates a DNS verifier with the given lookup success probability
    /// (clamped to `[0, 1]`) and RNG seed.
    #[must_use]
    pub fn new(availability: f64, seed: u64) -> Self {
        DnsMoasVerifier {
            records: BTreeMap::new(),
            availability: availability.clamp(0.0, 1.0),
            rng: sim_engine::rng::from_seed(seed),
            queries: 0,
            failures: 0,
        }
    }

    /// Publishes a `MOASRR` record for a prefix.
    pub fn register(&mut self, prefix: Ipv4Prefix, origins: MoasList) {
        self.records.insert(prefix, origins);
    }

    /// Lookups that failed because the resolver was unreachable.
    #[must_use]
    pub fn failed_lookups(&self) -> u64 {
        self.failures
    }
}

impl OriginVerifier for DnsMoasVerifier {
    fn valid_origins(&mut self, prefix: Ipv4Prefix) -> Option<MoasList> {
        self.queries += 1;
        if !sim_engine::rng::coin(&mut self.rng, self.availability) {
            self.failures += 1;
            return None;
        }
        self.records.get(&prefix).cloned()
    }

    fn query_count(&self) -> u64 {
        self.queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgp_types::Asn;

    fn p() -> Ipv4Prefix {
        "208.8.0.0/16".parse().unwrap()
    }

    #[test]
    fn registry_round_trip() {
        let mut reg = RegistryVerifier::new();
        assert!(reg.is_empty());
        let list: MoasList = [Asn(1), Asn(2)].into_iter().collect();
        reg.register(p(), list.clone());
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.valid_origins(p()), Some(list.clone()));
        assert_eq!(reg.unregister(p()), Some(list));
        assert_eq!(reg.valid_origins(p()), None);
        assert_eq!(reg.query_count(), 2);
    }

    #[test]
    fn registry_from_iterator() {
        let reg: RegistryVerifier = [(p(), MoasList::implicit(Asn(4)))].into_iter().collect();
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn stale_registry_gives_wrong_answer() {
        // IRR critique: record predates the prefix moving from AS 1 to AS 2.
        let mut stale = RegistryVerifier::new();
        stale.register(p(), MoasList::implicit(Asn(1)));
        let answer = stale.valid_origins(p()).unwrap();
        assert!(
            !answer.contains(Asn(2)),
            "stale record blesses only the old origin"
        );
    }

    #[test]
    fn dns_always_available_behaves_like_registry() {
        let mut dns = DnsMoasVerifier::new(1.0, 3);
        dns.register(p(), MoasList::implicit(Asn(4)));
        for _ in 0..50 {
            assert!(dns.valid_origins(p()).is_some());
        }
        assert_eq!(dns.failed_lookups(), 0);
        assert_eq!(dns.query_count(), 50);
    }

    #[test]
    fn dns_unavailable_always_fails() {
        let mut dns = DnsMoasVerifier::new(0.0, 3);
        dns.register(p(), MoasList::implicit(Asn(4)));
        assert!(dns.valid_origins(p()).is_none());
        assert_eq!(dns.failed_lookups(), 1);
    }

    #[test]
    fn dns_partial_availability_fails_sometimes() {
        let mut dns = DnsMoasVerifier::new(0.5, 3);
        dns.register(p(), MoasList::implicit(Asn(4)));
        let ok = (0..1000)
            .filter(|_| dns.valid_origins(p()).is_some())
            .count();
        assert!((350..650).contains(&ok), "ok = {ok}");
        assert_eq!(dns.failed_lookups() as usize, 1000 - ok);
    }

    #[test]
    fn missing_record_with_available_dns_is_none_but_not_a_failure() {
        let mut dns = DnsMoasVerifier::new(1.0, 3);
        assert!(dns.valid_origins(p()).is_none());
        assert_eq!(dns.failed_lookups(), 0);
    }
}
