//! MOAS-list detection of invalid routing announcements — the paper's
//! primary contribution.
//!
//! The mechanism (§4): every AS entitled to originate a prefix attaches an
//! identical *MOAS list* to its announcements, encoded in the BGP community
//! attribute. A router that receives announcements for the same prefix whose
//! lists disagree — or whose origin is missing from its own list — has
//! detected a conflict: it raises an alarm and, after verifying the true
//! origin set (e.g. against a DNS `MOASRR` record, §4.4), stops the false
//! route from propagating.
//!
//! This crate provides:
//!
//! * [`find_conflict`] — the pure §4.2 consistency check;
//! * [`MoasMonitor`] — the mechanism plugged into the
//!   [`bgp_engine`] import/export pipeline, with configurable
//!   [`Deployment`] (full / partial / none) and community-stripping ASes
//!   (§4.3);
//! * origin verifiers ([`RegistryVerifier`], [`DnsMoasVerifier`]) for the
//!   post-alarm resolution step;
//! * attacker models ([`FalseOriginAttack`], [`SubPrefixHijack`]) matching
//!   §5's threat model and §4.3's limitations;
//! * an [`OfflineMonitor`] implementing the paper's "off-line monitoring
//!   process" deployment alternative.
//!
//! # Example: detecting the Figure 6 forgery
//!
//! ```
//! use bgp_types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
//! use moas_core::{find_conflict, ConflictKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let p: Ipv4Prefix = "208.8.0.0/16".parse()?;
//! let honest_list: MoasList = [Asn(1), Asn(2)].into_iter().collect();
//! let forged_list: MoasList = [Asn(1), Asn(2), Asn(666)].into_iter().collect();
//!
//! let valid = Route::new(p, AsPath::origination(Asn(1))).with_moas_list(honest_list);
//! let forged = Route::new(p, AsPath::origination(Asn(666))).with_moas_list(forged_list);
//!
//! let conflict = find_conflict(&forged, &[(None, valid)]).expect("must be detected");
//! assert_eq!(conflict.kind, ConflictKind::InconsistentLists);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alarm;
mod attack;
mod deployment;
mod detector;
mod monitor;
mod offline;
mod verifier;

pub use alarm::{Alarm, AlarmLog, Resolution};
pub use attack::{FalseOriginAttack, ListForgery, SubPrefixHijack};
pub use deployment::Deployment;
pub use detector::{find_conflict, Conflict, ConflictKind};
pub use monitor::{MoasConfig, MoasMonitor, UnresolvedPolicy};
pub use offline::{OfflineFinding, OfflineMonitor};
pub use verifier::{DnsMoasVerifier, OriginVerifier, RegistryVerifier};
