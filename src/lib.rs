//! # moas — Detection of Invalid Routing Announcements in the Internet
//!
//! A full reproduction of the DSN 2002 paper *"Detection of Invalid Routing
//! Announcement in the Internet"* (Zhao, Pei, Wang, Massey, Mankin, Wu,
//! Zhang): the MOAS-list mechanism that lets BGP routers distinguish
//! legitimate Multiple-Origin-AS conflicts from bogus route announcements,
//! together with every substrate the paper's evaluation depends on — an
//! AS-level BGP simulator, Route Views-style topology derivation, the §3
//! MOAS measurement study, and the §5 experiment harness.
//!
//! This facade crate re-exports the workspace's public API so applications
//! can depend on a single crate:
//!
//! * [`types`] — BGP primitives: prefixes, AS paths, communities, MOAS lists;
//! * [`sim`] — the deterministic discrete-event engine;
//! * [`topology`] — AS graphs, synthetic Internet generation, the §5.1
//!   derivation pipeline, and the canonical 25/46/63-AS topologies;
//! * [`bgp`] — the AS-level BGP protocol engine with monitor hooks;
//! * [`detection`] — the MOAS monitor, verifiers, attacker models and the
//!   offline monitor (the paper's contribution);
//! * [`measurement`] — the Figures 4-5 measurement study;
//! * [`experiments`] — the Figures 9-11 experiment harness and ablations;
//! * [`wire`] — BGP UPDATE and MRT codecs bridging the simulator and the
//!   measurement pipeline through real Route Views-style bytes;
//! * [`metrics`] — the zero-dependency observability facade the simulator
//!   and experiment drivers record into (no-op unless a recording sink is
//!   passed; see `experiments::metrics` for serialization);
//! * [`daemon`] — the MOAS-list serving daemon behind the `moas-labd`
//!   binary: HTTP validity queries, an RTR-style incremental push feed, and
//!   SLURM-style local exceptions;
//! * [`session`] — live RFC 4271 BGP sessions: the deterministic FSM, the
//!   two-peer simulation harness behind the session chaos scenarios, and
//!   the real-TCP listener/replay shells.
//!
//! # Quickstart
//!
//! Reproduce Figure 3's traffic hijack and stop it with the MOAS list:
//!
//! ```
//! use moas::bgp::Network;
//! use moas::detection::{MoasMonitor, RegistryVerifier};
//! use moas::topology::{AsGraph, AsRole};
//! use moas::types::{Asn, MoasList};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = AsGraph::new();
//! g.add_as(Asn(4), AsRole::Stub);   // legitimate origin
//! g.add_as(Asn(52), AsRole::Stub);  // attacker
//! for t in [1, 2, 3] { g.add_as(Asn(t), AsRole::Transit); }
//! for (a, b) in [(4, 2), (4, 3), (2, 1), (3, 1), (52, 1)] {
//!     g.add_link(Asn(a), Asn(b));
//! }
//!
//! let prefix = "208.8.0.0/16".parse()?;
//! let valid = MoasList::implicit(Asn(4));
//! let mut registry = RegistryVerifier::new();
//! registry.register(prefix, valid.clone());
//!
//! let mut net = Network::with_monitor(&g, MoasMonitor::full(registry));
//! net.originate(Asn(4), prefix, Some(valid));
//! net.originate(Asn(52), prefix, None); // the false origin
//! net.run()?;
//!
//! // AS 1 would adopt AS 52's shorter route under plain BGP; with the MOAS
//! // list the conflict is detected and the bogus route rejected.
//! assert_eq!(net.best_origin(Asn(1), prefix), Some(Asn(4)));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// BGP primitives ([`bgp_types`]).
pub mod types {
    pub use bgp_types::*;
}

/// Deterministic discrete-event simulation ([`sim_engine`]).
pub mod sim {
    pub use sim_engine::*;
}

/// AS-level topologies ([`as_topology`]).
pub mod topology {
    pub use as_topology::*;
}

/// The AS-level BGP protocol engine ([`bgp_engine`]).
pub mod bgp {
    pub use bgp_engine::*;
}

/// The MOAS-list detection mechanism ([`moas_core`]).
pub mod detection {
    pub use moas_core::*;
}

/// The §3 measurement study ([`route_measurement`]).
pub mod measurement {
    pub use route_measurement::*;
}

/// The §5 experiment harness ([`experiments`] crate).
pub mod experiments {
    pub use experiments::*;
}

/// RFC 4271/1997 BGP and RFC 6396 MRT wire codecs ([`bgp_wire`]).
pub mod wire {
    pub use bgp_wire::*;
}

/// Zero-dependency metrics facade ([`minimetrics`]).
pub mod metrics {
    pub use minimetrics::*;
}

/// The MOAS-list serving daemon and its clients ([`moas_daemon`]): the
/// prefix→origin-set table behind `moas-labd`'s HTTP query endpoint and
/// RTR-style push feed, plus SLURM-style local exceptions.
pub mod daemon {
    pub use moas_daemon::*;
}

/// Live RFC 4271 BGP sessions ([`bgp_session`]): the deterministic FSM
/// with retry/backoff and hold timers, the in-memory two-peer harness, and
/// the real-TCP shells behind `moas-labd --bgp` and `moas-lab
/// session-replay`.
pub mod session {
    pub use bgp_session::*;
}
