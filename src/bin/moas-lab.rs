//! `moas-lab` — command-line front end for the MOAS reproduction.
//!
//! Every figure and study in the repository is reachable from here without
//! writing code:
//!
//! ```console
//! $ moas-lab figures --quick     # Experiments 1-3 (Figures 9-11)
//! $ moas-lab measure             # The §3 study (Figures 4-5)
//! $ moas-lab topology 46         # Inspect a canonical topology
//! $ moas-lab trial --attackers 5 # One simulation run, in detail
//! $ moas-lab ablations           # §4.3 limitation studies
//! $ moas-lab overhead            # §4.3 list-size overhead
//! $ moas-lab chaos --scenario failover   # Detector accuracy under churn/faults
//! $ moas-lab export-mrt --out d.mrt   # Simulate and export MRT table dumps
//! $ moas-lab import-mrt d.mrt         # Re-analyze any IPv4 MRT table dump
//! ```

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use moas::bgp::CommunityPolicy;
use moas::detection::{Deployment, OfflineMonitor};
use moas::experiments::{
    community_policy_ablation_jobs, community_policy_ablation_metrics_jobs,
    experiment1_metrics_jobs, experiment1_sharded, experiment2_metrics_jobs, experiment2_sharded,
    experiment3_metrics_jobs, experiment3_sharded, forgery_ablation_jobs,
    forgery_ablation_metrics_jobs, measure_moas_list_overhead_jobs, moas_list_overhead,
    overhead_metrics, render_metrics_summary, run_chaos_jobs, run_chaos_metrics_jobs,
    run_chaos_sharded, run_chaos_sharded_metrics, run_deployment_sweep_jobs, run_ensemble_jobs,
    run_ensemble_metrics_jobs, run_session_chaos_jobs, run_trial, run_trial_sharded,
    stripping_ablation_jobs, stripping_ablation_metrics_jobs, subprefix_ablation_jobs,
    valley_free_ablation_jobs, ChaosConfig, ChaosScenario, EnsembleConfig, SessionChaosConfig,
    SessionChaosScenario, SweepConfig, TrialConfig, WireModel,
};
use moas::measurement::{
    daily_moas_counts, generate_timeline, median, MeasurementSummary, OriginEventTracker,
    TimelineConfig,
};
use moas::metrics::MetricsSnapshot;
use moas::topology::paper::PaperTopology;
use moas::topology::GraphMetrics;
use moas::types::{AsPath, Asn, Ipv4Prefix, MoasList, Route, Update};
use moas::wire::mrt::MrtWriter;
use moas::wire::{export_rib_snapshot, export_update_stream, import_table_dumps, DailyDumpStream};

const USAGE: &str = "\
moas-lab — reproduction of 'Detection of Invalid Routing Announcement in the Internet' (DSN 2002)

USAGE:
    moas-lab <COMMAND> [OPTIONS]

COMMANDS:
    figures [--quick] [--jobs N] [--shards N]
                                    Regenerate Figures 9-11 (default: full paper protocol)
    measure [--days N]              Run the §3 measurement study (Figures 4-5)
    topology <25|46|63>             Show a canonical experiment topology
    trial [--topology N] [--attackers N] [--origins N] [--deployment full|half|none] [--seed S]
          [--shards N]              Run one simulation trial and print the outcome
    ablations [--jobs N]            Run the §4.3 limitation studies
    overhead [--jobs N]             Measure the MOAS-list table overhead
    chaos --scenario NAME [--trials N] [--seed S] [--jobs N] [--shards N] [--quick] [--out FILE]
                                    Replay a fault/churn scenario (failover, origin-flap,
                                    lossy-core, session-reset, flap-storm, mrai-deferral)
                                    and report the MOAS detector's accuracy under it as JSON.
                                    Session-layer scenarios (session-hold-expiry,
                                    session-notification-storm, session-capability-mismatch,
                                    session-tcp-reset, session-corruption) replay seeded fault
                                    campaigns against live RFC 4271 FSM pairs instead and
                                    report recovery/delivery rates (same flags minus --shards)
    chaos --scenario NAME --deployment-sweep [--fractions a,b,c] ...
                                    Same scenario at several detector deployment
                                    fractions (default 0,0.25,0.5,0.75,1): accuracy
                                    vs partial deployment under churn
    ensemble [--quick] [--trials N] [--seed S] [--jobs N] [--out FILE] [--metrics FILE]
             [--dwell N] [--sibling-fraction F]
             [--community-policy propagate|strip-moas|strip-all|rewrite]
                                    Run three detectors (moas-list, flap-damping,
                                    communities-anomaly) over identical recorded trial
                                    streams: the failover / origin-flap / session-reset
                                    chaos workloads plus a long-lived legitimate MOAS
                                    workload (anycast groups, sibling pairs, CDN handoff
                                    every --dwell ticks), with a deployment sweep; one
                                    JSON report comparing false alarms, latency and
                                    misses per detector. --strip-communities is a
                                    deprecated alias for --community-policy strip-all
    metrics-summary FILE            Render a --metrics snapshot as a readable table

    figures, ablations, overhead and chaos accept --metrics FILE: write a
    JSON metrics snapshot (event counts, per-session update counters,
    convergence histograms, per-link fault stats) alongside the report.
    --jobs N defaults to the available hardware parallelism; results —
    including --metrics snapshots — are bit-identical for every N (trials
    fan out, aggregation order is fixed).
    --shards N routes execution through the deterministic sharded engine:
    the AS graph is partitioned into N engines driven in lockstep, with one
    trial at a time fanned over the worker pool (intra-trial parallelism).
    Output is bit-identical for every --shards/--jobs pair, but may break
    same-tick ties differently from the default engine.
    export-mrt --out FILE [--days N] [--topology N] [--seed S]
                                    Simulate a network and export daily RIB snapshots
                                    (and the day's update stream) as RFC 6396 MRT
    import-mrt FILE [--offline-scan] [--in-memory]
                                    Import MRT table dumps and report daily MOAS counts
                                    (streams one day at a time unless --in-memory)
    session-replay --mrt FILE --bgp ADDR [--asn N] [--hold N] [--limit N]
                                    Stream an MRT archive's routes through a live BGP
                                    session into a running moas-labd --bgp listener
                                    (RIB snapshot entries replay as announcements,
                                    BGP4MP records as-is)
    daemon-probe --http ADDR --feed ADDR [--prefix P --asn N] [--read-only]
                                    Drive a full round against a running moas-labd:
                                    status, a validity query, feed full-sync, an
                                    ingest + diff-sync + cache-reset exercise (the
                                    probe announces and withdraws 203.0.113.0/24 so
                                    the table is left unchanged), and /metrics
    help                            Show this message
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str).unwrap_or("help");
    match command {
        "figures" => figures(&args),
        "measure" => measure(&args),
        "topology" => topology(&args),
        "trial" => trial(&args),
        "ablations" => ablations(&args),
        "overhead" => overhead(&args),
        "chaos" => chaos(&args),
        "ensemble" => ensemble(&args),
        "metrics-summary" => metrics_summary(&args),
        "export-mrt" => export_mrt(&args),
        "import-mrt" => import_mrt(&args),
        "daemon-probe" => daemon_probe(&args),
        "session-replay" => session_replay(&args),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn option<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let idx = args.iter().position(|a| a == name)?;
    args.get(idx + 1)?.parse().ok()
}

/// `--jobs N`, defaulting to the available hardware parallelism.
fn jobs_option(args: &[String]) -> usize {
    option(args, "--jobs").unwrap_or_else(minipool::available_jobs)
}

/// Writes a `--metrics` snapshot as pretty JSON; reports failure on stderr.
fn write_metrics(path: &str, snapshot: &MetricsSnapshot) -> bool {
    let json = moas::experiments::json::to_string_pretty(snapshot);
    match std::fs::write(path, json + "\n") {
        Ok(()) => {
            println!("metrics snapshot written to {path}");
            true
        }
        Err(e) => {
            eprintln!("cannot write {path}: {e}");
            false
        }
    }
}

fn figures(args: &[String]) -> ExitCode {
    let config = if flag(args, "--quick") {
        SweepConfig::quick()
    } else {
        SweepConfig::paper()
    };
    let jobs = jobs_option(args);
    println!(
        "Protocol: {} runs per point, fractions {:?}, {jobs} worker thread{}\n",
        config.runs_per_point(),
        config.attacker_fractions,
        if jobs == 1 { "" } else { "s" }
    );
    if let Some(shards) = option::<usize>(args, "--shards") {
        // The sharded engine exports a different (shard-count-invariant)
        // metrics subset, so --metrics stays classic-engine-only.
        if option::<String>(args, "--metrics").is_some() {
            eprintln!("--metrics is not supported together with --shards");
            return ExitCode::FAILURE;
        }
        for origins in [1, 2] {
            println!("{}", experiment1_sharded(origins, &config, shards, jobs));
        }
        for origins in [1, 2] {
            println!("{}", experiment2_sharded(origins, &config, shards, jobs));
        }
        for topology in [PaperTopology::As46, PaperTopology::As63] {
            println!("{}", experiment3_sharded(topology, &config, shards, jobs));
        }
        return ExitCode::SUCCESS;
    }
    let mut metrics = MetricsSnapshot::new();
    for origins in [1, 2] {
        let (fig, m) = experiment1_metrics_jobs(origins, &config, jobs);
        println!("{fig}");
        metrics.merge(&m);
    }
    for origins in [1, 2] {
        let (fig, m) = experiment2_metrics_jobs(origins, &config, jobs);
        println!("{fig}");
        metrics.merge(&m);
    }
    for topology in [PaperTopology::As46, PaperTopology::As63] {
        let (fig, m) = experiment3_metrics_jobs(topology, &config, jobs);
        println!("{fig}");
        metrics.merge(&m);
    }
    if let Some(path) = option::<String>(args, "--metrics") {
        if !write_metrics(&path, &metrics) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn measure(args: &[String]) -> ExitCode {
    let mut config = TimelineConfig::paper();
    if let Some(days) = option::<u32>(args, "--days") {
        config = config.with_days(days);
    }
    println!("Generating {} daily dumps...", config.days);
    let timeline = generate_timeline(&config);
    let counts = daily_moas_counts(&timeline.dumps);
    let year = 365.min(counts.len());
    println!(
        "daily MOAS count: median {:.0} (first {year} days) -> {:.0} (last {year} days)",
        median(&counts[..year]),
        median(&counts[counts.len() - year..])
    );
    println!("{}", MeasurementSummary::compute(&timeline.dumps));
    ExitCode::SUCCESS
}

fn parse_topology(size: &str) -> Option<PaperTopology> {
    match size {
        "25" => Some(PaperTopology::As25),
        "46" => Some(PaperTopology::As46),
        "63" => Some(PaperTopology::As63),
        _ => None,
    }
}

fn topology(args: &[String]) -> ExitCode {
    let Some(topology) = args.get(1).and_then(|s| parse_topology(s)) else {
        eprintln!("usage: moas-lab topology <25|46|63>");
        return ExitCode::FAILURE;
    };
    let graph = topology.graph();
    println!("{topology} topology: {}", GraphMetrics::compute(graph));
    println!("transit ASes: {:?}", graph.transit_asns());
    println!("stub ASes:    {:?}", graph.stub_asns());
    println!("links:");
    for (a, b) in graph.links() {
        println!("  {a} <-> {b}");
    }
    ExitCode::SUCCESS
}

fn trial(args: &[String]) -> ExitCode {
    let topology = args
        .iter()
        .position(|a| a == "--topology")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| parse_topology(s))
        .unwrap_or(PaperTopology::As46);
    let graph = topology.graph();
    let attackers: usize = option(args, "--attackers").unwrap_or(2);
    let origins: usize = option(args, "--origins").unwrap_or(1);
    let seed: u64 = option(args, "--seed").unwrap_or(1);
    let deployment = match args
        .iter()
        .position(|a| a == "--deployment")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("none") => Deployment::None,
        Some("half") => {
            let asns: Vec<Asn> = graph.asns().collect();
            Deployment::sample(&asns, 0.5, seed)
        }
        _ => Deployment::Full,
    };

    let stubs = graph.stub_asns();
    let mut rng = moas::sim::rng::from_seed(seed);
    let origin_set = moas::sim::rng::sample_distinct(&mut rng, &stubs, origins);
    let candidates: Vec<Asn> = graph.asns().filter(|a| !origin_set.contains(a)).collect();
    let attacker_set = moas::sim::rng::sample_distinct(&mut rng, &candidates, attackers);

    println!("{topology} topology, {deployment}");
    println!("origins:   {origin_set:?}");
    println!("attackers: {attacker_set:?}");

    let config = TrialConfig {
        seed,
        ..TrialConfig::new(origin_set, attacker_set, deployment)
    };
    let outcome = match option::<usize>(args, "--shards") {
        Some(shards) => run_trial_sharded(graph, &config, shards, jobs_option(args))
            .expect("experiment networks always converge"),
        None => run_trial(graph, &config),
    };
    println!(
        "\n{} of {} remaining ASes adopted a false route ({:.2}%)",
        outcome.adopted_false,
        outcome.eligible,
        100.0 * outcome.adoption_fraction()
    );
    println!(
        "alarms: {} ({} confirmed, {} false); verifier queries: {}; messages: {}",
        outcome.alarms,
        outcome.confirmed_alarms,
        outcome.false_alarms,
        outcome.verifier_queries,
        outcome.messages
    );
    ExitCode::SUCCESS
}

fn ablations(args: &[String]) -> ExitCode {
    let graph = PaperTopology::As46.graph();
    let jobs = jobs_option(args);
    let metrics_path = option::<String>(args, "--metrics");
    let mut metrics = MetricsSnapshot::new();

    let sub = subprefix_ablation_jobs(graph, 10, 0xAB1, jobs);
    println!("sub-prefix hijack (full MOAS deployment):");
    println!(
        "  control-plane adoption {:.1}%, data-plane traffic capture {:.1}%, alarms {:.1}",
        sub.subprefix_adoption_pct, sub.subprefix_traffic_capture_pct, sub.subprefix_alarms
    );
    println!(
        "  same attacker on the exact prefix: {:.1}% adoption\n",
        sub.exact_prefix_adoption_pct
    );

    println!("community stripping:");
    let stripping = if metrics_path.is_some() {
        let (points, m) = stripping_ablation_metrics_jobs(graph, &[0.0, 0.25, 0.5], 8, 0xAB2, jobs);
        metrics.merge(&m);
        points
    } else {
        stripping_ablation_jobs(graph, &[0.0, 0.25, 0.5], 8, 0xAB2, jobs)
    };
    for p in stripping {
        println!(
            "  {:>3.0}% strippers: adoption {:.2}%, false alarms {:.1}, confirmed {:.1}",
            100.0 * p.stripper_fraction,
            p.mean_adoption_pct,
            p.mean_false_alarms,
            p.mean_confirmed_alarms
        );
    }

    println!("\ncommunity handling classes (all transit ASes):");
    let policy_points = if metrics_path.is_some() {
        let (points, m) = community_policy_ablation_metrics_jobs(graph, 8, 0xAB6, jobs);
        metrics.merge(&m);
        points
    } else {
        community_policy_ablation_jobs(graph, 8, 0xAB6, jobs)
    };
    for p in policy_points {
        println!(
            "  {:<12} adoption {:.2}%, false alarms {:.1}, confirmed {:.1}",
            p.policy, p.mean_adoption_pct, p.mean_false_alarms, p.mean_confirmed_alarms
        );
    }

    println!("\nlist forgery strategies:");
    let forgery = if metrics_path.is_some() {
        let (points, m) = forgery_ablation_metrics_jobs(graph, 8, 0xAB3, jobs);
        metrics.merge(&m);
        points
    } else {
        forgery_ablation_jobs(graph, 8, 0xAB3, jobs)
    };
    for p in forgery {
        println!(
            "  {:<24} adoption {:.2}%, alarms {:.1}",
            p.forgery, p.mean_adoption_pct, p.mean_alarms
        );
    }

    println!("\nvalley-free policy routing:");
    for p in valley_free_ablation_jobs(8, 0xAB5, jobs) {
        println!(
            "  {:<12} normal {:.2}% / full MOAS {:.2}% (suppressed ads {:.0})",
            p.routing, p.normal_adoption_pct, p.moas_adoption_pct, p.mean_suppressed
        );
    }
    if let Some(path) = metrics_path {
        // The snapshot covers the stripping and forgery studies (the two
        // driven through the standard trial runner).
        if !write_metrics(&path, &metrics) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Replays a fault/churn scenario and prints the detector-accuracy report.
///
/// The output deliberately omits the worker count: the report is
/// bit-identical for every `--jobs N`, and so is this command's stdout.
fn chaos(args: &[String]) -> ExitCode {
    // Session-layer scenario names route to the FSM-pair campaigns.
    if let Some(scenario) = option::<SessionChaosScenario>(args, "--scenario") {
        return session_chaos(args, scenario);
    }
    let Some(scenario) = option::<ChaosScenario>(args, "--scenario") else {
        eprintln!(
            "usage: moas-lab chaos --scenario <failover|origin-flap|lossy-core|session-reset|flap-storm|mrai-deferral\
             |session-hold-expiry|session-notification-storm|session-capability-mismatch|session-tcp-reset|session-corruption> \
             [--trials N] [--seed S] [--jobs N] [--shards N] [--quick] [--out FILE] [--metrics FILE]"
        );
        return ExitCode::FAILURE;
    };
    let mut config = if flag(args, "--quick") {
        ChaosConfig::quick(scenario)
    } else {
        ChaosConfig::new(scenario)
    };
    if let Some(trials) = option::<usize>(args, "--trials") {
        config.trials = trials;
    }
    if let Some(seed) = option::<u64>(args, "--seed") {
        config.seed = seed;
    }

    if flag(args, "--deployment-sweep") {
        return chaos_deployment_sweep(args, &config);
    }

    let shards = option::<usize>(args, "--shards");
    let report = match (option::<String>(args, "--metrics"), shards) {
        (Some(path), Some(shards)) => {
            let (report, metrics) = run_chaos_sharded_metrics(&config, shards, jobs_option(args));
            if !write_metrics(&path, &metrics) {
                return ExitCode::FAILURE;
            }
            report
        }
        (Some(path), None) => {
            let (report, metrics) = run_chaos_metrics_jobs(&config, jobs_option(args));
            if !write_metrics(&path, &metrics) {
                return ExitCode::FAILURE;
            }
            report
        }
        (None, Some(shards)) => run_chaos_sharded(&config, shards, jobs_option(args)),
        (None, None) => run_chaos_jobs(&config, jobs_option(args)),
    };
    let json = report.to_json();
    println!(
        "scenario {}: {} trials, seed {:#x}",
        report.scenario, report.trials, report.seed
    );
    println!(
        "false alarms: rate {:.3}, mean {:.2} per churn-only trial",
        report.false_alarm_rate, report.mean_false_alarms
    );
    println!(
        "detection: {} trials detected, missed rate {:.3}, mean latency {:.1} ticks",
        report.detected_trials, report.missed_detection_rate, report.mean_detection_latency_ticks
    );
    println!(
        "oscillation: {} trials (mean cycle {:.1} events)",
        report.oscillating_trials, report.mean_cycle_len
    );
    println!(
        "faults per trial: {:.1} dropped, {:.1} corrupted, {:.1} duplicated, {:.1} reordered; {:.0} messages",
        report.mean_dropped,
        report.mean_corrupted,
        report.mean_duplicated,
        report.mean_reordered,
        report.mean_messages
    );
    println!(
        "mrai: {:.1} updates deferred per churn-only trial",
        report.mean_mrai_deferred
    );
    match option::<String>(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Runs the partial-deployment sweep branch of `moas-lab chaos`: the same
/// scenario (same casts, same fault plans) at several detector deployment
/// fractions, reporting accuracy vs coverage.
fn chaos_deployment_sweep(args: &[String], config: &ChaosConfig) -> ExitCode {
    let fractions: Vec<f64> = match option::<String>(args, "--fractions") {
        Some(list) => {
            let parsed: Result<Vec<f64>, _> = list.split(',').map(str::parse).collect();
            match parsed {
                Ok(f) if !f.is_empty() && f.iter().all(|x| (0.0..=1.0).contains(x)) => f,
                _ => {
                    eprintln!("--fractions must be comma-separated values in 0..=1");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => moas::experiments::DEPLOYMENT_SWEEP_FRACTIONS.to_vec(),
    };

    let sweep = run_deployment_sweep_jobs(config, &fractions, jobs_option(args));
    println!(
        "scenario {}: {} trials per point, seed {:#x}",
        sweep.scenario, sweep.trials, sweep.seed
    );
    println!("deployment  false-alarm  missed   detected  latency(ticks)");
    for point in &sweep.points {
        let r = &point.report;
        println!(
            "   {:>5.0}%       {:>6.3}   {:>6.3}   {:>3}/{:<3}   {:>8.1}",
            100.0 * point.deployment_fraction,
            r.false_alarm_rate,
            r.missed_detection_rate,
            r.detected_trials,
            r.trials,
            r.mean_detection_latency_ticks
        );
    }
    match option::<String>(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, sweep.to_json() + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("sweep written to {path}");
        }
        None => println!("{}", sweep.to_json()),
    }
    ExitCode::SUCCESS
}

/// Runs the detector ensemble: three detectors replayed over identical
/// recorded trial streams across the chaos and long-lived-MOAS workloads.
///
/// Like `chaos`, the output omits the worker count: report, metrics snapshot
/// and stdout are bit-identical for every `--jobs N`.
fn ensemble(args: &[String]) -> ExitCode {
    let mut config = if flag(args, "--quick") {
        EnsembleConfig::quick()
    } else {
        EnsembleConfig::new()
    };
    if let Some(trials) = option::<usize>(args, "--trials") {
        config.trials = trials;
    }
    if let Some(seed) = option::<u64>(args, "--seed") {
        config.seed = seed;
    }
    if let Some(dwell) = option::<u64>(args, "--dwell") {
        config.dwell_ticks = dwell;
    }
    if let Some(fraction) = option::<f64>(args, "--sibling-fraction") {
        if !(0.0..=1.0).contains(&fraction) {
            eprintln!("--sibling-fraction must be within 0..=1, got {fraction}");
            return ExitCode::FAILURE;
        }
        config.sibling_fraction = fraction;
    }
    if let Some(raw) = option::<String>(args, "--community-policy") {
        match raw.parse::<CommunityPolicy>() {
            Ok(policy) => config.policy = policy,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if flag(args, "--strip-communities") {
        eprintln!(
            "warning: --strip-communities is deprecated; use --community-policy strip-all \
             (stripping is no longer binary — see `moas-lab help`)"
        );
        config.policy = CommunityPolicy::StripAll;
    }

    let report = match option::<String>(args, "--metrics") {
        Some(path) => {
            let (report, metrics) = run_ensemble_metrics_jobs(&config, jobs_option(args));
            if !write_metrics(&path, &metrics) {
                return ExitCode::FAILURE;
            }
            report
        }
        None => run_ensemble_jobs(&config, jobs_option(args)),
    };

    println!(
        "ensemble: {} trials per workload, seed {:#x}, transit policy {}",
        report.trials, report.seed, report.policy
    );
    for workload in &report.workloads {
        println!("workload {}:", workload.workload);
        for d in &workload.detectors {
            println!(
                "  {:<20} false-alarm rate {:.3} (mean {:.2}), missed {:.3}, latency {:.1} ticks ({} detected)",
                d.detector,
                d.false_alarm_rate,
                d.mean_false_alarms,
                d.missed_detection_rate,
                d.mean_detection_latency_ticks,
                d.detected_trials
            );
        }
    }
    println!("deployment sweep (failover streams):");
    for point in &report.deployment {
        for d in &point.detectors {
            println!(
                "  {:>3.0}% {:<20} missed {:.3}, false-alarm rate {:.3}",
                100.0 * point.deployment_fraction,
                d.detector,
                d.missed_detection_rate,
                d.false_alarm_rate
            );
        }
    }

    let json = report.to_json();
    match option::<String>(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

/// The prefix each stub AS originates in the exported scenario.
fn stub_prefix(index: usize) -> Ipv4Prefix {
    Ipv4Prefix::new((10 << 24) | ((index as u32 + 1) << 16), 16)
}

/// Simulates a multihoming scenario on a canonical topology and exports one
/// MRT table snapshot per day, collected at every transit AS. Each stub
/// originates its own prefix; every day a seeded subset of stubs is also
/// announced by a partner stub (legitimate multihoming), so the collector
/// observes a fluctuating daily MOAS population — the shape of Figure 4.
fn export_mrt(args: &[String]) -> ExitCode {
    let Some(path) = option::<String>(args, "--out") else {
        eprintln!(
            "usage: moas-lab export-mrt --out FILE [--days N] [--topology 25|46|63] [--seed S]"
        );
        return ExitCode::FAILURE;
    };
    let days: u32 = option(args, "--days").unwrap_or(10);
    let seed: u64 = option(args, "--seed").unwrap_or(7);
    let topology = args
        .iter()
        .position(|a| a == "--topology")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| parse_topology(s))
        .unwrap_or(PaperTopology::As46);
    let graph = topology.graph();
    let vantages = graph.transit_asns();
    let stubs = graph.stub_asns();

    let file = match File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot create {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut writer = MrtWriter::new(BufWriter::new(file));
    let mut previous_active: Vec<bool> = vec![false; stubs.len()];

    for day in 0..days {
        // Which stubs are multihomed today (announced by a partner too).
        let mut rng = moas::sim::rng::from_seed(moas::sim::rng::derive_seed(seed, u64::from(day)));
        let active: Vec<bool> = (0..stubs.len())
            .map(|_| moas::sim::rng::coin(&mut rng, 0.3))
            .collect();

        let mut net = moas::bgp::Network::new(graph);
        for (i, &stub) in stubs.iter().enumerate() {
            let prefix = stub_prefix(i);
            if active[i] {
                let partner = stubs[(i + 1) % stubs.len()];
                let mut list = MoasList::implicit(stub);
                list.insert(partner);
                net.originate(stub, prefix, Some(list.clone()));
                net.originate(partner, prefix, Some(list));
            } else {
                net.originate(stub, prefix, None);
            }
        }
        if net.run().is_err() {
            eprintln!("day {day}: simulation failed to converge");
            return ExitCode::FAILURE;
        }

        let summary = match export_rib_snapshot(&mut writer, &net, &vantages, day) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("day {day}: export failed: {e}");
                return ExitCode::FAILURE;
            }
        };

        // The day's update stream: multihoming changes since yesterday.
        let mut updates: Vec<(Asn, Update)> = Vec::new();
        for (i, &stub) in stubs.iter().enumerate() {
            let partner = stubs[(i + 1) % stubs.len()];
            let prefix = stub_prefix(i);
            if active[i] && !previous_active[i] {
                let mut list = MoasList::implicit(stub);
                list.insert(partner);
                let route = Route::new(prefix, AsPath::origination(partner)).with_moas_list(list);
                updates.push((partner, Update::announce(route)));
            } else if !active[i] && previous_active[i] {
                updates.push((partner, Update::withdraw(prefix)));
            }
        }
        if let Err(e) = export_update_stream(&mut writer, day, updates.iter().map(|(a, u)| (*a, u)))
        {
            eprintln!("day {day}: update export failed: {e}");
            return ExitCode::FAILURE;
        }
        previous_active = active;

        // The collector's view of today, for comparison with import-mrt.
        let mut moas = 0usize;
        let mut prefixes = 0usize;
        for i in 0..stubs.len() {
            let prefix = stub_prefix(i);
            let origins: std::collections::BTreeSet<Asn> = vantages
                .iter()
                .filter_map(|&v| net.best_route(v, prefix))
                .filter_map(|r| r.origin_as())
                .collect();
            if !origins.is_empty() {
                prefixes += 1;
            }
            if origins.len() > 1 {
                moas += 1;
            }
        }
        println!(
            "day {day}: {prefixes} prefixes, {moas} moas, {} rib entries, {} updates",
            summary.entries,
            updates.len()
        );
    }

    match writer.finish() {
        Ok(_) => {
            println!("wrote {days} daily snapshots to {path}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot finish {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Imports an MRT table-dump stream and reports the measurement pipeline's
/// view of it: per-day MOAS counts, origin-change events, and (with
/// `--offline-scan`) the offline monitor's findings.
///
/// Streams the archive one day at a time (`DailyDumpStream`), so archives
/// far larger than memory import in constant space; `--in-memory` uses the
/// whole-archive importer instead (same output — it exists to cross-check
/// the streaming path).
fn import_mrt(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: moas-lab import-mrt FILE [--offline-scan] [--in-memory]");
        return ExitCode::FAILURE;
    };
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let offline_scan = flag(args, "--offline-scan");
    if flag(args, "--in-memory") {
        return import_mrt_in_memory(path, file, offline_scan);
    }

    let mut stream = DailyDumpStream::new(BufReader::new(file)).collect_routes(offline_scan);
    let monitor = OfflineMonitor::new();
    let mut tracker = OriginEventTracker::new();
    let mut day_events = Vec::new();
    let mut days = 0usize;
    let mut rib_entries = 0usize;
    let mut event_count = 0usize;
    let mut findings = 0usize;
    let start = std::time::Instant::now();
    loop {
        match stream.next_day() {
            Ok(Some(day)) => {
                println!(
                    "day {}: {} prefixes, {} moas",
                    day.day,
                    day.dump.prefix_count(),
                    day.dump.moas_count()
                );
                days += 1;
                rib_entries += day.rib_entries;
                tracker.advance(&day.dump, &mut day_events);
                event_count += day_events.len();
                day_events.clear();
                if offline_scan {
                    findings += monitor.scan(day.routes).len();
                }
            }
            Ok(None) => break,
            Err(e) => {
                eprintln!("cannot import {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let mib = stream.bytes_read() as f64 / (1024.0 * 1024.0);
    println!(
        "total: {days} dumps, {rib_entries} routes, {event_count} origin events, {} skipped BGP4MP records",
        stream.skipped_messages()
    );
    // Timing diagnostic on stderr: stdout must stay byte-identical to the
    // --in-memory cross-check path.
    eprintln!(
        "throughput: {mib:.1} MiB in {elapsed:.2}s ({:.1} MiB/s, {:.0} routes/s)",
        mib / elapsed,
        rib_entries as f64 / elapsed
    );
    if offline_scan {
        println!("offline monitor: {findings} findings across {days} days");
    }
    ExitCode::SUCCESS
}

/// The pre-streaming import path: loads the whole archive before reporting.
fn import_mrt_in_memory(path: &str, file: File, offline_scan: bool) -> ExitCode {
    let imported = match import_table_dumps(BufReader::new(file)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot import {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    for dump in &imported.dumps {
        println!(
            "day {}: {} prefixes, {} moas",
            dump.day(),
            dump.prefix_count(),
            dump.moas_count()
        );
    }
    let events = moas::measurement::origin_events(&imported.dumps);
    println!(
        "total: {} dumps, {} routes, {} origin events, {} skipped BGP4MP records",
        imported.dumps.len(),
        imported.routes.len(),
        events.len(),
        imported.skipped_messages
    );

    if offline_scan {
        let monitor = OfflineMonitor::new();
        let mut findings = 0usize;
        for dump in &imported.dumps {
            let day = dump.day();
            let routes = imported
                .routes
                .iter()
                .filter(|(d, _)| *d == day)
                .map(|(_, r)| r.clone());
            findings += monitor.scan(routes).len();
        }
        println!(
            "offline monitor: {findings} findings across {} days",
            imported.dumps.len()
        );
    }
    ExitCode::SUCCESS
}

/// Drives one full round against a running `moas-labd` (see USAGE). Every
/// step prints what it observed; any protocol or I/O failure aborts with a
/// non-zero exit, so CI can use this as the daemon smoke test.
fn daemon_probe(args: &[String]) -> ExitCode {
    let (Some(http), Some(feed)) = (
        option::<std::net::SocketAddr>(args, "--http"),
        option::<std::net::SocketAddr>(args, "--feed"),
    ) else {
        eprintln!(
            "usage: moas-lab daemon-probe --http HOST:PORT --feed HOST:PORT \
             [--prefix P --asn N] [--read-only]"
        );
        return ExitCode::FAILURE;
    };
    match daemon_probe_run(args, http, feed) {
        Ok(()) => {
            println!("daemon-probe OK");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("daemon-probe failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn daemon_probe_run(
    args: &[String],
    http: std::net::SocketAddr,
    feed: std::net::SocketAddr,
) -> std::io::Result<()> {
    use moas::daemon::client::{ConnectOptions, FeedClient, HttpClient, SyncOutcome};

    let fail = |message: String| std::io::Error::new(std::io::ErrorKind::InvalidData, message);
    // Fail fast on a dead or wedged daemon: bounded attempts with a short
    // connect budget, so CI gets a typed refusal instead of a hang.
    let probe_opts = ConnectOptions {
        connect_timeout: std::time::Duration::from_secs(2),
        io_timeout: std::time::Duration::from_secs(10),
        max_attempts: option::<u32>(args, "--connect-attempts").unwrap_or(3),
        ..ConnectOptions::default()
    };
    let mut web = HttpClient::connect_with_retry(http, &probe_opts)?;

    let (status, body) = web.get("/status")?;
    if status != 200 {
        return Err(fail(format!("GET /status answered {status}: {body}")));
    }
    println!("status: {body}");

    if let (Some(prefix), Some(asn)) = (
        option::<String>(args, "--prefix"),
        option::<u32>(args, "--asn"),
    ) {
        let (status, body) = web.get(&format!("/validity?prefix={prefix}&asn={asn}"))?;
        if status != 200 {
            return Err(fail(format!("GET /validity answered {status}: {body}")));
        }
        println!("validity {prefix} AS{asn}: {body}");
    }

    let mut sync = FeedClient::connect_with_retry(feed, &probe_opts)?;
    let count = sync.reset_sync()?;
    let session = sync.session().unwrap_or_default();
    println!(
        "feed: full sync of {count} entries at serial {} (session {session})",
        sync.serial()
    );

    if !flag(args, "--read-only") {
        // Exercise the diff path with a probe-owned prefix (TEST-NET-3),
        // announced and then withdrawn so the table ends unchanged.
        let ingest = |web: &mut HttpClient, announce: bool| -> std::io::Result<()> {
            let body = format!(
                "{{\"updates\":[{{\"announce\":{announce},\"prefix\":\"203.0.113.0/24\",\"asn\":64511}}]}}"
            );
            let (status, reply) = web.post("/ingest", &body)?;
            if status != 200 {
                return Err(fail(format!("POST /ingest answered {status}: {reply}")));
            }
            Ok(())
        };
        ingest(&mut web, true)?;
        match sync.serial_sync()? {
            SyncOutcome::Diff {
                announced: 1,
                serial,
                ..
            } => {
                println!("feed: diff sync picked up the probe announce (serial {serial})");
            }
            other => return Err(fail(format!("expected a 1-announce diff, got {other:?}"))),
        }
        ingest(&mut web, false)?;
        match sync.serial_sync()? {
            SyncOutcome::Diff {
                withdrawn: 1,
                serial,
                ..
            } => {
                println!("feed: diff sync picked up the probe withdraw (serial {serial})");
            }
            other => return Err(fail(format!("expected a 1-withdraw diff, got {other:?}"))),
        }
    }

    // The reset path: a deliberately wrong session must answer CacheReset,
    // and a fresh full sync must recover.
    match sync.sync_from(session.wrapping_add(1), sync.serial())? {
        SyncOutcome::CacheReset => println!("feed: stale session correctly answered cache-reset"),
        other => return Err(fail(format!("expected a cache reset, got {other:?}"))),
    }
    let recovered = sync.reset_sync()?;
    if recovered != count {
        return Err(fail(format!(
            "recovery sync holds {recovered} entries, expected {count}"
        )));
    }

    let (status, metrics) = web.get("/metrics")?;
    if status != 200 {
        return Err(fail(format!("GET /metrics answered {status}")));
    }
    let mut parsed = 0usize;
    for line in metrics
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let mut parts = line.split_whitespace();
        let (Some(_name), Some(value), None) = (parts.next(), parts.next(), parts.next()) else {
            return Err(fail(format!("unparseable metrics line '{line}'")));
        };
        value
            .parse::<u64>()
            .map_err(|_| fail(format!("non-numeric metric value in '{line}'")))?;
        parsed += 1;
    }
    println!("metrics: {parsed} series, all parseable");
    Ok(())
}

fn overhead(args: &[String]) -> ExitCode {
    let timeline = generate_timeline(&TimelineConfig::paper().with_days(30));
    let dump = timeline.dumps.last().expect("timeline has dumps");
    let analytic = moas_list_overhead(dump, WireModel::default());
    let measured = measure_moas_list_overhead_jobs(dump, jobs_option(args));
    println!("analytic: {analytic}");
    println!("measured: {measured}");
    println!(
        "codec cross-check: added bytes agree exactly ({} == {})",
        measured.added_bytes, analytic.added_bytes
    );
    println!(
        "against a 100k-route 2001 table: {:.4}% added",
        100.0 * measured.added_bytes as f64 / (100_000.0 * 36.0)
    );
    if let Some(path) = option::<String>(args, "--metrics") {
        if !write_metrics(&path, &overhead_metrics(&measured)) {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Reads a `--metrics` snapshot back and renders it as a readable table.
fn metrics_summary(args: &[String]) -> ExitCode {
    let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: moas-lab metrics-summary FILE");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let snapshot: MetricsSnapshot = match moas::experiments::json::from_str(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", render_metrics_summary(&snapshot));
    ExitCode::SUCCESS
}

/// Runs one session-layer chaos campaign (see [`SessionChaosScenario`]).
fn session_chaos(args: &[String], scenario: SessionChaosScenario) -> ExitCode {
    let mut config = if flag(args, "--quick") {
        SessionChaosConfig::quick(scenario)
    } else {
        SessionChaosConfig::new(scenario)
    };
    if let Some(trials) = option::<usize>(args, "--trials") {
        config.trials = trials;
    }
    if let Some(seed) = option::<u64>(args, "--seed") {
        config.seed = seed;
    }
    let report = run_session_chaos_jobs(&config, jobs_option(args));
    println!(
        "scenario {}: {} trials, seed {:#x}",
        report.scenario.name(),
        report.trials,
        report.seed
    );
    println!(
        "sessions: {} established, {} recovered after the final fault",
        report.established_trials, report.recovered_trials
    );
    println!(
        "faults: {} injected, recovery rate {:.3}, update delivery rate {:.3}",
        report.total_faults, report.recovery_rate, report.delivery_rate
    );
    println!(
        "per trial: {:.1} establishments, {:.1} notifications sent, {:.1} received, \
         {:.1} hold expirations, {:.1} decode errors, {:.0} virtual ms",
        report.mean_establishments,
        report.mean_notifications_sent,
        report.mean_notifications_received,
        report.mean_hold_expirations,
        report.mean_decode_errors,
        report.mean_virtual_ms
    );
    let json = report.to_json();
    match option::<String>(args, "--out") {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, json + "\n") {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            println!("report written to {path}");
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}

/// Streams an MRT archive through a live BGP session into a running
/// `moas-labd --bgp` listener.
fn session_replay(args: &[String]) -> ExitCode {
    use moas::session::{replay_updates, ReplayConfig, SessionConfig};
    use moas::wire::bgp::UpdateMessage;
    use moas::wire::mrt::{MrtBody, MrtReader};

    let (Some(path), Some(addr)) = (
        option::<String>(args, "--mrt"),
        option::<std::net::SocketAddr>(args, "--bgp"),
    ) else {
        eprintln!(
            "usage: moas-lab session-replay --mrt FILE --bgp HOST:PORT [--asn N] [--hold N] [--limit N]"
        );
        return ExitCode::FAILURE;
    };
    let file = match File::open(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot open {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut session = SessionConfig::new(
        Asn(option::<u32>(args, "--asn").unwrap_or(65_000)),
        0x7F00_00FE,
    );
    if let Some(hold) = option::<u16>(args, "--hold") {
        session.hold_time = hold;
    }
    let limit = option::<u64>(args, "--limit").unwrap_or(u64::MAX);

    // Pull UPDATEs out of the archive lazily: BGP4MP records replay
    // verbatim; RIB snapshot entries become one announcement per (prefix,
    // first peer entry). Decode errors end the stream with a diagnostic.
    let mut reader = MrtReader::new(BufReader::new(file));
    let mut records: u64 = 0;
    let mut produced: u64 = 0;
    let mut read_error: Option<String> = None;
    let mut updates = std::iter::from_fn(|| loop {
        if produced >= limit {
            return None;
        }
        match reader.next_record() {
            Ok(Some(record)) => {
                records += 1;
                match record.body {
                    MrtBody::Bgp4mpMessage(msg) => {
                        produced += 1;
                        return Some(msg.message);
                    }
                    MrtBody::RibIpv4Unicast(rib) => {
                        if let Some(entry) = rib.entries.into_iter().next() {
                            produced += 1;
                            return Some(UpdateMessage {
                                withdrawn: Vec::new(),
                                attrs: Some(entry.attrs),
                                nlri: vec![rib.prefix],
                            });
                        }
                    }
                    MrtBody::PeerIndexTable(_) | MrtBody::RibIpv6Unicast(_) => {}
                }
            }
            Ok(None) => return None,
            Err(e) => {
                read_error = Some(e.to_string());
                return None;
            }
        }
    });

    match replay_updates(addr, &ReplayConfig::new(session), &mut updates) {
        Ok(report) => {
            if let Some(e) = &read_error {
                eprintln!("archive truncated: {e}");
            }
            println!(
                "session-replay OK: {} MRT records, {} updates sent over {} connection attempt(s)",
                records, report.updates_sent, report.connects
            );
            println!(
                "session: {} establishment(s), {} keepalives sent, {} received, {} notifications received",
                report.stats.established,
                report.stats.keepalives_sent,
                report.stats.keepalives_received,
                report.stats.notifications_received
            );
            if read_error.is_some() {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        Err(e) => {
            eprintln!("session-replay failed: {e}");
            ExitCode::FAILURE
        }
    }
}
