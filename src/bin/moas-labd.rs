//! `moas-labd` — the MOAS-list serving daemon.
//!
//! Loads (or derives) a prefix→origin-set table and serves it over loopback
//! TCP on two interfaces:
//!
//! * an HTTP/1.1 query endpoint — `GET /validity?prefix=P&asn=A`,
//!   `GET /metrics`, `GET /status`, plus `POST /ingest`,
//!   `POST /reload-exceptions` and `POST /shutdown` control routes;
//! * an RTR-style push feed — full cache transfers, per-serial diffs from a
//!   bounded delta ring, and serial notifies on every table change.
//!
//! ```console
//! $ moas-labd --moas-list lists.json                 # serve a JSON list file
//! $ moas-labd --mrt archive.mrt                      # derive from an MRT archive
//! $ moas-labd --moas-list l.json --exceptions s.json # with SLURM-style overrides
//! $ moas-labd --moas-list l.json --http 127.0.0.1:0 --feed 127.0.0.1:0
//! ```
//!
//! The bound addresses are printed on startup (one `listening http=… feed=…`
//! line), so scripts can bind port 0 and scrape the real ports. The daemon
//! runs until `POST /shutdown` (or SIGKILL); `moas-lab daemon-probe` drives
//! a full query/diff-sync/reset round against a running instance.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;
use std::time::Duration;

use moas::daemon::{Daemon, DaemonConfig, ExceptionSet, OriginTable};

const USAGE: &str = "\
moas-labd — MOAS-list serving daemon (HTTP queries + RTR-style push feed)

USAGE:
    moas-labd (--moas-list FILE | --mrt FILE) [OPTIONS]

OPTIONS:
    --moas-list FILE    Load the table from a JSON MOAS-list file
                        ({ \"moasLists\": [{ \"prefix\": \"10.0.0.0/16\", \"origins\": [65001, 65002] }] })
    --mrt FILE          Derive the table from an MRT table-dump archive
                        (all days merged; MOAS lists carried in communities win)
    --exceptions FILE   SLURM-style exception file applied to verdicts
                        (hot-reloadable via POST /reload-exceptions)
    --http ADDR         HTTP bind address       [default: 127.0.0.1:8323]
    --feed ADDR         Feed bind address       [default: 127.0.0.1:8324]
    --bgp ADDR          Also listen for live BGP sessions on ADDR; decoded
                        UPDATEs are ingested like POST /ingest batches
    --bgp-asn N         Local ASN in the BGP OPEN  [default: 64512]
    --session N         Feed session id         [default: derived from table]
    --ring N            Delta-ring capacity     [default: 256]
    --max-conns N       Per-listener connection cap [default: 64]
    --help              Show this message
";

fn option<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    let idx = args.iter().position(|a| a == name)?;
    args.get(idx + 1).map(String::as_str)
}

fn load_table(args: &[String], session: u16) -> Result<OriginTable, String> {
    match (option(args, "--moas-list"), option(args, "--mrt")) {
        (Some(_), Some(_)) => Err("--moas-list and --mrt are mutually exclusive".into()),
        (Some(path), None) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            OriginTable::from_json(&text, session).map_err(|e| format!("cannot parse {path}: {e}"))
        }
        (None, Some(path)) => {
            let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
            OriginTable::from_mrt(BufReader::new(file), session)
                .map_err(|e| format!("cannot import {path}: {e}"))
        }
        (None, None) => Err("one of --moas-list or --mrt is required".into()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") || args.is_empty() {
        println!("{USAGE}");
        return if args.is_empty() {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        };
    }

    let session: u16 = match option(&args, "--session").map(str::parse).transpose() {
        Ok(s) => s.unwrap_or(1),
        Err(_) => {
            eprintln!("--session must be a u16");
            return ExitCode::FAILURE;
        }
    };
    let table = match load_table(&args, session) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("{e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let exceptions = match option(&args, "--exceptions") {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match ExceptionSet::from_json(&text) {
                Ok(set) => set,
                Err(e) => {
                    eprintln!("cannot parse {path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => ExceptionSet::empty(),
    };

    let mut config = DaemonConfig::loopback();
    config.http_addr = option(&args, "--http")
        .unwrap_or("127.0.0.1:8323")
        .to_string();
    config.feed_addr = option(&args, "--feed")
        .unwrap_or("127.0.0.1:8324")
        .to_string();
    if let Some(ring) = option(&args, "--ring") {
        match ring.parse() {
            Ok(n) => config.delta_ring_capacity = n,
            Err(_) => {
                eprintln!("--ring must be a number");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(cap) = option(&args, "--max-conns") {
        match cap.parse() {
            Ok(n) => config.max_connections = n,
            Err(_) => {
                eprintln!("--max-conns must be a number");
                return ExitCode::FAILURE;
            }
        }
    }
    config.exceptions = exceptions;
    config.bgp_addr = option(&args, "--bgp").map(str::to_string);
    if let Some(asn) = option(&args, "--bgp-asn") {
        match asn.parse() {
            Ok(n) => config.bgp_asn = moas::types::Asn(n),
            Err(_) => {
                eprintln!("--bgp-asn must be a 32-bit AS number");
                return ExitCode::FAILURE;
            }
        }
    }

    let daemon = match Daemon::start(config, table) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("cannot start daemon: {e}");
            return ExitCode::FAILURE;
        }
    };
    match daemon.bgp_addr() {
        Some(bgp) => println!(
            "listening http={} feed={} bgp={bgp}",
            daemon.http_addr(),
            daemon.feed_addr()
        ),
        None => println!(
            "listening http={} feed={}",
            daemon.http_addr(),
            daemon.feed_addr()
        ),
    }

    // Serve until a client posts /shutdown. The listeners run on their own
    // threads; this thread only watches the flag.
    while !daemon.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    println!("shutdown requested; draining connections");
    daemon.shutdown();
    ExitCode::SUCCESS
}
