//! Calibration checks: the synthetic Route Views timeline must reproduce the
//! §3.1 statistics the paper reports (within tolerance bands).

use moas::measurement::{
    daily_moas_counts, duration_histogram, generate_timeline, median, FaultEvent,
    MeasurementSummary, TimelineConfig,
};
use moas::types::Asn;

fn full_timeline() -> &'static moas::measurement::GeneratedTimeline {
    static CACHE: std::sync::OnceLock<moas::measurement::GeneratedTimeline> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| generate_timeline(&TimelineConfig::paper()))
}

/// The duration-statistics period (Figure 5): the 1998 fault only; see the
/// fig5 bench and DESIGN.md for why the two-day 2001 event is excluded from
/// the one-day calibration.
fn duration_timeline() -> &'static moas::measurement::GeneratedTimeline {
    static CACHE: std::sync::OnceLock<moas::measurement::GeneratedTimeline> =
        std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        generate_timeline(&TimelineConfig::paper().with_events(vec![FaultEvent {
            day: 150,
            faulty_as: Asn(8584),
            prefix_count: 1135,
            duration_days: 1,
        }]))
    })
}

#[test]
fn fig4_daily_medians_match_paper() {
    let timeline = full_timeline();
    let counts = daily_moas_counts(&timeline.dumps);
    assert_eq!(counts.len(), 1279);

    // Paper: median 683 in 1998 and 1294 in 2001.
    let median_1998 = median(&counts[0..365]);
    let median_2001 = median(&counts[1096..1279]);
    assert!(
        (580.0..790.0).contains(&median_1998),
        "1998 median {median_1998}"
    );
    assert!(
        (1100.0..1450.0).contains(&median_2001),
        "2001 median {median_2001}"
    );
}

#[test]
fn fig4_fault_spikes_on_the_right_days() {
    let timeline = full_timeline();
    let counts = daily_moas_counts(&timeline.dumps);

    // 1998-04-07 (day 150): ~1135 extra cases over the ~700 background.
    assert!(
        counts[150] > counts[149] + 900,
        "day-150 spike: {} vs {}",
        counts[150],
        counts[149]
    );
    // 2001-04-06 (day 1245): the largest spike of the whole period, with the
    // faulty AS involved in roughly 5532 of ~6627 cases. The modeled event
    // spans two dumps, so the peak may fall on either day.
    let summary = MeasurementSummary::compute(&timeline.dumps);
    assert!(
        summary.peak_day == 1245 || summary.peak_day == 1246,
        "largest spike day {}",
        summary.peak_day
    );
    assert!(
        (6000..7300).contains(&summary.peak_count),
        "peak count {} (paper: 6627)",
        summary.peak_count
    );
    let event_share = 5532.0 / summary.peak_count as f64;
    assert!(
        (0.75..0.92).contains(&event_share),
        "event share {event_share:.2} (paper: 0.835)"
    );
}

#[test]
fn fig5_one_day_statistics_match_paper() {
    let summary = MeasurementSummary::compute(&duration_timeline().dumps);
    // Paper: 1373 (35.9%) of all cases lasted one day...
    assert!(
        (0.28..0.45).contains(&summary.one_day_fraction),
        "one-day fraction {:.3} (paper: 0.359)",
        summary.one_day_fraction
    );
    // ...and 82.7% of those were the 1998-04-07 fault.
    let spike_share = summary.one_day_spike_fraction();
    assert!(
        (0.70..0.92).contains(&spike_share),
        "spike share {spike_share:.3} (paper: 0.827)"
    );
    assert_eq!(summary.peak_day, 150);
}

#[test]
fn fig5_histogram_has_short_mode_and_long_tail() {
    let timeline = duration_timeline();
    let histogram = duration_histogram(&timeline.dumps);
    let one_day = histogram.get(&1).copied().unwrap_or(0);
    // Most cases are short-lived...
    let longest = *histogram.keys().max().unwrap();
    assert!(one_day > 1000, "one-day cases {one_day}");
    // ...but some last for a large part of the period (the paper's
    // long-lasting multihoming cases).
    assert!(longest > 600, "longest case {longest} days");
}

#[test]
fn origin_set_size_split_matches_section31() {
    let summary = MeasurementSummary::compute(&duration_timeline().dumps);
    let two = summary
        .origin_size_fractions
        .get(&2)
        .copied()
        .unwrap_or(0.0);
    let three = summary
        .origin_size_fractions
        .get(&3)
        .copied()
        .unwrap_or(0.0);
    // Paper: 96.14% two-origin, 2.7% three-origin. The fault events are
    // all two-origin, pushing `two` slightly above the multihoming-only rate.
    assert!((0.93..0.99).contains(&two), "two-origin fraction {two:.4}");
    assert!(three < 0.05, "three-origin fraction {three:.4}");
    // 99% of MOAS cases involve 3 or fewer origins.
    let up_to_three: f64 = summary
        .origin_size_fractions
        .iter()
        .filter(|(&size, _)| size <= 3)
        .map(|(_, &f)| f)
        .sum();
    assert!(up_to_three > 0.99, "≤3-origin fraction {up_to_three:.4}");
}

#[test]
fn simultaneous_moas_stays_under_3000_outside_fault_days() {
    // §4.3: "in today's Internet less than 3,000 routes originate from
    // multiple ASes" — the background (non-event) activity respects that.
    let timeline = full_timeline();
    let counts = daily_moas_counts(&timeline.dumps);
    for (day, &count) in counts.iter().enumerate() {
        if ![150usize, 1245, 1246].contains(&day) {
            assert!(count < 3000, "day {day} has {count} simultaneous cases");
        }
    }
}

#[test]
fn update_stream_onsets_spike_on_fault_days() {
    use moas::measurement::daily_moas_onsets;
    let timeline = full_timeline();
    let onsets = daily_moas_onsets(&timeline.dumps);
    let fault98 = onsets.get(&150).copied().unwrap_or(0);
    let fault01 = onsets.get(&1245).copied().unwrap_or(0);
    assert!(fault98 >= 1000, "1998 onset burst {fault98}");
    assert!(fault01 >= 5000, "2001 onset burst {fault01}");
    // A typical quiet day sees only churn/jitter-scale onsets.
    let quiet = onsets.get(&400).copied().unwrap_or(0);
    assert!(quiet < 100, "quiet-day onsets {quiet}");
}

#[test]
fn cause_classifier_separates_faults_from_multihoming_at_paper_scale() {
    use moas::measurement::{classify, score, ClassifierConfig};
    let timeline = duration_timeline();
    let classified = classify(&timeline.dumps, &ClassifierConfig::default());
    let s = score(&classified, &timeline.cases);
    assert!(s.total > 3000, "scored {} cases", s.total);
    assert!(s.accuracy() > 0.9, "{s}");
    assert!(s.invalid_recall > 0.9, "{s}");
    assert!(s.invalid_precision > 0.9, "{s}");
}

#[test]
fn ground_truth_and_analysis_agree_on_durations() {
    let timeline = duration_timeline();
    let histogram = duration_histogram(&timeline.dumps);
    let analyzed_total: usize = histogram.values().sum();
    assert_eq!(analyzed_total, timeline.cases.len());
    let analyzed_days: usize = histogram.iter().map(|(&d, &n)| d as usize * n).sum();
    let truth_days: usize = timeline.cases.iter().map(|c| c.duration() as usize).sum();
    assert_eq!(analyzed_days, truth_days);
}
