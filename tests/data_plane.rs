//! Data-plane integration: forwarding over converged networks, with and
//! without the MOAS mechanism, on the canonical topologies.

use std::collections::BTreeSet;

use moas::bgp::{ForwardingPlane, Network};
use moas::detection::{FalseOriginAttack, ListForgery, MoasMonitor, RegistryVerifier};
use moas::topology::paper::PaperTopology;
use moas::types::{Asn, Ipv4Prefix, MoasList};

fn prefix() -> Ipv4Prefix {
    "208.8.0.0/16".parse().unwrap()
}

#[test]
fn all_traffic_reaches_the_origin_without_attackers() {
    let graph = PaperTopology::As46.graph();
    let victim = graph.stub_asns()[0];
    let mut net = Network::new(graph);
    net.originate(victim, prefix(), None);
    net.run().unwrap();
    let plane = ForwardingPlane::snapshot(&net);
    for asn in graph.asns() {
        let outcome = plane.trace(asn, prefix().network());
        assert!(outcome.delivered_to(victim), "{asn}: {outcome}");
    }
}

#[test]
fn forwarding_never_loops_after_convergence() {
    // Across all three topologies with an active exact-prefix attack, FIB
    // walks must terminate at someone — never loop.
    for topology in PaperTopology::ALL {
        let graph = topology.graph();
        let stubs = graph.stub_asns();
        let victim = stubs[0];
        let attacker = stubs[stubs.len() / 2];
        let mut net = Network::new(graph);
        net.originate(victim, prefix(), None);
        net.run().unwrap();
        net.originate(attacker, prefix(), None);
        net.run().unwrap();
        let plane = ForwardingPlane::snapshot(&net);
        for asn in graph.asns() {
            let outcome = plane.trace(asn, prefix().network());
            assert!(
                !matches!(outcome, moas::bgp::ForwardOutcome::Looped { .. }),
                "{topology} {asn}: {outcome}"
            );
        }
    }
}

#[test]
fn moas_detection_restores_data_plane_delivery() {
    let graph = PaperTopology::As46.graph();
    let stubs = graph.stub_asns();
    let victim = stubs[1];
    let attacker = stubs[stubs.len() - 2];
    let valid = MoasList::implicit(victim);
    let exclude: BTreeSet<Asn> = [attacker].into_iter().collect();

    // Plain BGP: some traffic lands at the attacker.
    let mut plain = Network::new(graph);
    plain.originate(victim, prefix(), Some(valid.clone()));
    plain.run().unwrap();
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut plain, attacker, prefix(), &valid);
    plain.run().unwrap();
    let (plain_ok, plain_stolen, _) =
        ForwardingPlane::snapshot(&plain).capture_census(prefix().network(), victim, &exclude);

    // Full MOAS detection: delivery to the victim can only improve.
    let mut registry = RegistryVerifier::new();
    registry.register(prefix(), valid.clone());
    let mut guarded = Network::with_monitor(graph, MoasMonitor::full(registry));
    guarded.originate(victim, prefix(), Some(valid.clone()));
    guarded.run().unwrap();
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(
        &mut guarded,
        attacker,
        prefix(),
        &valid,
    );
    guarded.run().unwrap();
    let (guarded_ok, guarded_stolen, _) =
        ForwardingPlane::snapshot(&guarded).capture_census(prefix().network(), victim, &exclude);

    assert!(guarded_ok >= plain_ok, "{guarded_ok} !>= {plain_ok}");
    assert!(
        guarded_stolen <= plain_stolen,
        "{guarded_stolen} !<= {plain_stolen}"
    );
    assert_eq!(
        guarded_stolen, 0,
        "full deployment with stub attacker leaves no theft"
    );
}

#[test]
fn link_failure_and_repair_keep_the_data_plane_consistent() {
    let graph = PaperTopology::As25.graph();
    let victim = graph.stub_asns()[0];
    let provider = graph.neighbors(victim).next().unwrap();
    let mut net = Network::new(graph);
    net.originate(victim, prefix(), None);
    net.run().unwrap();

    net.fail_link(victim, provider);
    net.run().unwrap();
    let plane = ForwardingPlane::snapshot(&net);
    for asn in graph.asns().filter(|&a| a != victim) {
        let outcome = plane.trace(asn, prefix().network());
        // Either rerouted to the victim via its other provider, or (if the
        // victim was single-homed through the failed link) blackholed — but
        // never looping or delivered to a wrong AS.
        match outcome {
            moas::bgp::ForwardOutcome::Delivered { ref path } => {
                assert_eq!(path.last(), Some(&victim), "{asn}: {outcome}");
            }
            moas::bgp::ForwardOutcome::Blackholed { .. } => {}
            moas::bgp::ForwardOutcome::Looped { .. } => panic!("{asn}: {outcome}"),
        }
    }

    net.restore_link(victim, provider);
    net.run().unwrap();
    let healed = ForwardingPlane::snapshot(&net);
    for asn in graph.asns() {
        assert!(
            healed.trace(asn, prefix().network()).delivered_to(victim),
            "{asn} not healed"
        );
    }
}
