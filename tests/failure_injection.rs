//! Failure injection: community stripping in transit, unavailable DNS,
//! stale registries — the operational hazards of §2 and §4.3, end to end —
//! plus corrupted MRT archives fed to the off-line monitor's import path.

use std::collections::BTreeSet;

use moas::bgp::Network;
use moas::detection::{
    DnsMoasVerifier, FalseOriginAttack, ListForgery, MoasConfig, MoasMonitor, OfflineMonitor,
    RegistryVerifier, UnresolvedPolicy,
};
use moas::topology::{AsGraph, AsRole};
use moas::types::{AsPath, Asn, Ipv4Prefix, MoasList, Route};
use moas::wire::bgp::PathAttributes;
use moas::wire::mrt::{MrtBody, MrtRecord, PeerEntry, PeerIndexTable, RibEntry, RibIpv4Unicast};
use moas::wire::{day_to_timestamp, import_table_dumps, WireErrorKind};

fn prefix() -> Ipv4Prefix {
    "208.8.0.0/16".parse().unwrap()
}

/// Victim AS 4 and second origin AS 226 behind transits 2 and 3; observer
/// AS 1; attacker AS 52 adjacent to the observer.
fn topology() -> AsGraph {
    let mut g = AsGraph::new();
    g.add_as(Asn(4), AsRole::Stub);
    g.add_as(Asn(226), AsRole::Stub);
    g.add_as(Asn(52), AsRole::Stub);
    for t in [1, 2, 3] {
        g.add_as(Asn(t), AsRole::Transit);
    }
    for (a, b) in [(4, 2), (4, 3), (2, 1), (3, 1), (226, 3), (52, 1)] {
        g.add_link(Asn(a), Asn(b));
    }
    g
}

#[test]
fn community_stripping_transit_causes_false_alarm_but_not_outage() {
    // AS 2 strips community attributes. AS 1 receives the prefix via AS 2
    // (no list -> implicit {4}) and via AS 3 (list {4, 226}): a §4.3 false
    // alarm. The verifier clears it and both routes stay usable.
    let valid: MoasList = [Asn(4), Asn(226)].into_iter().collect();
    let mut registry = RegistryVerifier::new();
    registry.register(prefix(), valid.clone());
    let monitor = MoasMonitor::new(
        MoasConfig {
            strippers: [Asn(2)].into_iter().collect(),
            ..MoasConfig::default()
        },
        registry,
    );
    let mut net = Network::with_monitor(&topology(), monitor);
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    net.originate(Asn(226), prefix(), Some(valid));
    net.run().unwrap();

    let alarms = net.monitor().alarms();
    assert!(
        alarms.false_alarm_count() > 0,
        "stripping must trip a false alarm"
    );
    assert_eq!(alarms.confirmed_count(), 0);
    // No valid route was lost anywhere.
    for asn in [1, 2, 3, 4, 226] {
        let origin = net.best_origin(Asn(asn), prefix()).unwrap();
        assert!(
            origin == Asn(4) || origin == Asn(226),
            "AS {asn} -> {origin}"
        );
    }
}

#[test]
fn stripping_does_not_let_the_attacker_through() {
    // §4.3's claim: "dropping the MOAS community value from some route
    // announcements should not cause an invalid case to be considered valid."
    let valid: MoasList = [Asn(4), Asn(226)].into_iter().collect();
    let mut registry = RegistryVerifier::new();
    registry.register(prefix(), valid.clone());
    let monitor = MoasMonitor::new(
        MoasConfig {
            strippers: [Asn(2), Asn(3)].into_iter().collect(),
            ..MoasConfig::default()
        },
        registry,
    );
    let mut net = Network::with_monitor(&topology(), monitor);
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    net.originate(Asn(226), prefix(), Some(valid.clone()));
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut net, Asn(52), prefix(), &valid);
    net.run().unwrap();

    for asn in [1, 2, 3, 4, 226] {
        let origin = net.best_origin(Asn(asn), prefix()).unwrap();
        assert_ne!(origin, Asn(52), "AS {asn} adopted the attacker");
    }
    assert!(net.monitor().alarms().confirmed_count() > 0);
}

#[test]
fn unavailable_dns_with_accept_policy_degrades_to_plain_bgp() {
    // The §2 circular-dependency critique: if the MOASRR lookup is down,
    // conflicts go unresolved. With the conservative Accept policy the
    // attacker's shorter path wins at AS 1 — detection alone cannot act.
    let valid = MoasList::implicit(Asn(4));
    let mut dns = DnsMoasVerifier::new(0.0, 1); // resolver unreachable
    dns.register(prefix(), valid.clone());
    let monitor = MoasMonitor::new(
        MoasConfig {
            on_unresolved: UnresolvedPolicy::Accept,
            ..MoasConfig::default()
        },
        dns,
    );
    let mut net = Network::with_monitor(&topology(), monitor);
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut net, Asn(52), prefix(), &valid);
    net.run().unwrap();

    assert_eq!(net.best_origin(Asn(1), prefix()), Some(Asn(52)));
    let alarms = net.monitor().alarms();
    assert!(alarms.unresolved_count() > 0);
    assert!(net.monitor().verifier().failed_lookups() > 0);
}

#[test]
fn unavailable_dns_with_reject_policy_is_first_come_wins() {
    // With the verifier blind, RejectIncoming refuses whichever conflicting
    // route arrives *second*. The attacker is one hop from AS 1, so its
    // route lands there first and even the aggressive policy cannot undo it;
    // but at AS 2 and AS 3 (adjacent to the true origin) the valid route
    // arrives first and the attacker's later announcement is rejected.
    let valid = MoasList::implicit(Asn(4));
    let mut dns = DnsMoasVerifier::new(0.0, 1);
    dns.register(prefix(), valid.clone());
    let monitor = MoasMonitor::new(
        MoasConfig {
            on_unresolved: UnresolvedPolicy::RejectIncoming,
            ..MoasConfig::default()
        },
        dns,
    );
    let mut net = Network::with_monitor(&topology(), monitor);
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut net, Asn(52), prefix(), &valid);
    net.run().unwrap();

    assert_eq!(
        net.best_origin(Asn(1), prefix()),
        Some(Asn(52)),
        "first-come wins at AS 1"
    );
    for asn in [2, 3, 4, 226] {
        assert_eq!(
            net.best_origin(Asn(asn), prefix()),
            Some(Asn(4)),
            "AS {asn}"
        );
    }
    assert!(net.monitor().alarms().unresolved_count() > 0);
}

#[test]
fn stale_registry_blackholes_a_new_legitimate_origin() {
    // The §2 IRR critique, reproduced: AS 226 just became a second
    // legitimate origin, but AS 4 still announces its old one-member list
    // and the registry record is equally outdated. The genuine (but
    // list-inconsistent) announcements from AS 226 are wrongly "confirmed"
    // as bogus and evicted wherever the conflict is checked.
    let mut stale = RegistryVerifier::new();
    stale.register(prefix(), MoasList::implicit(Asn(4))); // outdated record

    let mut net = Network::with_monitor(&topology(), MoasMonitor::full(stale));
    net.originate(Asn(4), prefix(), Some(MoasList::implicit(Asn(4)))); // old list
    net.originate(
        Asn(226),
        prefix(),
        Some([Asn(4), Asn(226)].into_iter().collect()),
    );
    net.run().unwrap();

    // Nobody except AS 226 itself routes to the new origin.
    for asn in [1, 2, 3, 4, 52] {
        assert_eq!(
            net.best_origin(Asn(asn), prefix()),
            Some(Asn(4)),
            "AS {asn}"
        );
    }
    assert!(
        net.monitor().alarms().confirmed_count() > 0,
        "the stale record produces false 'confirmations'"
    );
}

#[test]
fn flaky_dns_partially_protects() {
    // 50% availability: some conflicts resolve (blocking the attacker at
    // those routers), others do not. The network must never do *worse* than
    // plain BGP, and alarms record the mix.
    let valid = MoasList::implicit(Asn(4));
    let mut dns = DnsMoasVerifier::new(0.5, 42);
    dns.register(prefix(), valid.clone());
    let monitor = MoasMonitor::new(MoasConfig::default(), dns);
    let mut net = Network::with_monitor(&topology(), monitor);
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    FalseOriginAttack::new(ListForgery::IncludeSelf).launch(&mut net, Asn(52), prefix(), &valid);
    net.run().unwrap();

    let alarms = net.monitor().alarms();
    assert!(!alarms.is_empty());
    let fooled: BTreeSet<Asn> = [1, 2, 3, 4, 226]
        .into_iter()
        .map(Asn)
        .filter(|&a| net.best_origin(a, prefix()) == Some(Asn(52)))
        .collect();
    // Plain BGP would fool exactly AS 1; flaky DNS can only do better or equal.
    assert!(fooled.is_subset(&[Asn(1)].into_iter().collect()));
}

/// A small MRT archive: one peer table, then one RIB record per route. The
/// second prefix is a MOAS conflict — the attacker's route carries a list
/// inconsistent with the victim's.
fn archive_with_conflict() -> Vec<u8> {
    let valid: MoasList = [Asn(4), Asn(226)].into_iter().collect();
    let peer_table = MrtRecord {
        timestamp: day_to_timestamp(0),
        body: MrtBody::PeerIndexTable(PeerIndexTable {
            collector_id: 1,
            view_name: String::from("failure-injection"),
            peers: vec![PeerEntry {
                bgp_id: 1,
                addr: (10 << 24) | 1,
                asn: Asn(1),
            }],
        }),
    };
    let routes = [
        Route::new(prefix(), AsPath::from_sequence([Asn(1), Asn(2), Asn(4)]))
            .with_moas_list(valid.clone()),
        Route::new(prefix(), AsPath::from_sequence([Asn(1), Asn(3), Asn(226)]))
            .with_moas_list(valid),
        Route::new(prefix(), AsPath::from_sequence([Asn(1), Asn(52)]))
            .with_moas_list(MoasList::implicit(Asn(52))),
    ];
    let mut bytes = peer_table.encode().unwrap();
    for (sequence, route) in routes.iter().enumerate() {
        let record = MrtRecord {
            timestamp: day_to_timestamp(0),
            body: MrtBody::RibIpv4Unicast(RibIpv4Unicast {
                sequence: sequence as u32,
                prefix: route.prefix(),
                entries: vec![RibEntry {
                    peer_index: 0,
                    originated_time: day_to_timestamp(0),
                    attrs: PathAttributes::from_route(route),
                }],
            }),
        };
        bytes.extend_from_slice(&record.encode().unwrap());
    }
    bytes
}

#[test]
fn intact_archive_reaches_the_offline_monitor() {
    // Baseline for the corruption tests: the clean archive imports, and the
    // off-line monitor flags the inconsistent-list MOAS conflict.
    let imported = import_table_dumps(archive_with_conflict().as_slice()).unwrap();
    assert_eq!(imported.routes.len(), 3);
    assert_eq!(imported.total_moas_count(), 1);
    let findings =
        OfflineMonitor::new().scan(imported.routes.iter().map(|(_, route)| route.clone()));
    assert_eq!(findings.len(), 1, "the forged list must be flagged");
    assert!(findings[0].origins.contains(&Asn(52)));
}

#[test]
fn corrupt_mrt_archive_errors_cleanly_at_every_byte() {
    // Flip every byte of the archive to every-other-bit garbage, one at a
    // time. Import must either succeed (benign flip) or return a typed
    // error — never panic, and never report an offset beyond the input.
    let bytes = archive_with_conflict();
    for position in 0..bytes.len() {
        let mut mutated = bytes.clone();
        mutated[position] ^= 0x55;
        match import_table_dumps(mutated.as_slice()) {
            Ok(imported) => assert!(imported.routes.len() <= 3),
            Err(err) => assert!(
                err.offset <= bytes.len() as u64 + 1,
                "offset {} beyond archive at flipped byte {position}: {err}",
                err.offset
            ),
        }
    }
}

#[test]
fn truncated_mrt_archive_errors_or_imports_the_intact_prefix() {
    // A tape cut at a record boundary is a clean (shorter) archive; a cut
    // mid-record must produce a Truncated error, not a panic.
    let bytes = archive_with_conflict();
    for cut in 0..bytes.len() {
        match import_table_dumps(&bytes[..cut]) {
            Ok(imported) => assert!(imported.routes.len() < 3),
            Err(err) => assert!(
                matches!(err.kind, WireErrorKind::Truncated { .. }),
                "cut at {cut}: unexpected {err}"
            ),
        }
    }
}

#[test]
fn rib_before_peer_table_is_a_typed_error() {
    // Strip the leading PEER_INDEX_TABLE record: the RIB records then have
    // no peer context and import must say so rather than fabricate origins.
    let bytes = archive_with_conflict();
    // The MRT record length field (bytes 8..12 of the header) gives the
    // first record's full extent without re-encoding it.
    let body_len = u32::from_be_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let err = import_table_dumps(&bytes[12 + body_len..]).unwrap_err();
    assert!(matches!(err.kind, WireErrorKind::MissingPeerIndexTable));
}
