//! Network-level convergence properties, including property-based checks on
//! randomly generated Internet-like topologies.

use moas::bgp::Network;
use moas::detection::{Deployment, MoasMonitor, RegistryVerifier};
use moas::topology::{prefix_for_asn, InternetModel};
use moas::types::{Asn, MoasList};
use proptest::prelude::*;

#[test]
fn every_as_converges_to_the_single_origin() {
    for seed in 0..5 {
        let graph = InternetModel::new()
            .transit_count(12)
            .stub_count(60)
            .build(seed);
        let victim = graph.stub_asns()[seed as usize % 60];
        let prefix = prefix_for_asn(victim);
        let mut net = Network::new(&graph);
        net.originate(victim, prefix, None);
        net.run().unwrap();
        for asn in graph.asns() {
            assert_eq!(
                net.best_origin(asn, prefix),
                Some(victim),
                "seed {seed}, {asn}"
            );
        }
    }
}

#[test]
fn withdrawal_after_convergence_clears_all_state() {
    let graph = InternetModel::new()
        .transit_count(10)
        .stub_count(40)
        .build(9);
    let victim = graph.stub_asns()[0];
    let prefix = prefix_for_asn(victim);
    let mut net = Network::new(&graph);
    net.originate(victim, prefix, None);
    net.run().unwrap();
    net.withdraw(victim, prefix);
    net.run().unwrap();
    for asn in graph.asns() {
        assert!(net.best_route(asn, prefix).is_none(), "{asn} kept a route");
        assert_eq!(net.router(asn).unwrap().adj_rib_in(prefix).count(), 0);
    }
}

#[test]
fn flap_reconverges_to_the_same_state() {
    let graph = InternetModel::new()
        .transit_count(10)
        .stub_count(40)
        .build(11);
    let victim = graph.stub_asns()[5];
    let prefix = prefix_for_asn(victim);

    let mut reference = Network::new(&graph);
    reference.originate(victim, prefix, None);
    reference.run().unwrap();

    let mut flapped = Network::new(&graph);
    flapped.originate(victim, prefix, None);
    flapped.run().unwrap();
    flapped.withdraw(victim, prefix);
    flapped.run().unwrap();
    flapped.originate(victim, prefix, None);
    flapped.run().unwrap();

    for asn in graph.asns() {
        assert_eq!(
            reference.best_route(asn, prefix),
            flapped.best_route(asn, prefix),
            "{asn} differs after flap"
        );
    }
}

#[test]
fn message_complexity_is_bounded() {
    // A single origination in a quiescent network must cost O(links) + churn
    // from path exploration, not an explosion.
    let graph = InternetModel::new()
        .transit_count(10)
        .stub_count(90)
        .build(13);
    let victim = graph.stub_asns()[0];
    let mut net = Network::new(&graph);
    net.originate(victim, prefix_for_asn(victim), None);
    net.run().unwrap();
    let messages = net.stats().total_messages();
    let links = graph.link_count() as u64;
    assert!(
        messages <= links * 20,
        "{messages} messages for {links} links"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Full MOAS deployment with an oracle verifier: whenever the attackers
    /// are stub ASes (so they cannot partition anyone from the valid route),
    /// no non-attacker ever ends up on a false route, on any topology.
    #[test]
    fn stub_attackers_never_win_under_full_deployment(
        seed in 0u64..500,
        attackers in 1usize..4,
    ) {
        let graph = InternetModel::new().transit_count(8).stub_count(40).build(seed);
        let stubs = graph.stub_asns();
        let mut rng = moas::sim::rng::from_seed(seed ^ 0xFACE);
        let picked = moas::sim::rng::sample_distinct(&mut rng, &stubs, attackers + 1);
        let victim = picked[0];
        let villains = &picked[1..];

        let prefix = prefix_for_asn(victim);
        let valid = MoasList::implicit(victim);
        let mut registry = RegistryVerifier::new();
        registry.register(prefix, valid.clone());
        let mut net = Network::with_monitor_and_jitter(
            &graph,
            MoasMonitor::full(registry),
            seed,
            4,
        );
        net.originate(victim, prefix, Some(valid.clone()));
        let attack = moas::detection::FalseOriginAttack::default();
        for &villain in villains {
            attack.launch(&mut net, villain, prefix, &valid);
        }
        net.run().unwrap();

        for asn in graph.asns() {
            if villains.contains(&asn) {
                continue;
            }
            let origin = net.best_origin(asn, prefix);
            prop_assert_eq!(origin, Some(victim), "{} adopted {:?}", asn, origin);
        }
    }

    /// Deployment::None must behave identically to plain BGP: the monitor
    /// machinery adds no behavioural difference when disabled.
    #[test]
    fn none_deployment_equals_plain_bgp(seed in 0u64..200) {
        let graph = InternetModel::new().transit_count(6).stub_count(25).build(seed);
        let stubs = graph.stub_asns();
        let victim = stubs[0];
        let villain = stubs[stubs.len() - 1];
        let prefix = prefix_for_asn(victim);
        let valid = MoasList::implicit(victim);

        let run = |monitored: bool| {
            let mut registry = RegistryVerifier::new();
            registry.register(prefix, valid.clone());
            let monitor = MoasMonitor::new(
                moas::detection::MoasConfig {
                    deployment: if monitored { Deployment::Full } else { Deployment::None },
                    ..Default::default()
                },
                registry,
            );
            let mut net = Network::with_monitor_and_jitter(&graph, monitor, seed, 3);
            net.originate(victim, prefix, Some(valid.clone()));
            let attack = moas::detection::FalseOriginAttack::default();
            attack.launch(&mut net, villain, prefix, &valid);
            net.run().unwrap();
            let origins: Vec<Option<Asn>> =
                graph.asns().map(|a| net.best_origin(a, prefix)).collect();
            (origins, net.monitor().alarms().len())
        };

        let (plain_origins, plain_alarms) = run(false);
        prop_assert_eq!(plain_alarms, 0);

        // And a plain-BGP network with no monitor at all agrees.
        let mut bare = Network::with_monitor_and_jitter(&graph, moas::bgp::NoopMonitor, seed, 3);
        bare.originate(victim, prefix, Some(valid.clone()));
        moas::detection::FalseOriginAttack::default().launch(&mut bare, villain, prefix, &valid);
        bare.run().unwrap();
        let bare_origins: Vec<Option<Asn>> =
            graph.asns().map(|a| bare.best_origin(a, prefix)).collect();
        prop_assert_eq!(plain_origins, bare_origins);
    }
}
