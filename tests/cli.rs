//! End-to-end tests of the `moas-lab` command-line interface.

use std::process::Command;

fn moas_lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_moas-lab"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = moas_lab(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("figures"));
}

#[test]
fn no_arguments_defaults_to_help() {
    let out = moas_lab(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = moas_lab(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn topology_command_lists_structure() {
    let out = moas_lab(&["topology", "25"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("25-AS topology"));
    assert!(text.contains("transit ASes"));
    assert!(text.contains("<->"));
}

#[test]
fn topology_command_rejects_bad_size() {
    let out = moas_lab(&["topology", "99"]);
    assert!(!out.status.success());
}

#[test]
fn trial_with_and_without_detection() {
    let none = moas_lab(&[
        "trial",
        "--attackers",
        "4",
        "--deployment",
        "none",
        "--seed",
        "3",
    ]);
    assert!(none.status.success());
    let none_text = String::from_utf8_lossy(&none.stdout).to_string();
    assert!(none_text.contains("adopted a false route"));
    assert!(none_text.contains("alarms: 0"));

    let full = moas_lab(&[
        "trial",
        "--attackers",
        "4",
        "--deployment",
        "full",
        "--seed",
        "3",
    ]);
    assert!(full.status.success());
    let full_text = String::from_utf8_lossy(&full.stdout).to_string();
    assert!(full_text.contains("confirmed"));

    let pct = |text: &str| -> f64 {
        let start = text.find('(').unwrap();
        let end = text[start..].find("%)").unwrap() + start;
        text[start + 1..end].parse().unwrap()
    };
    let none_line = none_text.lines().find(|l| l.contains("adopted")).unwrap();
    let full_line = full_text.lines().find(|l| l.contains("adopted")).unwrap();
    assert!(
        pct(full_line) <= pct(none_line),
        "{full_line} vs {none_line}"
    );
}

#[test]
fn measure_short_period_reports_medians() {
    let out = moas_lab(&["measure", "--days", "60"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("daily MOAS count"));
    assert!(text.contains("MOAS cases"));
}

#[test]
fn overhead_reports_costs() {
    let out = moas_lab(&["overhead"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bytes added"));
    assert!(text.contains("100k-route"));
    // Both the analytic model and the codec-measured numbers appear, and
    // they agree on the added bytes.
    assert!(text.contains("analytic:"));
    assert!(text.contains("measured:"));
    assert!(text.contains("added bytes agree exactly"));
}

#[test]
fn usage_mentions_mrt_commands() {
    let out = moas_lab(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("export-mrt"));
    assert!(text.contains("import-mrt"));
}

#[test]
fn chaos_requires_a_scenario() {
    let out = moas_lab(&["chaos"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--scenario"));

    let bad = moas_lab(&["chaos", "--scenario", "meteor-strike"]);
    assert!(!bad.status.success());
}

#[test]
fn chaos_failover_reports_accuracy_and_emits_json() {
    let out = moas_lab(&[
        "chaos",
        "--scenario",
        "failover",
        "--quick",
        "--trials",
        "3",
        "--seed",
        "9",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("scenario failover"));
    assert!(text.contains("false alarms"));
    assert!(text.contains("detection"));
    assert!(text.contains("\"missed_detection_rate\""));
    assert!(text.contains("\"mean_detection_latency_ticks\""));
}

#[test]
fn chaos_stdout_is_byte_identical_across_jobs() {
    let run = |jobs: &str| {
        let out = moas_lab(&[
            "chaos",
            "--scenario",
            "failover",
            "--quick",
            "--trials",
            "3",
            "--seed",
            "5",
            "--jobs",
            jobs,
        ]);
        assert!(out.status.success());
        out.stdout
    };
    let serial = run("1");
    assert_eq!(run("2"), serial, "--jobs 2 changed the output");
    assert_eq!(run("4"), serial, "--jobs 4 changed the output");
}

#[test]
fn chaos_flap_storm_counts_oscillating_trials() {
    let out = moas_lab(&[
        "chaos",
        "--scenario",
        "flap-storm",
        "--quick",
        "--trials",
        "2",
        "--seed",
        "1",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    // Every MRAI=0 flap-storm trial must end in a detected oscillation.
    assert!(
        text.contains("oscillation: 2 trials"),
        "watchdog did not trip on both trials: {text}"
    );
}

#[test]
fn chaos_out_flag_writes_the_report_file() {
    let dir = std::env::temp_dir().join(format!("moas-cli-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("chaos.json");
    let out = moas_lab(&[
        "chaos",
        "--scenario",
        "session-reset",
        "--quick",
        "--trials",
        "2",
        "--seed",
        "4",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let json = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    assert!(json.contains("\"scenario\": \"session-reset\""));
    assert!(json.contains("\"false_alarm_rate\""));
}

#[test]
fn export_mrt_requires_out_path() {
    let out = moas_lab(&["export-mrt"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--out"));
}

#[test]
fn import_mrt_requires_a_file() {
    let out = moas_lab(&["import-mrt"]);
    assert!(!out.status.success());
}

#[test]
fn import_mrt_missing_file_fails_with_message() {
    let out = moas_lab(&["import-mrt", "/nonexistent/no-such-archive.mrt"]);
    assert!(!out.status.success());
    assert!(!String::from_utf8_lossy(&out.stderr).is_empty());
}

#[test]
fn import_mrt_garbage_file_fails_cleanly() {
    let dir = std::env::temp_dir().join(format!("moas-cli-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.mrt");
    std::fs::write(&path, b"this is not an MRT archive at all............").unwrap();
    let out = moas_lab(&["import-mrt", path.to_str().unwrap()]);
    std::fs::remove_dir_all(&dir).ok();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("at byte"),
        "error should carry an offset: {err}"
    );
}

#[test]
fn export_import_round_trip_preserves_daily_moas_counts() {
    let dir = std::env::temp_dir().join(format!("moas-cli-roundtrip-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sim.mrt");
    let path_str = path.to_str().unwrap();

    let exported = moas_lab(&[
        "export-mrt",
        "--out",
        path_str,
        "--days",
        "4",
        "--seed",
        "11",
    ]);
    assert!(
        exported.status.success(),
        "{}",
        String::from_utf8_lossy(&exported.stderr)
    );
    let exported_text = String::from_utf8_lossy(&exported.stdout).to_string();

    let imported = moas_lab(&["import-mrt", path_str]);
    assert!(
        imported.status.success(),
        "{}",
        String::from_utf8_lossy(&imported.stderr)
    );
    let imported_text = String::from_utf8_lossy(&imported.stdout).to_string();
    std::fs::remove_dir_all(&dir).ok();

    // The per-day "prefixes, moas" counts printed by the exporter must come
    // back identically from the importer.
    let day_counts = |text: &str| -> Vec<(String, String)> {
        text.lines()
            .filter(|l| l.starts_with("day "))
            .map(|l| {
                let mut parts = l.split(", ");
                let first = parts.next().unwrap(); // "day N: P prefixes"
                let moas = parts.find(|p| p.contains("moas")).unwrap();
                (first.to_string(), moas.to_string())
            })
            .collect()
    };
    let exported_days = day_counts(&exported_text);
    let imported_days = day_counts(&imported_text);
    assert_eq!(exported_days.len(), 4);
    assert_eq!(exported_days, imported_days);
}
