//! End-to-end tests of the `moas-lab` command-line interface.

use std::process::Command;

fn moas_lab(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_moas-lab"))
        .args(args)
        .output()
        .expect("binary runs")
}

#[test]
fn help_prints_usage() {
    let out = moas_lab(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("USAGE"));
    assert!(text.contains("figures"));
}

#[test]
fn no_arguments_defaults_to_help() {
    let out = moas_lab(&[]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_usage() {
    let out = moas_lab(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn topology_command_lists_structure() {
    let out = moas_lab(&["topology", "25"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("25-AS topology"));
    assert!(text.contains("transit ASes"));
    assert!(text.contains("<->"));
}

#[test]
fn topology_command_rejects_bad_size() {
    let out = moas_lab(&["topology", "99"]);
    assert!(!out.status.success());
}

#[test]
fn trial_with_and_without_detection() {
    let none = moas_lab(&["trial", "--attackers", "4", "--deployment", "none", "--seed", "3"]);
    assert!(none.status.success());
    let none_text = String::from_utf8_lossy(&none.stdout).to_string();
    assert!(none_text.contains("adopted a false route"));
    assert!(none_text.contains("alarms: 0"));

    let full = moas_lab(&["trial", "--attackers", "4", "--deployment", "full", "--seed", "3"]);
    assert!(full.status.success());
    let full_text = String::from_utf8_lossy(&full.stdout).to_string();
    assert!(full_text.contains("confirmed"));

    let pct = |text: &str| -> f64 {
        let start = text.find('(').unwrap();
        let end = text[start..].find("%)").unwrap() + start;
        text[start + 1..end].parse().unwrap()
    };
    let none_line = none_text.lines().find(|l| l.contains("adopted")).unwrap();
    let full_line = full_text.lines().find(|l| l.contains("adopted")).unwrap();
    assert!(pct(full_line) <= pct(none_line), "{full_line} vs {none_line}");
}

#[test]
fn measure_short_period_reports_medians() {
    let out = moas_lab(&["measure", "--days", "60"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("daily MOAS count"));
    assert!(text.contains("MOAS cases"));
}

#[test]
fn overhead_reports_costs() {
    let out = moas_lab(&["overhead"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("bytes added"));
    assert!(text.contains("100k-route"));
}
