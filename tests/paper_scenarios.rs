//! Executable versions of the paper's worked examples (Figures 1-3, 6-7 and
//! the §4 narrative), spanning all workspace crates through the `moas`
//! facade.

use moas::bgp::{Network, NoopMonitor};
use moas::detection::{find_conflict, ConflictKind, MoasMonitor, OfflineMonitor, RegistryVerifier};
use moas::topology::{AsGraph, AsRole};
use moas::types::{AsPath, Asn, Community, Ipv4Prefix, MoasList, Route, MOAS_LIST_VALUE};

fn prefix() -> Ipv4Prefix {
    "208.8.0.0/16".parse().unwrap()
}

/// The Figure 1/2/3 topology: origin AS 4 behind transits AS 2 ("Y") and
/// AS 3 ("Z"), observer AS 1 ("X"), plus the second origin AS 226 and the
/// attacker AS 52 where the figures place them.
fn figure_topology() -> AsGraph {
    let mut g = AsGraph::new();
    g.add_as(Asn(4), AsRole::Stub);
    g.add_as(Asn(226), AsRole::Stub);
    g.add_as(Asn(52), AsRole::Stub);
    for t in [1, 2, 3] {
        g.add_as(Asn(t), AsRole::Transit);
    }
    for (a, b) in [(4, 2), (4, 3), (2, 1), (3, 1), (226, 3), (52, 1)] {
        g.add_link(Asn(a), Asn(b));
    }
    g
}

#[test]
fn figure1_route_origination_and_paths() {
    // "AS X learns two possible routes to prefix, path (Y,4) and path (Z,4)."
    let mut net = Network::new(&figure_topology());
    net.originate(Asn(4), prefix(), None);
    net.run().unwrap();

    let x = net.router(Asn(1)).unwrap();
    let paths: Vec<String> = x
        .adj_rib_in(prefix())
        .map(|(_, route)| route.as_path().to_string())
        .collect();
    assert!(paths.contains(&"2 4".to_string()), "path via Y: {paths:?}");
    assert!(paths.contains(&"3 4".to_string()), "path via Z: {paths:?}");
    assert_eq!(x.best_origin(prefix()), Some(Asn(4)));
}

#[test]
fn figure2_valid_moas_both_origins_reachable() {
    // Prefix originated by AS 4 (BGP peering) and AS 226 (static config at
    // its ISP): a valid MOAS — every AS reaches one of the two origins.
    let list: MoasList = [Asn(4), Asn(226)].into_iter().collect();
    let mut net = Network::new(&figure_topology());
    net.originate(Asn(4), prefix(), Some(list.clone()));
    net.originate(Asn(226), prefix(), Some(list));
    net.run().unwrap();
    for asn in [1, 2, 3, 4, 52, 226] {
        let origin = net.best_origin(Asn(asn), prefix()).unwrap();
        assert!(
            origin == Asn(4) || origin == Asn(226),
            "AS {asn} routed to {origin}"
        );
    }
}

#[test]
fn figure3_hijack_succeeds_under_plain_bgp() {
    // "With the topology in Figure 3, AS 52 appears to AS X to offer the
    // shortest route... AS X would accept and propagate this false route."
    let mut net = Network::new(&figure_topology());
    net.originate(Asn(4), prefix(), None);
    net.originate(Asn(52), prefix(), None);
    net.run().unwrap();
    assert_eq!(net.best_origin(Asn(1), prefix()), Some(Asn(52)));
    // And AS X propagates the false route onward: AS 2 and AS 3 hold it in
    // their Adj-RIB-In even though their best is the true origin.
    for transit in [2, 3] {
        assert_eq!(net.best_origin(Asn(transit), prefix()), Some(Asn(4)));
    }
}

#[test]
fn figure6_7_moas_list_encoding_on_the_wire() {
    // Figure 7: the MOAS list as (AS1:MLVal),(AS2:MLVal) communities.
    let list: MoasList = [Asn(1), Asn(2)].into_iter().collect();
    let communities = list.to_communities();
    assert_eq!(
        communities,
        vec![
            Community::new(Asn(1), MOAS_LIST_VALUE),
            Community::new(Asn(2), MOAS_LIST_VALUE)
        ]
    );

    // Figure 6: AS Z's forged announcement (P, {1,2,Z}) vs the honest
    // (P, {1,2}) — AS X observes the inconsistency and alarms.
    let z = Asn(99);
    let honest = Route::new(prefix(), AsPath::origination(Asn(1))).with_moas_list(list.clone());
    let mut forged_list = list.clone();
    forged_list.insert(z);
    let forged = Route::new(prefix(), AsPath::origination(z)).with_moas_list(forged_list);

    let conflict = find_conflict(&forged, &[(Some(Asn(7)), honest)]).expect("must conflict");
    assert_eq!(conflict.kind, ConflictKind::InconsistentLists);
    assert_eq!(conflict.incoming_origin, Some(z));
}

#[test]
fn figure3_hijack_stopped_by_moas_detection() {
    let valid = MoasList::implicit(Asn(4));
    let mut registry = RegistryVerifier::new();
    registry.register(prefix(), valid.clone());
    let mut net = Network::with_monitor(&figure_topology(), MoasMonitor::full(registry));
    net.originate(Asn(4), prefix(), Some(valid));
    net.originate(Asn(52), prefix(), None);
    net.run().unwrap();

    // Every non-attacker AS keeps the true origin.
    for asn in [1, 2, 3, 4, 226] {
        assert_eq!(
            net.best_origin(Asn(asn), prefix()),
            Some(Asn(4)),
            "AS {asn}"
        );
    }
    let alarms = net.monitor().alarms();
    assert!(alarms.confirmed_count() > 0);
    // AS X (AS 1) is among the observers that raised the alarm.
    assert!(alarms.observers().any(|a| a == Asn(1)));
}

#[test]
fn section42_offline_monitor_sees_what_routers_miss() {
    // Plain BGP network, no router modified; the offline process detects the
    // conflict from collected routes.
    let mut net = Network::with_monitor(&figure_topology(), NoopMonitor);
    net.originate(Asn(4), prefix(), Some(MoasList::implicit(Asn(4))));
    net.originate(Asn(52), prefix(), None);
    net.run().unwrap();

    let findings = OfflineMonitor::new().scan_network(&net, &[Asn(1), Asn(2), Asn(3)], prefix());
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].origins, vec![Asn(4), Asn(52)]);
}

#[test]
fn section41_single_path_origin_is_the_known_weakness() {
    // "if the origin AS for p has only one path to reach the rest of the
    // Internet, a fault can defeat the MOAS detection mechanism by altering
    // the origin AS on this single path." Model: victim AS 4 is single-homed
    // behind compromised transit AS 2 which strips the valid announcement's
    // list AND injects its own false origin... here we model the simpler cut:
    // the only transit is itself the attacker, so no valid route escapes.
    let mut g = AsGraph::new();
    g.add_as(Asn(4), AsRole::Stub);
    g.add_as(Asn(2), AsRole::Transit);
    g.add_as(Asn(1), AsRole::Transit);
    g.add_link(Asn(4), Asn(2));
    g.add_link(Asn(2), Asn(1));

    let valid = MoasList::implicit(Asn(4));
    let mut registry = RegistryVerifier::new();
    registry.register(prefix(), valid.clone());
    let mut net = Network::with_monitor(&g, MoasMonitor::full(registry));
    net.originate(Asn(4), prefix(), Some(valid.clone()));
    // AS 2 is compromised: it originates the prefix itself. Its own local
    // route wins its decision process, so the valid route never reaches AS 1.
    let attack = moas::detection::FalseOriginAttack::new(moas::detection::ListForgery::IncludeSelf);
    attack.launch(&mut net, Asn(2), prefix(), &valid);
    net.run().unwrap();

    // AS 1 only ever saw the false route: no conflict, no alarm, hijacked.
    assert_eq!(net.best_origin(Asn(1), prefix()), Some(Asn(2)));
}
